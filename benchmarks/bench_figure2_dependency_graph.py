"""Figure 2: the dependency graph of Example 6, and the machinery built on it.

The benchmark regenerates the labelled multigraph of Figure 2, checks it
edge by edge, and times the atom-coverage computation of Example 7 (the
polynomial-time core of query elimination) plus the dependency-graph
construction for the largest reconstructed ontology (VICODI).
"""

from repro.core.coverage import CoverageChecker
from repro.core.dependency_graph import DependencyGraph
from repro.logic.atoms import Position, Predicate
from repro.workloads import get_workload
from repro.workloads.paper_examples import example6_rules, example7_query

P = Predicate("p", 2)
R = Predicate("r", 3)
S = Predicate("s", 3)

#: The eight labelled edges of Figure 2, as (source, target, rule label).
FIGURE2_EDGES = {
    (Position(P, 1), Position(R, 1), "ex6_sigma1"),
    (Position(P, 2), Position(R, 2), "ex6_sigma1"),
    (Position(R, 1), Position(S, 1), "ex6_sigma2"),
    (Position(R, 2), Position(S, 2), "ex6_sigma2"),
    (Position(R, 2), Position(S, 3), "ex6_sigma2"),
    (Position(S, 1), Position(P, 1), "ex6_sigma3"),
    (Position(S, 2), Position(P, 1), "ex6_sigma3"),
    (Position(S, 3), Position(P, 2), "ex6_sigma3"),
}


def test_figure2_dependency_graph(benchmark):
    """The dependency graph of Example 6 has exactly the edges of Figure 2."""
    rules = example6_rules()
    graph = benchmark(DependencyGraph, rules)
    observed = {(edge.source, edge.target, edge.rule.label) for edge in graph.edges}
    assert observed == FIGURE2_EDGES


def test_example7_cover_sets(benchmark):
    """Atom coverage on the Example 7 query (the input of query elimination)."""
    checker = CoverageChecker(example6_rules())
    query = example7_query()

    cover_sets = benchmark(checker.cover_sets, query)

    p_atom, r_atom, s_atom = query.body
    assert cover_sets[p_atom] == frozenset()
    assert cover_sets[r_atom] == {p_atom}
    assert cover_sets[s_atom] == frozenset()


def test_dependency_graph_scales_to_workload_ontologies(benchmark):
    """Building the graph for the largest reconstructed TBox stays cheap."""
    rules = list(get_workload("V").theory.tgds)
    graph = benchmark(DependencyGraph, rules)
    assert len(graph.edges) >= len(rules)
