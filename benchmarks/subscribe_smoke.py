"""The ``make subscribe-smoke`` gate: standing queries work over a socket.

Boots the serving stack on a real :class:`~repro.serving.http.ServingServer`
port, registers a Table 1 workload tenant, and drives the full
subscription lifecycle end to end:

1. **subscribe** — ``POST /tenants/{name}/subscribe`` returns a cursor
   plus the current answer set as the initial snapshot;
2. **maintain** — after ``POST /data`` inserts and deletes, a
   ``GET /tenants/{name}/changes?cursor=`` poll (cursor on the query
   string, like a real client) returns exactly the rows that appeared
   and disappeared, delta-maintained on the tenant's executor;
3. **verify** — snapshot ∪ added − removed is byte-identical (canonical
   JSON of ``encode_answers``) to a fresh ``/answer`` of the same query,
   and a repeat poll is an empty noop;
4. **unsubscribe** — the cursor dies and further polls 404.

A second or two end to end, so it gates every CI run; the exhaustive
endpoint matrix lives in ``tests/serving/test_subscriptions_endpoints.py``.

The script is import-safe for test collectors; it only runs under
``python benchmarks/subscribe_smoke.py``.
"""

from __future__ import annotations

import asyncio
import json
import sys
from pathlib import Path

_SRC = str(Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.serving import ServingApp, ServingClient, ServingServer  # noqa: E402

WORKLOAD = "S"
#: ``Stock ⊑ FinantialInstrument`` and ``∃hasStock⁻ ⊑ Stock`` in the S
#: TBox make this query's answers move under both fact lists below.
QUERY = "q(A) :- FinantialInstrument(A)"
FACTS = [
    ["Stock", ["acme_stock"]],
    ["Bond", ["acme_bond"]],
    ["hasStock", ["ann", "xcorp_stock"]],
]


async def smoke() -> int:
    failures = 0
    app = ServingApp()
    server = ServingServer(app)
    await server.start()
    client = ServingClient("127.0.0.1", server.port)
    try:
        response = await client.request(
            "POST",
            "/register-theory",
            {"tenant": "smoke", "workload": WORKLOAD, "facts": FACTS},
        )
        if response.status != 201:
            print(f"error: registration failed: {response.payload}", file=sys.stderr)
            return 1

        # 1. subscribe: cursor + full snapshot.
        response = await client.request(
            "POST", "/tenants/smoke/subscribe", {"query": QUERY}
        )
        if response.status != 201:
            print(f"error: subscribe failed: {response.payload}", file=sys.stderr)
            return 1
        cursor = response.payload["cursor"]
        snapshot = response.payload["answers"]
        print(
            f"subscribed {cursor} to {WORKLOAD}/{QUERY}: "
            f"{response.payload['count']} answers in the snapshot"
        )

        # 2. mutate, then poll the delta with the cursor on the query string.
        response = await client.request(
            "POST",
            "/data",
            {
                "tenant": "smoke",
                "add": [["Stock", ["initech"]]],
                "remove": [["Bond", ["acme_bond"]]],
            },
        )
        if response.status != 200:
            print(f"error: mutation failed: {response.payload}", file=sys.stderr)
            return 1
        response = await client.request(
            "GET", f"/tenants/smoke/changes?cursor={cursor}"
        )
        if response.status != 200:
            print(f"error: poll failed: {response.payload}", file=sys.stderr)
            return 1
        added, removed = response.payload["added"], response.payload["removed"]
        mode = response.payload["mode"]
        delta_ok = added == [["initech"]] and removed == [["acme_bond"]]
        status = "ok" if delta_ok else "MISMATCH"
        print(
            f"poll after mutation: +{added} -{removed} (mode {mode}) — {status}"
        )
        if not delta_ok:
            failures += 1

        # 3. verify: snapshot ∪ added − removed == a fresh /answer, bytewise.
        maintained = sorted(
            [row for row in snapshot + added if row not in removed],
            key=lambda row: json.dumps(row, sort_keys=True),
        )
        response = await client.request(
            "POST", "/answer", {"tenant": "smoke", "query": QUERY}
        )
        direct = response.payload["answers"]
        status = "ok" if json.dumps(maintained) == json.dumps(direct) else "MISMATCH"
        print(
            f"delta-composed answers byte-identical to /answer "
            f"({len(direct)} rows) — {status}"
        )
        if status != "ok":
            print(
                f"  composed: {maintained}\n  answered: {direct}",
                file=sys.stderr,
            )
            failures += 1
        response = await client.request(
            "GET", f"/tenants/smoke/changes?cursor={cursor}"
        )
        quiet = (
            response.status == 200
            and response.payload["added"] == []
            and response.payload["removed"] == []
        )
        status = "ok" if quiet else "MISMATCH"
        print(f"repeat poll is an empty noop — {status}")
        if not quiet:
            failures += 1

        # 4. unsubscribe: the cursor dies.
        response = await client.request(
            "POST", "/tenants/smoke/unsubscribe", {"cursor": cursor}
        )
        dead = response.status == 200
        response = await client.request(
            "GET", f"/tenants/smoke/changes?cursor={cursor}"
        )
        dead = dead and response.status == 404
        status = "ok" if dead else "MISMATCH"
        print(f"unsubscribed; stale poll is 404 — {status}")
        if not dead:
            failures += 1
    finally:
        await client.aclose()
        await server.stop()

    if failures:
        print(f"error: {failures} subscription smoke checks failed", file=sys.stderr)
        return 1
    print(
        "# subscribe smoke: cursor lifecycle clean, deltas byte-identical "
        "to full answering"
    )
    return 0


def main() -> int:
    return asyncio.run(smoke())


if __name__ == "__main__":
    raise SystemExit(main())
