"""Machine-readable end-to-end answering benchmark (``make bench-json``).

Runs the prepare/execute serving lifecycle over the five Table 1
ontologies on both execution backends and writes one JSON document —
``BENCH_answering.json`` by default — so the answering-side performance
trajectory is tracked by artifacts, next to the compilation-side
``BENCH_parallel.json``:

* per-(ontology, query, backend): prepare time, cold execute time and
  warm (answer-cache) execute time, plus the answer count;
* the two invariants that make the numbers trustworthy: the in-memory
  and SQLite backends returned *identical* answer sets on every query
  (``agreement``), and every warm execute was served from the epoch-keyed
  answer cache (``warm_all_cached``, counter-verified);
* since schema 2, a ``maintenance`` section: per workload and per delta
  fraction, how long delta-maintaining a standing query's answer set took
  versus recomputing it from scratch, the crossover fraction where
  recomputation starts winning, and the byte-level ``identical`` flag
  (maintained set == recomputed set at every measured point).

The ABoxes are the workloads' synthetic generators (deterministic per
seed), sized by ``--facts-per-relation``.

The script is import-safe for test collectors; it only runs under
``python benchmarks/bench_answering.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

_SRC = str(Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.evaluation import ANSWER_BACKENDS, AnsweringEvaluator  # noqa: E402
from repro.workloads import get_workload  # noqa: E402

WORKLOADS = ("V", "S", "U", "A", "P5")
SCHEMA_VERSION = 2

#: Mutation sizes, as fractions of the database, at which maintain and
#: recompute are compared.  The two smallest are the subscription sweet
#: spot; the largest sits past the typical crossover.
DELTA_FRACTIONS = (0.001, 0.01, 0.05, 0.2)

#: Timing repetitions per (workload, fraction) cell; minima are kept.
MAINTENANCE_ROUNDS = 3


def _mutate(database, rng, count: int) -> None:
    """Apply *count* interleaved inserts/deletes to *database*."""
    from repro.logic.atoms import Atom
    from repro.logic.terms import Constant

    predicates = sorted(database.predicates(), key=lambda p: (p.name, p.arity))
    constants = sorted(database.constants(), key=repr)[:64]
    facts = sorted(database.facts, key=repr)
    for index in range(count):
        if facts and rng.random() < 0.5:
            database.remove(facts.pop(rng.randrange(len(facts))))
        else:
            predicate = rng.choice(predicates)
            database.add(
                Atom.of(
                    predicate.name,
                    *(rng.choice(constants) for _ in range(predicate.arity)),
                )
            )


def measure_maintenance(seed: int, facts_per_relation: int) -> dict:
    """Maintain-vs-recompute timings per workload and delta fraction.

    For every Table 1 workload's first query a standing
    :class:`~repro.incremental.maintain.MaintainedAnswerSet` is polled
    after seeded mutation batches of increasing size; each poll is timed
    against re-executing the full prepared plan.  ``crossover`` records
    the smallest measured fraction at which recomputation was at least as
    fast as maintenance (``None`` when maintenance won everywhere).
    """
    import random

    from repro.api import OBDASystem

    section: dict = {
        "delta_fractions": list(DELTA_FRACTIONS),
        "rounds": MAINTENANCE_ROUNDS,
        "per_ontology": {},
    }
    identical = True
    small_delta_win = False
    for name in WORKLOADS:
        workload = get_workload(name)
        system = OBDASystem(
            workload.theory,
            database=workload.abox(
                seed=seed, facts_per_relation=facts_per_relation
            ),
            use_elimination=True,
            use_nc_pruning=False,
        )
        database = system.database
        query_name = workload.query_names[0]
        prepared = system.prepare(workload.query(query_name))
        prepared.poll()  # initial full computation, outside the timings
        rng = random.Random(seed * 31 + 17)
        deltas: dict = {}
        crossover = None
        for fraction in DELTA_FRACTIONS:
            count = max(1, int(len(database) * fraction))
            maintain = recompute = float("inf")
            modes: list[str] = []
            for _ in range(MAINTENANCE_ROUNDS):
                _mutate(database, rng, count)
                started = time.perf_counter()
                delta = prepared.poll()
                maintain = min(maintain, time.perf_counter() - started)
                modes.append(delta.mode)
                started = time.perf_counter()
                recomputed = prepared.plan.execute(database)
                recompute = min(recompute, time.perf_counter() - started)
                identical = identical and (
                    prepared.maintained_answers == recomputed
                )
            if fraction <= 0.01 and maintain < recompute:
                small_delta_win = True
            if crossover is None and recompute <= maintain:
                crossover = fraction
            deltas[str(fraction)] = {
                "delta_facts": count,
                "maintain_seconds": round(maintain, 6),
                "recompute_seconds": round(recompute, 6),
                "speedup": round(recompute / maintain, 2) if maintain else None,
                "modes": sorted(set(modes)),
            }
        section["per_ontology"][name] = {
            "facts": len(database),
            "query": query_name,
            "deltas": deltas,
            "crossover": crossover,
        }
        system.close()
    section["identical"] = identical
    section["maintain_wins_small_delta"] = small_delta_win
    return section


def run(seed: int, facts_per_relation: int) -> dict:
    """Execute the lifecycle on every workload and return the JSON document."""
    document: dict = {
        "schema": SCHEMA_VERSION,
        "benchmark": "answering",
        "workloads": list(WORKLOADS),
        "backends": list(ANSWER_BACKENDS),
        "configuration": {
            "seed": seed,
            "facts_per_relation": facts_per_relation,
            "use_elimination": True,
            "use_nc_pruning": False,
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
        },
    }
    per_ontology: dict = {}
    agreement = True
    warm_all_cached = True
    totals = {backend: 0.0 for backend in ANSWER_BACKENDS}
    started_all = time.perf_counter()
    for name in WORKLOADS:
        workload = get_workload(name)
        evaluator = AnsweringEvaluator(
            workload, seed=seed, facts_per_relation=facts_per_relation
        )
        queries: dict = {}
        for query_name in workload.query_names:
            cell: dict = {}
            for backend in ANSWER_BACKENDS:
                measurement = evaluator.measure(query_name, backend)
                warm_all_cached = warm_all_cached and measurement.warm_cached
                totals[backend] += measurement.cold_seconds
                cell[backend] = {
                    "prepare_seconds": round(measurement.prepare_seconds, 4),
                    "cold_seconds": round(measurement.cold_seconds, 5),
                    "warm_seconds": round(measurement.warm_seconds, 6),
                }
            cell["answers"] = measurement.answers
            cell["agree"] = evaluator.agree(query_name)
            agreement = agreement and cell["agree"]
            queries[query_name] = cell
        per_ontology[name] = {
            "facts": len(evaluator.system.database),
            "queries": queries,
        }
        evaluator.close()
    document["per_ontology"] = per_ontology
    document["maintenance"] = measure_maintenance(seed, facts_per_relation)
    document["total_seconds"] = round(time.perf_counter() - started_all, 4)
    document["cold_execute_seconds"] = {
        backend: round(total, 4) for backend, total in totals.items()
    }
    document["agreement"] = agreement
    document["warm_all_cached"] = warm_all_cached
    return document


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", default="BENCH_answering.json", help="where to write the JSON"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="ABox generator seed (default 0)"
    )
    parser.add_argument(
        "--facts-per-relation", type=int, default=25, metavar="N",
        help="ABox size knob (default 25)",
    )
    arguments = parser.parse_args(argv)
    document = run(arguments.seed, arguments.facts_per_relation)
    Path(arguments.output).write_text(
        json.dumps(document, indent=2, sort_keys=False) + "\n", encoding="utf-8"
    )
    executes = document["cold_execute_seconds"]
    print(
        f"answering over {len(WORKLOADS)} ontologies in "
        f"{document['total_seconds']}s (cold execute: "
        + ", ".join(f"{b} {s}s" for b, s in executes.items())
        + f") -> {arguments.output}"
    )
    maintenance = document["maintenance"]
    crossovers = {
        name: entry["crossover"]
        for name, entry in maintenance["per_ontology"].items()
    }
    print(
        f"backend agreement: {document['agreement']}; "
        f"warm executes cached: {document['warm_all_cached']}"
    )
    print(
        f"maintenance identical: {maintenance['identical']}; "
        f"small-delta win: {maintenance['maintain_wins_small_delta']}; "
        "crossover: "
        + ", ".join(f"{name} {point}" for name, point in crossovers.items())
    )
    # Timing outcomes (speedups, crossover points) are recorded, not
    # gated: only correctness invariants decide the exit code.
    passed = (
        document["agreement"]
        and document["warm_all_cached"]
        and maintenance["identical"]
    )
    return 0 if passed else 1


if __name__ == "__main__":
    raise SystemExit(main())
