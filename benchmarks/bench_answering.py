"""Machine-readable end-to-end answering benchmark (``make bench-json``).

Runs the prepare/execute serving lifecycle over the five Table 1
ontologies on both execution backends and writes one JSON document —
``BENCH_answering.json`` by default — so the answering-side performance
trajectory is tracked by artifacts, next to the compilation-side
``BENCH_parallel.json``:

* per-(ontology, query, backend): prepare time, cold execute time and
  warm (answer-cache) execute time, plus the answer count;
* the two invariants that make the numbers trustworthy: the in-memory
  and SQLite backends returned *identical* answer sets on every query
  (``agreement``), and every warm execute was served from the epoch-keyed
  answer cache (``warm_all_cached``, counter-verified).

The ABoxes are the workloads' synthetic generators (deterministic per
seed), sized by ``--facts-per-relation``.

The script is import-safe for test collectors; it only runs under
``python benchmarks/bench_answering.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

_SRC = str(Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.evaluation import ANSWER_BACKENDS, AnsweringEvaluator  # noqa: E402
from repro.workloads import get_workload  # noqa: E402

WORKLOADS = ("V", "S", "U", "A", "P5")
SCHEMA_VERSION = 1


def run(seed: int, facts_per_relation: int) -> dict:
    """Execute the lifecycle on every workload and return the JSON document."""
    document: dict = {
        "schema": SCHEMA_VERSION,
        "benchmark": "answering",
        "workloads": list(WORKLOADS),
        "backends": list(ANSWER_BACKENDS),
        "configuration": {
            "seed": seed,
            "facts_per_relation": facts_per_relation,
            "use_elimination": True,
            "use_nc_pruning": False,
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
        },
    }
    per_ontology: dict = {}
    agreement = True
    warm_all_cached = True
    totals = {backend: 0.0 for backend in ANSWER_BACKENDS}
    started_all = time.perf_counter()
    for name in WORKLOADS:
        workload = get_workload(name)
        evaluator = AnsweringEvaluator(
            workload, seed=seed, facts_per_relation=facts_per_relation
        )
        queries: dict = {}
        for query_name in workload.query_names:
            cell: dict = {}
            for backend in ANSWER_BACKENDS:
                measurement = evaluator.measure(query_name, backend)
                warm_all_cached = warm_all_cached and measurement.warm_cached
                totals[backend] += measurement.cold_seconds
                cell[backend] = {
                    "prepare_seconds": round(measurement.prepare_seconds, 4),
                    "cold_seconds": round(measurement.cold_seconds, 5),
                    "warm_seconds": round(measurement.warm_seconds, 6),
                }
            cell["answers"] = measurement.answers
            cell["agree"] = evaluator.agree(query_name)
            agreement = agreement and cell["agree"]
            queries[query_name] = cell
        per_ontology[name] = {
            "facts": len(evaluator.system.database),
            "queries": queries,
        }
        evaluator.close()
    document["per_ontology"] = per_ontology
    document["total_seconds"] = round(time.perf_counter() - started_all, 4)
    document["cold_execute_seconds"] = {
        backend: round(total, 4) for backend, total in totals.items()
    }
    document["agreement"] = agreement
    document["warm_all_cached"] = warm_all_cached
    return document


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", default="BENCH_answering.json", help="where to write the JSON"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="ABox generator seed (default 0)"
    )
    parser.add_argument(
        "--facts-per-relation", type=int, default=25, metavar="N",
        help="ABox size knob (default 25)",
    )
    arguments = parser.parse_args(argv)
    document = run(arguments.seed, arguments.facts_per_relation)
    Path(arguments.output).write_text(
        json.dumps(document, indent=2, sort_keys=False) + "\n", encoding="utf-8"
    )
    executes = document["cold_execute_seconds"]
    print(
        f"answering over {len(WORKLOADS)} ontologies in "
        f"{document['total_seconds']}s (cold execute: "
        + ", ".join(f"{b} {s}s" for b, s in executes.items())
        + f") -> {arguments.output}"
    )
    print(
        f"backend agreement: {document['agreement']}; "
        f"warm executes cached: {document['warm_all_cached']}"
    )
    return 0 if document["agreement"] and document["warm_all_cached"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
