"""Warm versus cold persistent-cache compilation over the Table 1 ontologies.

The compile-once serving layer promises that re-running a whole workload
against a warm :class:`repro.cache.store.RewritingStore` costs loading and
deserialisation only — no ``TGD-rewrite`` work at all.  Each benchmark
compiles a full Table 1 block (all five queries, plain *and* optimised
engine, i.e. both the NY and NY* columns) through
:meth:`repro.api.OBDASystem.compile_many`; the cold run starts from an
empty store directory, the warm run re-opens the store the cold run
filled.  Both runs must reproduce the exact sizes pinned in
``tests/integration/test_regression_sizes.py`` — the warm run just gets
them from disk.  Headline numbers live in ``docs/BENCHMARKS.md``.
"""

import shutil
import sys
from pathlib import Path

import pytest

from repro.api import OBDASystem
from repro.workloads import get_workload

# The pinned Table 1 sizes live in the test suite; make the repo root
# importable so a bare `pytest benchmarks` finds them too.
_ROOT = str(Path(__file__).resolve().parent.parent)
if _ROOT not in sys.path:
    sys.path.insert(0, _ROOT)

WORKLOADS = ("V", "S", "U", "A", "P5")


def compile_workload(name: str, cache_dir) -> dict[str, tuple[int, int]]:
    """Compile a Table 1 block (NY and NY* engines) against *cache_dir*."""
    workload = get_workload(name)
    sizes: dict[str, list[int]] = {}
    for use_elimination in (False, True):
        system = OBDASystem(
            workload.theory, use_elimination=use_elimination, cache=cache_dir
        )
        results = system.compile_many(
            workload.query(query_name) for query_name in workload.query_names
        )
        for query_name, result in zip(workload.query_names, results):
            sizes.setdefault(query_name, []).append(result.size)
    return {query_name: tuple(pair) for query_name, pair in sizes.items()}


@pytest.fixture()
def expected_sizes():
    from tests.integration.test_regression_sizes import EXPECTED_SIZES

    return EXPECTED_SIZES


@pytest.mark.parametrize("workload_name", WORKLOADS)
def test_cold_compile_workload(benchmark, tmp_path, workload_name, expected_sizes):
    """Cold run: empty store, every rewriting computed and persisted."""

    def cold():
        shutil.rmtree(tmp_path / "store", ignore_errors=True)
        return compile_workload(workload_name, tmp_path / "store")

    sizes = benchmark.pedantic(cold, rounds=1, iterations=1)
    assert sizes == expected_sizes[workload_name]
    benchmark.extra_info["workload"] = workload_name
    benchmark.extra_info["mode"] = "cold"


@pytest.mark.parametrize("workload_name", WORKLOADS)
def test_warm_compile_workload(benchmark, tmp_path, workload_name, expected_sizes):
    """Warm run: the store already holds every rewriting of the block."""
    compile_workload(workload_name, tmp_path / "store")

    def warm():
        return compile_workload(workload_name, tmp_path / "store")

    sizes = benchmark.pedantic(warm, rounds=1, iterations=1)
    assert sizes == expected_sizes[workload_name]
    benchmark.extra_info["workload"] = workload_name
    benchmark.extra_info["mode"] = "warm"


def test_warm_run_serves_everything_from_the_store(tmp_path):
    """No rewriting happens on the warm pass: every result is a store hit."""
    workload = get_workload("S")
    compile_workload("S", tmp_path / "store")
    system = OBDASystem(workload.theory, cache=tmp_path / "store")
    results = system.compile_many(
        workload.query(query_name) for query_name in workload.query_names
    )
    assert all(result.statistics.persistent_cache_hits == 1 for result in results)
    info = system.rewriting_cache_info()
    assert info.persistent_misses == 0
