"""The Section 1 worked example: naive rewriting vs. query elimination.

The introduction of the paper motivates query elimination with the financial
query over the Stock-Exchange schema: the naive perfect rewriting contains
hundreds of CQs and over a thousand joins, while eliminating the three
redundant atoms up front leaves a perfect rewriting of exactly two CQs with
two joins.  This benchmark reproduces that contrast (the absolute naive
count depends on the normalisation of σ1-σ4/σ7, but the optimised rewriting
is exactly the one printed in the paper).
"""

from repro.core.rewriter import TGDRewriter
from repro.database.evaluator import QueryEvaluator
from repro.metrics import ucq_metrics
from repro.queries.ucq import QuerySet
from repro.workloads import stock_exchange_example as running


def test_intro_example_naive_rewriting(benchmark):
    """The naive perfect rewriting of the running query is large."""
    rewriter = TGDRewriter(running.theory().tgds)
    result = benchmark.pedantic(
        rewriter.rewrite, args=(running.running_query(),), rounds=1, iterations=1
    )
    metrics = ucq_metrics(result.ucq)
    assert metrics.size >= 50
    assert metrics.width >= 100
    benchmark.extra_info.update(size=metrics.size, length=metrics.length, width=metrics.width)


def test_intro_example_optimised_rewriting(benchmark):
    """TGD-rewrite* produces exactly the two CQs quoted at the end of Section 1."""
    rewriter = TGDRewriter(running.theory().tgds, use_elimination=True)
    result = benchmark.pedantic(
        rewriter.rewrite, args=(running.running_query(),), rounds=1, iterations=1
    )
    metrics = ucq_metrics(result.ucq)
    assert metrics.size == 2
    assert metrics.length == 4
    assert metrics.width == 2  # "executing only two joins"
    store = QuerySet(result.ucq)
    for expected in running.expected_optimized_rewriting():
        assert store.find_variant(expected) is not None
    benchmark.extra_info.update(size=metrics.size, length=metrics.length, width=metrics.width)


def test_intro_example_answers_are_preserved(benchmark):
    """Both rewritings return the same certain answers on the sample database."""
    theory = running.theory()
    query = running.running_query()
    database = running.sample_database()
    naive = TGDRewriter(theory.tgds).rewrite(query)
    optimised = TGDRewriter(theory.tgds, use_elimination=True).rewrite(query)
    evaluator = QueryEvaluator(database)

    def evaluate_both():
        return evaluator.evaluate_ucq(naive.ucq), evaluator.evaluate_ucq(optimised.ucq)

    naive_answers, optimised_answers = benchmark.pedantic(
        evaluate_both, rounds=1, iterations=1
    )
    assert naive_answers == optimised_answers
    assert len(optimised_answers) == 2
