"""Helper functions shared by the benchmark modules (see conftest.py)."""

from __future__ import annotations

from repro.evaluation import Table1Evaluator


def rewriting_cell(benchmark, evaluator: Table1Evaluator, system: str, query_name: str):
    """Benchmark one (system, query) cell of Table 1 and return its measurement.

    A single round is measured: the quantity the paper reports is the size /
    length / width of the rewriting, which is deterministic; the wall-clock
    time is recorded as supplementary information only.  The metrics are
    attached to ``benchmark.extra_info`` so they appear in the JSON report.
    """
    measurement = benchmark.pedantic(
        evaluator.measure, args=(system, query_name), rounds=1, iterations=1
    )
    benchmark.extra_info["workload"] = evaluator.workload.name
    benchmark.extra_info["query"] = query_name
    benchmark.extra_info["system"] = system
    benchmark.extra_info["size"] = measurement.size
    benchmark.extra_info["length"] = measurement.length
    benchmark.extra_info["width"] = measurement.width
    return measurement


def assert_shape(row, *, elimination_helps: bool | None = None, min_collapse: float = 1.0):
    """Qualitative Table 1 checks on a full row (all four systems).

    Parameters
    ----------
    row:
        A :class:`repro.evaluation.Table1Row` with QO / RQ / NY / NY* cells.
    elimination_helps:
        ``True`` — NY* must be at least ``min_collapse`` times smaller than
        NY; ``False`` — NY* must equal NY (no gain); ``None`` — only the
        universal orderings are checked.
    min_collapse:
        The minimum NY / NY* size ratio when *elimination_helps* is ``True``.
    """
    quonto, nyaya, nyaya_star = row.cell("QO"), row.cell("NY"), row.cell("NY*")
    assert nyaya_star.size <= nyaya.size, "query elimination must never add CQs"
    assert quonto.size >= nyaya.size, "exhaustive factorisation must not shrink the rewriting"
    if elimination_helps is True:
        assert nyaya_star.size * min_collapse <= nyaya.size
    elif elimination_helps is False:
        assert nyaya_star.size == nyaya.size
