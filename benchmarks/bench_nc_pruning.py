"""Ablation: pruning the rewriting with negative constraints (Section 5.1).

The paper observes (Example 5) that a CQ generated during rewriting whose
body embeds the body of a negative constraint can never be entailed by a
consistent database and can be dropped.  The benchmark measures the size of
the rewriting with and without the optimisation, on Example 5 itself and on
the Stock-Exchange ontology extended with a disjointness constraint that the
rewriting of a mixed query would otherwise violate.
"""

from repro.core.rewriter import TGDRewriter
from repro.logic.atoms import Atom
from repro.logic.terms import Variable
from repro.queries.conjunctive_query import ConjunctiveQuery
from repro.workloads import stock_exchange_example as running
from repro.workloads.paper_examples import (
    example5_constraint,
    example5_query,
    example5_rule,
)

A, B, C, D = Variable("A"), Variable("B"), Variable("C"), Variable("D")


def test_example5_pruning(benchmark):
    """NC pruning removes the spurious query of Example 5."""
    rules = [example5_rule()]
    constraint = example5_constraint()
    pruning_rewriter = TGDRewriter(
        rules, negative_constraints=[constraint], use_nc_pruning=True
    )

    pruned = benchmark.pedantic(
        pruning_rewriter.rewrite, args=(example5_query(),), rounds=1, iterations=1
    )
    plain = TGDRewriter(rules).rewrite(example5_query())

    assert len(pruned.ucq) < len(plain.ucq)
    assert pruned.statistics.pruned_by_constraints >= 1
    benchmark.extra_info["size_without_pruning"] = len(plain.ucq)
    benchmark.extra_info["size_with_pruning"] = len(pruned.ucq)


def test_stock_exchange_pruning(benchmark):
    """δ1 prunes the CQs that would join financial instruments with legal persons."""
    theory = running.theory()
    # Ask for stocks held by something that is itself a financial instrument
    # *and* a company owner — the constraint δ1 makes part of the expansion
    # unsatisfiable.
    query = ConjunctiveQuery(
        [
            Atom.of("legal_person", A),
            Atom.of("stock_portf", A, B, C),
            Atom.of("fin_ins", B),
        ],
        (A, B),
    )
    plain = TGDRewriter(theory.tgds).rewrite(query)
    pruning_rewriter = TGDRewriter(
        theory.tgds,
        negative_constraints=theory.negative_constraints,
        use_nc_pruning=True,
    )
    pruned = benchmark.pedantic(
        pruning_rewriter.rewrite, args=(query,), rounds=1, iterations=1
    )
    assert len(pruned.ucq) <= len(plain.ucq)
    benchmark.extra_info["size_without_pruning"] = len(plain.ucq)
    benchmark.extra_info["size_with_pruning"] = len(pruned.ucq)
