"""The ``make strategy-smoke`` gate: strategies must agree byte for byte.

Compiles the StockExchange workload (NY* engine) under the sequential and
threaded strategies — threads share one engine, so any hidden
order-dependence in the frontier kernel's merge would surface here — and
fails unless every query's rewriting matches exactly: same sizes, same
canonical keys, same members in the same order.  Cheap enough to gate
every CI run (a couple of seconds); the exhaustive cross-strategy matrix
(all five Table 1 ontologies, chunked processes, checkpoint resume) lives
in ``tests/integration/test_strategy_determinism.py``.

The script is import-safe for test collectors; it only runs under
``python benchmarks/strategy_smoke.py``.
"""

from __future__ import annotations

import sys
from pathlib import Path

_SRC = str(Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.core.rewriter import TGDRewriter  # noqa: E402
from repro.scheduling import ThreadedStrategy  # noqa: E402
from repro.workloads import get_workload  # noqa: E402

WORKLOAD = "S"


def main() -> int:
    workload = get_workload(WORKLOAD)
    sequential = TGDRewriter(workload.theory.tgds, use_elimination=True)
    with ThreadedStrategy(threads=4) as strategy:
        threaded = TGDRewriter(
            workload.theory.tgds, use_elimination=True, strategy=strategy
        )
        failures = 0
        for name in workload.query_names:
            query = workload.query(name)
            reference = sequential.rewrite(query)
            candidate = threaded.rewrite(query)
            size_ok = len(candidate.ucq) == len(reference.ucq)
            keys_ok = [m.canonical_key for m in candidate.ucq] == [
                m.canonical_key for m in reference.ucq
            ]
            members_ok = candidate.ucq.queries == reference.ucq.queries
            status = "ok" if (size_ok and keys_ok and members_ok) else "MISMATCH"
            print(
                f"{WORKLOAD}/{name}: sequential {len(reference.ucq)} CQs, "
                f"threaded {len(candidate.ucq)} CQs — {status}"
            )
            if status != "ok":
                failures += 1
    if failures:
        print(
            f"error: {failures} queries diverged between sequential and "
            "threaded scheduling",
            file=sys.stderr,
        )
        return 1
    print(f"# strategy smoke: {WORKLOAD} identical under sequential and threaded")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
