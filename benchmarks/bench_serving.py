"""Machine-readable serving load benchmark (``make bench-json``).

Boots the full serving stack — :class:`~repro.serving.app.ServingApp`
behind a real :class:`~repro.serving.http.ServingServer` socket — and
drives it with an async load generator (``--clients`` concurrent
keep-alive connections), writing one JSON document
(``BENCH_serving.json`` by default) so the serving-side performance
trajectory is tracked by CI artifacts next to the compilation and
answering benchmarks.

Three phases per run:

* **cold** — every client simultaneously requests the same so-far
  uncompiled queries: measures coalesced compile latency (one engine run
  per query serves the whole herd);
* **warm** — the same queries again: measures the steady-state serving
  path (in-process rewriting cache + epoch-keyed answer cache);
* **mixed** — a deterministic 1-in-``--cold-ratio`` interleave of fresh
  bound variants and warm repeats: measures what a live tenant sees.

Per phase: requests, wall seconds, throughput (qps) and the p50 / p90 /
p99 latency quantiles in milliseconds; plus the coalescing counters
(leaders / joined / engine compiles) that prove the cold phase really
was single-flight.

The script is import-safe for test collectors; it only runs under
``python benchmarks/bench_serving.py``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
import sys
import time
from pathlib import Path

_SRC = str(Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.serving import ServingApp, ServingClient, ServingServer  # noqa: E402

SCHEMA_VERSION = 1
WORKLOAD = "S"

#: The served query mix: Table 1 StockExchange-shaped queries of
#: increasing join width, answered over a small synthetic ABox.
QUERIES = (
    "q(A) :- stock(A)",
    "q(A) :- financial_instrument(A)",
    "q(A, B) :- listed_in(A, B), stock_exchange(B)",
    "q(A) :- stock(A), listed_in(A, B)",
)

FACTS = [
    ["stock", ["acme"]],
    ["stock", ["globex"]],
    ["listed_in", ["acme", "nyse"]],
    ["listed_in", ["globex", "lse"]],
    ["stock_exchange", ["nyse"]],
    ["stock_exchange", ["lse"]],
    ["financial_instrument", ["acme_bond"]],
]


def quantile(samples: list[float], q: float) -> float:
    """The *q*-quantile of *samples* by linear interpolation."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    position = (len(ordered) - 1) * q
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    return ordered[low] + (ordered[high] - ordered[low]) * (position - low)


def summarize(latencies: list[float], wall_seconds: float) -> dict:
    """Latency quantiles (ms) + throughput for one phase."""
    return {
        "requests": len(latencies),
        "wall_seconds": round(wall_seconds, 4),
        "qps": round(len(latencies) / wall_seconds, 1) if wall_seconds else 0.0,
        "latency_ms": {
            "p50": round(quantile(latencies, 0.50) * 1000.0, 3),
            "p90": round(quantile(latencies, 0.90) * 1000.0, 3),
            "p99": round(quantile(latencies, 0.99) * 1000.0, 3),
            "max": round(max(latencies, default=0.0) * 1000.0, 3),
        },
    }


async def drive_phase(
    port: int, clients: int, plans: list[list[dict]]
) -> tuple[list[float], float]:
    """Run per-client request plans concurrently; returns (latencies, wall)."""

    async def one_client(plan: list[dict]) -> list[float]:
        client = ServingClient("127.0.0.1", port)
        latencies = []
        try:
            for payload in plan:
                started = time.perf_counter()
                response = await client.request("POST", "/answer", payload)
                latencies.append(time.perf_counter() - started)
                if not response.ok:
                    raise RuntimeError(f"request failed: {response.payload}")
        finally:
            await client.aclose()
        return latencies

    started = time.perf_counter()
    results = await asyncio.gather(*(one_client(plan) for plan in plans[:clients]))
    wall = time.perf_counter() - started
    return [latency for batch in results for latency in batch], wall


async def run(clients: int, requests: int, cold_ratio: int) -> dict:
    """Boot the service, run the three phases, return the JSON document."""
    app = ServingApp()
    server = ServingServer(app)
    await server.start()
    try:
        setup = ServingClient("127.0.0.1", server.port)
        response = await setup.request(
            "POST",
            "/register-theory",
            {"tenant": "bench", "workload": WORKLOAD, "facts": FACTS},
        )
        if response.status != 201:
            raise RuntimeError(f"registration failed: {response.payload}")
        await setup.aclose()

        artifacts = app.registry.get("bench").artifacts
        phases: dict = {}

        # cold: every client hammers the same uncompiled queries at once.
        cold_plan = [
            [
                {"tenant": "bench", "query": query}
                for query in QUERIES
            ]
            for _ in range(clients)
        ]
        latencies, wall = await drive_phase(server.port, clients, cold_plan)
        phases["cold"] = summarize(latencies, wall)
        phases["cold"]["engine_compiles"] = artifacts.compiles

        # warm: the same mix again — pure cache serving.
        per_client = max(1, requests // clients)
        warm_plan = [
            [
                {"tenant": "bench", "query": QUERIES[i % len(QUERIES)]}
                for i in range(per_client)
            ]
            for _ in range(clients)
        ]
        latencies, wall = await drive_phase(server.port, clients, warm_plan)
        phases["warm"] = summarize(latencies, wall)

        # mixed: deterministic 1-in-N fresh bound variants among repeats.
        mixed_plan = []
        for client_index in range(clients):
            plan = []
            for i in range(per_client):
                if cold_ratio and i % cold_ratio == 0:
                    # A fresh constant makes a structurally fresh query:
                    # compile + plan + execute, like a new tenant question.
                    plan.append(
                        {
                            "tenant": "bench",
                            "query": (
                                f"q(B) :- listed_in(c{client_index}_{i}, B), "
                                "stock_exchange(B)"
                            ),
                        }
                    )
                else:
                    plan.append(
                        {"tenant": "bench", "query": QUERIES[i % len(QUERIES)]}
                    )
            mixed_plan.append(plan)
        latencies, wall = await drive_phase(server.port, clients, mixed_plan)
        phases["mixed"] = summarize(latencies, wall)

        stats = await app.request("GET", "/stats")
        coalescing = stats.payload["coalescing"]
        return {
            "schema": SCHEMA_VERSION,
            "benchmark": "serving",
            "workload": WORKLOAD,
            "configuration": {
                "clients": clients,
                "requests": requests,
                "cold_ratio": cold_ratio,
                "queries": list(QUERIES),
                "facts": len(FACTS),
                "cpu_count": os.cpu_count(),
                "python": platform.python_version(),
            },
            "phases": phases,
            "coalescing": {
                "leaders": coalescing["leaders"],
                "joined": coalescing["joined"],
                "engine_compiles": artifacts.compiles,
            },
            "requests_served": server.requests_served,
        }
    finally:
        await server.stop()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", default="BENCH_serving.json", help="where to write the JSON"
    )
    parser.add_argument(
        "--clients", type=int, default=16, metavar="N",
        help="concurrent keep-alive client connections (default 16)",
    )
    parser.add_argument(
        "--requests", type=int, default=800, metavar="N",
        help="total requests per warm/mixed phase (default 800)",
    )
    parser.add_argument(
        "--cold-ratio", type=int, default=8, metavar="N",
        help="mixed phase: one fresh (cold) query per N requests (default 8)",
    )
    arguments = parser.parse_args(argv)
    document = asyncio.run(
        run(arguments.clients, arguments.requests, arguments.cold_ratio)
    )
    Path(arguments.output).write_text(
        json.dumps(document, indent=2, sort_keys=False) + "\n", encoding="utf-8"
    )
    for phase, numbers in document["phases"].items():
        latency = numbers["latency_ms"]
        print(
            f"{phase}: {numbers['requests']} requests, {numbers['qps']} qps, "
            f"p50 {latency['p50']}ms, p99 {latency['p99']}ms"
        )
    coalescing = document["coalescing"]
    print(
        f"coalescing: {coalescing['leaders']} leaders, "
        f"{coalescing['joined']} joined, "
        f"{coalescing['engine_compiles']} engine compiles "
        f"-> {arguments.output}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
