"""Ablation: query elimination vs. the chase & back-chase minimiser (Section 2 / 6).

The paper positions its polynomial-time query elimination against the
optimal — but exponential — C&B algorithm: C&B finds every minimal
reformulation (including implications that atom coverage cannot detect,
Example 8) at the cost of chasing exponentially many candidate databases.
This benchmark quantifies that trade-off on the paper's own examples and on
a STOCKEXCHANGE query: elimination is orders of magnitude faster, C&B is at
least as thorough.
"""

import time

from repro.baselines.chase_backchase import ChaseBackchase
from repro.core.elimination import QueryEliminator
from repro.workloads import get_workload
from repro.workloads.paper_examples import example6_rules, example7_query, example8_query


def test_example7_elimination_vs_backchase(benchmark):
    """Both techniques reduce the Example 7 query; elimination is the cheap one."""
    rules = example6_rules()
    eliminator = QueryEliminator(rules)
    backchase = ChaseBackchase(rules)
    query = example7_query()

    reduced = benchmark(eliminator.eliminate, query)

    minimal = backchase.minimize(query)
    assert len(reduced.body) == 2
    assert len(minimal.body) <= len(reduced.body)


def test_example8_backchase_is_more_thorough(benchmark):
    """C&B finds the one-atom reformulation that coverage provably misses."""
    rules = example6_rules()
    backchase = ChaseBackchase(rules)
    query = example8_query()

    result = benchmark.pedantic(backchase.reformulate, args=(query,), rounds=1, iterations=1)

    assert result.minimal_size == 1
    reduced = QueryEliminator(rules).eliminate(query)
    assert len(reduced.body) == 2  # elimination cannot shrink this query
    benchmark.extra_info["backchase_minimal_size"] = result.minimal_size


def test_stockexchange_elimination_is_much_faster_than_backchase(benchmark):
    """On S q3, elimination matches C&B's reduction at a fraction of the cost."""
    workload = get_workload("S")
    rules = list(workload.theory.normalized().tgds)
    query = workload.query("q3")
    eliminator = QueryEliminator(rules)
    backchase = ChaseBackchase(rules, max_chase_depth=3, max_plan_atoms=12)

    reduced = benchmark(eliminator.eliminate, query)

    start = time.perf_counter()
    minimal = backchase.minimize(query)
    backchase_seconds = time.perf_counter() - start

    assert len(reduced.body) <= 3
    assert len(minimal.body) <= len(query.body)
    benchmark.extra_info["eliminated_body_size"] = len(reduced.body)
    benchmark.extra_info["backchase_body_size"] = len(minimal.body)
    benchmark.extra_info["backchase_seconds"] = round(backchase_seconds, 4)
