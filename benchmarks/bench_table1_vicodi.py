"""Table 1, block V (VICODI): rewriting size / length / width for q1-q5.

The paper's finding for VICODI is that query elimination brings no benefit
(``NY`` = ``NY*``): the ontology is a pure taxonomy, so no query atom is
implied by another one.  QuOnto-style exhaustive factorisation still pays a
price on q4/q5, where repeated ``hasRole`` atoms unify.
"""

import pytest

from _helpers import assert_shape, rewriting_cell
from repro.evaluation import SYSTEMS

QUERIES = ("q1", "q2", "q3", "q4", "q5")


@pytest.mark.parametrize("system", SYSTEMS)
@pytest.mark.parametrize("query_name", QUERIES)
def test_vicodi_cell(benchmark, evaluators, system, query_name):
    """One (system, query) cell of the V block."""
    measurement = rewriting_cell(benchmark, evaluators("V"), system, query_name)
    assert measurement.size >= 1


@pytest.mark.parametrize("query_name", QUERIES)
def test_vicodi_row_shape(benchmark, evaluators, query_name):
    """Qualitative shape of a whole V row: elimination gains nothing."""
    row = benchmark.pedantic(evaluators("V").row, args=(query_name,), rounds=1, iterations=1)
    assert_shape(row, elimination_helps=False)
    benchmark.extra_info.update(row.as_dict())
