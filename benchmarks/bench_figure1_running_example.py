"""Figure 1: the partial rewriting of the Stock-Exchange running example.

Figure 1 of the paper shows the first steps of the naive rewriting of the
running query: q[1] is obtained from q[0] with σ6, q[2] from q[1] with σ1,
and q[3] from q[2] with σ8.  The benchmark times the full TGD-rewrite run on
the running query and asserts that all four queries of the figure occur in
the perfect rewriting.
"""

from repro.core.rewriter import TGDRewriter
from repro.queries.ucq import QuerySet
from repro.workloads import stock_exchange_example as running


def test_figure1_partial_rewriting(benchmark):
    """The queries q[0] ... q[3] of Figure 1 all appear in the rewriting."""
    rewriter = TGDRewriter(running.theory().tgds)

    result = benchmark.pedantic(
        rewriter.rewrite, args=(running.running_query(),), rounds=1, iterations=1
    )

    store = QuerySet(result.ucq)
    for index, figure_query in enumerate(running.figure1_queries()):
        assert store.find_variant(figure_query) is not None, f"q[{index}] missing"
    benchmark.extra_info["rewriting_size"] = len(result.ucq)


def test_figure1_queries_are_pairwise_distinct(benchmark):
    """Sanity check on the figure itself: the four queries are not variants."""
    queries = benchmark(running.figure1_queries)
    for i, first in enumerate(queries):
        for second in queries[i + 1 :]:
            assert not first.is_variant_of(second)
