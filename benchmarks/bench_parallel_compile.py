"""Machine-readable parallel-compilation benchmark (``make bench-json``).

Compiles the five Table 1 ontologies cold (sequential), cold (process
pool via :func:`repro.parallel.compile_workloads`) and warm (served from
the persistent store the parallel run filled), and writes one JSON
document — ``BENCH_parallel.json`` by default — so the performance
trajectory of the repository is tracked by artifacts instead of prose:

* per-ontology (and per-query) wall-clock and rewriting sizes for the
  sequential run;
* batch wall-clock and speedup for the parallel run, plus the two
  invariants that make the speedup trustworthy: identical sizes and
  byte-identical stores under every worker count;
* the **intra-query axis**: the slowest ontology recompiled with its
  frontier generations split across the pool
  (:class:`repro.scheduling.ChunkedProcessStrategy`), together with the
  per-query granularity ceiling (``ontology total / slowest query``)
  that intra-query scheduling exists to break — on a single-CPU host
  the recorded speedups degenerate to ≤1, so read them alongside the
  recorded ``cpu_count``;
* warm wall-clock (the compile-once serving layer, for scale).

The headline configuration is the plain ``TGD-rewrite`` engine (the NY
column): that is the expensive compilation path, and unlike NY* it is
not dominated by a single skewed query.  Run with ``--elimination`` to
measure the NY* engine instead.

The script is import-safe for test collectors; it only runs under
``python benchmarks/bench_parallel_compile.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

_SRC = str(Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.api import OBDASystem  # noqa: E402
from repro.parallel import compile_workloads, resolve_workers  # noqa: E402
from repro.workloads import get_workload  # noqa: E402

WORKLOADS = ("V", "S", "U", "A", "P5")
SCHEMA_VERSION = 2


def _make_jobs(cache_root: Path, use_elimination: bool):
    """One (system, queries) job per Table 1 ontology, cache per ontology."""
    jobs = []
    for name in WORKLOADS:
        workload = get_workload(name)
        system = OBDASystem(
            workload.theory,
            use_elimination=use_elimination,
            use_nc_pruning=False,
            cache=cache_root / name,
        )
        jobs.append((system, [workload.query(q) for q in workload.query_names]))
    return jobs


def _sizes(results) -> dict[str, dict[str, int]]:
    return {
        name: {
            query_name: len(result.ucq)
            for query_name, result in zip(
                get_workload(name).query_names, job_results
            )
        }
        for name, job_results in zip(WORKLOADS, results)
    }


def _store_bytes(cache_root: Path) -> dict[str, bytes]:
    return {
        name: (cache_root / name / "rewritings.jsonl").read_bytes()
        for name in WORKLOADS
    }


def run(workers: int | None, use_elimination: bool) -> dict:
    """Execute the three measured phases and return the JSON document."""
    workers = resolve_workers(workers)
    document: dict = {
        "schema": SCHEMA_VERSION,
        "benchmark": "parallel_compile",
        "workloads": list(WORKLOADS),
        "configuration": {
            "use_elimination": use_elimination,
            "use_nc_pruning": False,
            "workers": workers,
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
        },
    }

    with tempfile.TemporaryDirectory(prefix="bench-parallel-") as scratch:
        scratch = Path(scratch)

        # -- cold, sequential: one ontology at a time, workers=1 ----------
        sequential_root = scratch / "sequential"
        per_ontology = {}
        sequential_total = 0.0
        sequential_results = []
        for name in WORKLOADS:
            workload = get_workload(name)
            system = OBDASystem(
                workload.theory,
                use_elimination=use_elimination,
                use_nc_pruning=False,
                cache=sequential_root / name,
            )
            queries = [workload.query(q) for q in workload.query_names]
            started = time.perf_counter()
            results = system.compile_many(queries, workers=1)
            elapsed = time.perf_counter() - started
            sequential_total += elapsed
            sequential_results.append(results)
            per_ontology[name] = {
                "seconds": round(elapsed, 4),
                "per_query_seconds": {
                    q: round(r.statistics.elapsed_seconds, 4)
                    for q, r in zip(workload.query_names, results)
                },
                "sizes": {
                    q: len(r.ucq) for q, r in zip(workload.query_names, results)
                },
            }
        document["cold_sequential"] = {
            "total_seconds": round(sequential_total, 4),
            "per_ontology": per_ontology,
        }

        # -- cold, parallel: all five ontologies through one pool ---------
        parallel_root = scratch / "parallel"
        jobs = _make_jobs(parallel_root, use_elimination)
        started = time.perf_counter()
        parallel_results = compile_workloads(jobs, workers=workers)
        parallel_total = time.perf_counter() - started
        document["cold_parallel"] = {
            "total_seconds": round(parallel_total, 4),
            "workers": workers,
        }
        document["speedup_cold"] = round(sequential_total / parallel_total, 3)
        document["sizes_identical"] = _sizes(parallel_results) == _sizes(
            sequential_results
        )
        document["stores_identical"] = _store_bytes(parallel_root) == _store_bytes(
            sequential_root
        )

        # -- intra-query: split the slowest ontology's frontiers ----------
        # Per-query tasks cap the parallel speedup of one ontology at
        # total / slowest-query; the chunked strategy removes that ceiling
        # by spreading each frontier generation across the pool.
        slowest = max(per_ontology, key=lambda name: per_ontology[name]["seconds"])
        slowest_sequential = per_ontology[slowest]["seconds"]
        slowest_query = max(per_ontology[slowest]["per_query_seconds"].values())
        ceiling = (
            slowest_sequential / slowest_query if slowest_query > 0 else None
        )
        from repro.scheduling import ChunkedProcessStrategy  # noqa: E402

        workload = get_workload(slowest)
        intra_root = scratch / "intra"
        system = OBDASystem(
            workload.theory,
            use_elimination=use_elimination,
            use_nc_pruning=False,
            cache=intra_root / slowest,
        )
        strategy = ChunkedProcessStrategy(workers=workers)
        queries = [workload.query(q) for q in workload.query_names]
        started = time.perf_counter()
        try:
            intra_results = compile_workloads(
                [(system, queries)], workers=workers, strategy=strategy
            )[0]
        finally:
            strategy.close()
        intra_total = time.perf_counter() - started
        document["intra_query"] = {
            "ontology": slowest,
            "strategy": "chunked",
            "workers": workers,
            "seconds": round(intra_total, 4),
            "sequential_seconds": slowest_sequential,
            "speedup": round(slowest_sequential / intra_total, 3)
            if intra_total > 0
            else None,
            "per_query_granularity_ceiling": round(ceiling, 3)
            if ceiling is not None
            else None,
            "sizes_identical": {
                q: len(r.ucq) for q, r in zip(workload.query_names, intra_results)
            }
            == per_ontology[slowest]["sizes"],
            "stores_identical": (
                intra_root / slowest / "rewritings.jsonl"
            ).read_bytes()
            == (sequential_root / slowest / "rewritings.jsonl").read_bytes(),
        }

        # -- warm: served back from the store the parallel run filled -----
        warm_jobs = _make_jobs(parallel_root, use_elimination)
        started = time.perf_counter()
        warm_results = compile_workloads(warm_jobs, workers=workers)
        warm_total = time.perf_counter() - started
        document["warm"] = {
            "total_seconds": round(warm_total, 4),
            "all_hits": all(
                result.statistics.persistent_cache_hits == 1
                for job_results in warm_results
                for result in job_results
            ),
        }
    return document


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", default="BENCH_parallel.json", help="where to write the JSON"
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="pool size for the parallel phase (default: one per CPU)",
    )
    parser.add_argument(
        "--elimination", action="store_true",
        help="measure the NY* engine (TGD-rewrite*) instead of plain NY",
    )
    arguments = parser.parse_args(argv)
    document = run(arguments.workers, arguments.elimination)
    Path(arguments.output).write_text(
        json.dumps(document, indent=2, sort_keys=False) + "\n", encoding="utf-8"
    )
    print(
        f"cold sequential {document['cold_sequential']['total_seconds']}s, "
        f"cold x{document['configuration']['workers']} workers "
        f"{document['cold_parallel']['total_seconds']}s "
        f"(speedup {document['speedup_cold']}x), "
        f"warm {document['warm']['total_seconds']}s -> {arguments.output}"
    )
    print(
        f"sizes identical: {document['sizes_identical']}; "
        f"stores identical: {document['stores_identical']}; "
        f"warm all hits: {document['warm']['all_hits']}"
    )
    intra = document["intra_query"]
    print(
        f"intra-query ({intra['ontology']}, {intra['workers']} workers): "
        f"{intra['sequential_seconds']}s sequential -> {intra['seconds']}s "
        f"chunked (speedup {intra['speedup']}x, per-query ceiling "
        f"{intra['per_query_granularity_ceiling']}x); "
        f"sizes identical: {intra['sizes_identical']}; "
        f"stores identical: {intra['stores_identical']}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
