"""The ``make serve-smoke`` gate: the serving front end answers correctly.

Boots the full serving stack — :class:`~repro.serving.app.ServingApp`
over a real :class:`~repro.serving.http.ServingServer` socket — registers
a Table 1 workload tenant, and checks the three properties that make the
service a service:

1. **correctness** — an HTTP answer to a workload query is byte-identical
   (as canonical JSON) to the direct in-process
   ``OBDASystem.prepare(...).execute()`` path over the same facts;
2. **coalescing** — a herd of concurrent cold requests for one query
   compiles it exactly once (engine-run counter, not wall-clock luck);
3. **warm serving** — a repeated answer is served from the epoch-keyed
   answer cache without touching the engine.

A few seconds end to end, so it gates every CI run; the exhaustive
serving matrix (tenant isolation, fingerprint sharing, kill/restart
recovery, differential fuzzing through the HTTP layer) lives in
``tests/serving/``.

The script is import-safe for test collectors; it only runs under
``python benchmarks/serve_smoke.py``.
"""

from __future__ import annotations

import asyncio
import json
import sys
from pathlib import Path

_SRC = str(Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.api import OBDASystem  # noqa: E402
from repro.database.instance import database_from_tuples  # noqa: E402
from repro.serving import ServingApp, ServingClient, ServingServer  # noqa: E402
from repro.serving.app import encode_answers  # noqa: E402
from repro.workloads import get_workload  # noqa: E402

WORKLOAD = "S"
QUERY = "q(A) :- stock(A)"
FACTS = [
    ["stock", ["acme_corp"]],
    ["listed_in", ["acme_corp", "nyse"]],
    ["stock_exchange", ["nyse"]],
    ["financial_instrument", ["acme_bond"]],
]
HERD = 50


async def smoke() -> int:
    failures = 0
    app = ServingApp()
    server = ServingServer(app)
    await server.start()
    client = ServingClient("127.0.0.1", server.port)
    try:
        response = await client.request(
            "POST",
            "/register-theory",
            {"tenant": "smoke", "workload": WORKLOAD, "facts": FACTS},
        )
        if response.status != 201:
            print(f"error: registration failed: {response.payload}", file=sys.stderr)
            return 1

        # 1. correctness: HTTP bytes == direct in-process bytes.
        response = await client.request(
            "POST", "/answer", {"tenant": "smoke", "query": QUERY}
        )
        served = json.dumps(response.payload["answers"], sort_keys=True)
        workload = get_workload(WORKLOAD)
        direct_system = OBDASystem(
            workload.theory,
            database=database_from_tuples(
                [(name, values) for name, values in FACTS]
            ),
            use_nc_pruning=bool(workload.theory.negative_constraints),
        )
        from repro.queries.parser import parse_query

        direct = json.dumps(
            encode_answers(
                direct_system.prepare(parse_query(QUERY)).execute().tuples
            ),
            sort_keys=True,
        )
        direct_system.close()
        status = "ok" if served == direct else "MISMATCH"
        print(
            f"{WORKLOAD}/{QUERY}: {response.payload['count']} answers over HTTP, "
            f"byte-identical to in-process — {status}"
        )
        if status != "ok":
            print(f"  served: {served}\n  direct: {direct}", file=sys.stderr)
            failures += 1

        # 2. coalescing: a cold herd compiles exactly once.
        herd_query = "q(A, B) :- listed_in(A, B), stock_exchange(B)"
        artifacts = app.registry.get("smoke").artifacts
        compiles_before = artifacts.compiles
        responses = await asyncio.gather(
            *(
                app.request(
                    "POST", "/answer", {"tenant": "smoke", "query": herd_query}
                )
                for _ in range(HERD)
            )
        )
        compiles = artifacts.compiles - compiles_before
        answer_sets = {json.dumps(r.payload["answers"], sort_keys=True) for r in responses}
        status = "ok" if compiles == 1 and len(answer_sets) == 1 else "MISMATCH"
        print(
            f"coalescing: {HERD} concurrent cold requests -> "
            f"{compiles} engine compile(s), {len(answer_sets)} distinct answer "
            f"set(s) — {status}"
        )
        if status != "ok":
            failures += 1

        # 3. warm serving: the repeat is answered from the caches.
        response = await client.request(
            "POST", "/answer", {"tenant": "smoke", "query": QUERY}
        )
        warm_ok = (
            response.payload["source"] == "memory"
            and response.payload["answer_cached"]
        )
        status = "ok" if warm_ok else "MISMATCH"
        print(
            f"warm repeat: source={response.payload['source']}, "
            f"answer_cached={response.payload['answer_cached']} — {status}"
        )
        if not warm_ok:
            failures += 1
    finally:
        await client.aclose()
        await server.stop()

    if failures:
        print(f"error: {failures} serving smoke checks failed", file=sys.stderr)
        return 1
    print("# serve smoke: HTTP answers byte-identical, herd compiled once, warm cached")
    return 0


def main() -> int:
    return asyncio.run(smoke())


if __name__ == "__main__":
    raise SystemExit(main())
