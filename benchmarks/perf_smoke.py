"""The ``make perf-smoke`` gate: the hot-path rewrite must never regress.

Two hard checks, both on the paper's running example (StockExchange,
Section 2), cheap enough to gate every CI run:

1. **Autotuner byte-identity** — compiling the running query and every
   Figure 1 query under ``strategy="auto"`` must produce exactly the
   rewriting the sequential baseline produces: same sizes, same
   canonical keys, same members in the same order.
2. **Flat-kernel speedup floor** — WL canonical-key computation via the
   tuple-encoded kernel (:func:`repro.logic.canonical.canonical_fingerprint`)
   must not be slower than the object-walking reference on the harvested
   rewriting corpus (best-of-5 timing; floor 1.0×).

The exhaustive version of both checks — all five Table 1 ontologies,
generated fuzzing triples, homomorphism and MGU paths, the epsilon
invariant — lives in ``benchmarks/bench_hotpaths.py`` (``make bench-json``).

The script is import-safe for test collectors; it only runs under
``python benchmarks/perf_smoke.py``.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

_SRC = str(Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.core.rewriter import TGDRewriter  # noqa: E402
from repro.logic.canonical import (  # noqa: E402
    canonical_fingerprint,
    canonical_fingerprint_reference,
)
from repro.workloads.stock_exchange_example import (  # noqa: E402
    figure1_queries,
    running_query,
    theory,
)

REPEATS = 5
SPEEDUP_FLOOR = 1.0


def _best_of(function, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - started)
    return best


def main() -> int:
    example = theory()
    queries = {"running": running_query()}
    queries.update(
        {f"figure1-q{i}": query for i, query in enumerate(figure1_queries())}
    )
    failures = 0
    corpus = []
    sequential = TGDRewriter(example.tgds)
    auto = TGDRewriter(example.tgds, strategy="auto")
    for name, query in queries.items():
        reference = sequential.rewrite(query)
        candidate = auto.rewrite(query)
        corpus.extend(reference.ucq)
        size_ok = len(candidate.ucq) == len(reference.ucq)
        keys_ok = [m.canonical_key for m in candidate.ucq] == [
            m.canonical_key for m in reference.ucq
        ]
        members_ok = candidate.ucq.queries == reference.ucq.queries
        status = "ok" if (size_ok and keys_ok and members_ok) else "MISMATCH"
        print(
            f"stock-exchange/{name}: sequential {len(reference.ucq)} CQs, "
            f"auto {len(candidate.ucq)} CQs — {status}"
        )
        if status != "ok":
            failures += 1
    auto.strategy.close()
    if failures:
        print(
            f"error: {failures} queries diverged between sequential and "
            "auto scheduling",
            file=sys.stderr,
        )
        return 1

    flat_keys = [canonical_fingerprint(query) for query in corpus]
    reference_keys = [canonical_fingerprint_reference(query) for query in corpus]
    if flat_keys != reference_keys:
        print(
            "error: flat canonical keys diverge from the reference "
            "implementation",
            file=sys.stderr,
        )
        return 1
    reference_seconds = _best_of(
        lambda: [canonical_fingerprint_reference(query) for query in corpus]
    )
    flat_seconds = _best_of(
        lambda: [canonical_fingerprint(query) for query in corpus]
    )
    speedup = reference_seconds / flat_seconds if flat_seconds > 0 else float("inf")
    print(
        f"canonical keys: {len(corpus)} CQs, reference "
        f"{reference_seconds:.4f}s -> flat {flat_seconds:.4f}s "
        f"(speedup {speedup:.2f}x)"
    )
    if speedup < SPEEDUP_FLOOR:
        print(
            f"error: flat canonical-key kernel slower than reference "
            f"({speedup:.2f}x < {SPEEDUP_FLOOR}x)",
            file=sys.stderr,
        )
        return 1
    print(
        "# perf smoke: auto byte-identical with sequential; flat canonical "
        f"kernel {speedup:.2f}x"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
