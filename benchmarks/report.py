"""Regenerate the full Table 1 reproduction as plain text.

Runs the four systems (QO, RQ, NY, NY*) on every workload and every query
and prints one block per workload, in the layout of Table 1 of the paper
(size, length and width per system), followed by the per-cell rewriting
times.  The output of this script is the source of the measured numbers in
``EXPERIMENTS.md``.

Usage::

    python benchmarks/report.py            # all workloads
    python benchmarks/report.py S U P5     # selected workloads only
"""

from __future__ import annotations

import sys
import time

from repro.evaluation import SYSTEMS, Table1Evaluator, format_rows
from repro.workloads import TABLE1_WORKLOADS, get_workload


def report(workload_names: list[str]) -> None:
    grand_start = time.perf_counter()
    for name in workload_names:
        workload = get_workload(name)
        evaluator = Table1Evaluator(workload)
        start = time.perf_counter()
        rows = evaluator.rows()
        elapsed = time.perf_counter() - start
        print(f"=== {name} — {workload.description}")
        print(f"    ({len(workload.theory.tgds)} TGDs, evaluated in {elapsed:.1f}s)")
        print(format_rows(rows, systems=SYSTEMS))
        print()
        print("    rewriting time (seconds):")
        for row in rows:
            cells = "  ".join(
                f"{system}={row.cell(system).elapsed_seconds:.3f}" for system in SYSTEMS
            )
            print(f"      {row.query_name}: {cells}")
        print()
    print(f"total: {time.perf_counter() - grand_start:.1f}s")


if __name__ == "__main__":
    requested = sys.argv[1:] or list(TABLE1_WORKLOADS)
    report(requested)
