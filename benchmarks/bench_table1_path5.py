"""Table 1, blocks P5 and P5X (Path5): the synthetic exponential blow-up.

Path5 is designed so that the perfect rewriting grows exponentially with the
length of the path query.  Query elimination cannot help (no edge atom is
implied by another one), so ``NY`` ≈ ``NY*``; QuOnto-style exhaustive
factorisation additionally generates every collapsed-path variant, which is
where the very large ``QO`` numbers of the paper come from.
"""

import pytest

from _helpers import assert_shape, rewriting_cell
from repro.evaluation import SYSTEMS
from repro.workloads import get_workload, path_query

QUERIES = ("q1", "q2", "q3", "q4", "q5")


@pytest.mark.parametrize("system", SYSTEMS)
@pytest.mark.parametrize("query_name", QUERIES)
def test_path5_cell(benchmark, evaluators, system, query_name):
    """One (system, query) cell of the P5 block."""
    measurement = rewriting_cell(benchmark, evaluators("P5"), system, query_name)
    assert measurement.size >= 1


@pytest.mark.parametrize("system", SYSTEMS)
@pytest.mark.parametrize("query_name", QUERIES)
def test_path5_x_cell(benchmark, evaluators, system, query_name):
    """One (system, query) cell of the P5X block."""
    measurement = rewriting_cell(benchmark, evaluators("P5X"), system, query_name)
    assert measurement.size >= 1


@pytest.mark.parametrize("query_name", ("q2", "q3", "q4"))
def test_path5_elimination_is_ineffective(benchmark, evaluators, query_name):
    """Elimination gains (almost) nothing on the synthetic path queries."""
    row = benchmark.pedantic(evaluators("P5").row, args=(query_name,), rounds=1, iterations=1)
    assert_shape(row)
    assert row.cell("NY*").size >= 0.9 * row.cell("NY").size
    benchmark.extra_info.update(row.as_dict())


def test_path5_growth_is_exponential(benchmark, evaluators):
    """The NY rewriting size grows at least geometrically with the path length."""
    evaluator = evaluators("P5")

    def sizes():
        return [evaluator.measure("NY", f"q{n}").size for n in range(1, 5)]

    measured = benchmark.pedantic(sizes, rounds=1, iterations=1)
    ratios = [after / before for before, after in zip(measured, measured[1:])]
    assert all(ratio >= 1.5 for ratio in ratios), measured
    benchmark.extra_info["sizes"] = measured


def test_path_query_generator_scales(benchmark):
    """Building the length-n path query itself is linear and cheap."""
    query = benchmark(path_query, 50)
    assert len(query.body) == 50
    assert get_workload("P5").query("q5").is_variant_of(path_query(5))
