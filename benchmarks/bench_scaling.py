"""Machine-readable scaling benchmark (``make bench-json``).

Measures compile (rewriting) and answer (prepare + execute) time against
*ontology size* along the two axes the fuzzing generator provides
(:mod:`repro.fuzzing.generator`), and writes one JSON document —
``BENCH_scaling.json`` by default — next to the compilation-side
``BENCH_parallel.json`` and the answering-side ``BENCH_answering.json``:

* **generated axis** — synthetic linear and sticky theories swept over
  rule count: per point, mean rewriting time, UCQ size and end-to-end
  answering time over a few seeded cases (the same triples ``repro
  fuzz`` checks, so any point on the curve can be replayed through the
  oracles);
* **registry axis** — the LUBM-style university workload ``U`` at
  10–100× ABox scale: prepare once, then execute per scale, tracking
  how answer time grows with the number of facts.

The autotuner and sharding roadmap items are to be measured against
these curves.

The script is import-safe for test collectors; it only runs under
``python benchmarks/bench_scaling.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

_SRC = str(Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.backends import create_backend  # noqa: E402
from repro.core.rewriter import TGDRewriter  # noqa: E402
from repro.fuzzing.generator import (  # noqa: E402
    GeneratorConfig,
    WorkloadGenerator,
    scaled_registry_instance,
)
from repro.workloads import get_workload  # noqa: E402

SCHEMA_VERSION = 1

#: Rule counts of the generated-axis sweep.
RULE_POINTS = (4, 8, 16)
#: Fragments of the generated-axis sweep.
FRAGMENTS = ("linear", "sticky")
#: ABox multipliers of the registry-axis sweep (base: 10 facts/relation).
REGISTRY_SCALES = (1, 10, 50, 100)
#: The registry workload the ABox scaling sweeps (LUBM-style university).
REGISTRY_WORKLOAD = "U"


def _generated_point(fragment: str, rules: int, seed: int, cases: int) -> dict:
    """Mean compile/answer time of a few seeded cases at one sweep point."""
    config = GeneratorConfig(fragment=fragment, rules=rules)
    generator = WorkloadGenerator(seed=seed, config=config)
    compile_seconds = answer_seconds = 0.0
    ucq_size = facts = answers = 0
    for index in range(cases):
        case = generator.case(index)
        started = time.perf_counter()
        result = TGDRewriter(case.theory.tgds).rewrite(case.query)
        compile_seconds += time.perf_counter() - started

        backend = create_backend("memory")
        try:
            started = time.perf_counter()
            plan = backend.prepare(result.ucq)
            tuples = plan.execute(case.instance)
            answer_seconds += time.perf_counter() - started
        finally:
            backend.close()
        ucq_size += len(result.ucq)
        facts += len(case.instance)
        answers += len(tuples)
    return {
        "fragment": fragment,
        "rules": rules,
        "cases": cases,
        "mean_facts": round(facts / cases, 1),
        "mean_ucq_size": round(ucq_size / cases, 1),
        "mean_answers": round(answers / cases, 1),
        "mean_compile_seconds": round(compile_seconds / cases, 5),
        "mean_answer_seconds": round(answer_seconds / cases, 5),
    }


def _registry_points(seed: int) -> list[dict]:
    """Execute one prepared query over scaled university ABoxes."""
    workload = get_workload(REGISTRY_WORKLOAD)
    query = workload.query("q1")
    started = time.perf_counter()
    result = TGDRewriter(workload.theory.tgds, use_elimination=True).rewrite(query)
    compile_seconds = time.perf_counter() - started
    points = []
    backend = create_backend("memory")
    try:
        plan = backend.prepare(result.ucq)
        for scale in REGISTRY_SCALES:
            instance = scaled_registry_instance(
                REGISTRY_WORKLOAD, scale=scale, seed=seed
            )
            started = time.perf_counter()
            tuples = plan.execute(instance)
            elapsed = time.perf_counter() - started
            points.append(
                {
                    "workload": REGISTRY_WORKLOAD,
                    "query": "q1",
                    "scale": scale,
                    "facts": len(instance),
                    "answers": len(tuples),
                    "compile_seconds": round(compile_seconds, 5),
                    "answer_seconds": round(elapsed, 5),
                }
            )
    finally:
        backend.close()
    return points


def run(seed: int, cases: int) -> dict:
    """Sweep both axes and return the JSON document."""
    started_all = time.perf_counter()
    document: dict = {
        "schema": SCHEMA_VERSION,
        "benchmark": "scaling",
        "configuration": {
            "seed": seed,
            "cases_per_point": cases,
            "rule_points": list(RULE_POINTS),
            "fragments": list(FRAGMENTS),
            "registry_scales": list(REGISTRY_SCALES),
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
        },
        "generated": [
            _generated_point(fragment, rules, seed, cases)
            for fragment in FRAGMENTS
            for rules in RULE_POINTS
        ],
        "registry": _registry_points(seed),
    }
    document["total_seconds"] = round(time.perf_counter() - started_all, 4)
    return document


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", default="BENCH_scaling.json", help="where to write the JSON"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="generator seed (default 0)"
    )
    parser.add_argument(
        "--cases", type=int, default=3, metavar="K",
        help="generated cases per sweep point (default 3)",
    )
    arguments = parser.parse_args(argv)
    document = run(arguments.seed, arguments.cases)
    Path(arguments.output).write_text(
        json.dumps(document, indent=2, sort_keys=False) + "\n", encoding="utf-8"
    )
    largest = document["registry"][-1]
    print(
        f"scaling sweep in {document['total_seconds']}s: "
        f"{len(document['generated'])} generated points, "
        f"registry {REGISTRY_WORKLOAD} up to {largest['facts']} facts "
        f"({largest['answer_seconds']}s execute) -> {arguments.output}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
