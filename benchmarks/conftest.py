"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one experiment of the paper (a Table 1 block, a
figure, or an ablation discussed in the text).  The per-cell machinery lives
in :mod:`_helpers`; this conftest only provides the session-wide evaluator
cache so that the four rewriters of a workload are constructed once.
"""

from __future__ import annotations

import pytest

from repro.evaluation import Table1Evaluator
from repro.workloads import get_workload


@pytest.fixture(scope="session")
def evaluators():
    """Session-wide cache of Table 1 evaluators, one per workload name."""
    cache: dict[str, Table1Evaluator] = {}

    def get(name: str) -> Table1Evaluator:
        if name not in cache:
            cache[name] = Table1Evaluator(get_workload(name))
        return cache[name]

    return get
