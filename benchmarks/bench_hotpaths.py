"""Machine-readable hot-path microbenchmarks (``make bench-json``).

Times the three tuple-encoded kernels of :mod:`repro.logic.flat` against
the object-walking reference implementations they replaced, on the CQ
corpus actually produced by the engine — the NY rewritings of the five
Table 1 ontologies plus generated fuzzing triples — and writes one JSON
document (``BENCH_hotpaths.json`` by default):

* **canonical** — WL canonical-key refinement
  (:func:`repro.logic.canonical.canonical_fingerprint` vs
  ``canonical_fingerprint_reference``) over every corpus CQ;
* **homomorphism** — find-first subsumption probes (prebuilt candidate
  index + :class:`repro.logic.flat.FlatTarget`, the quadratic pattern of
  subsumption removal) over all body pairs of each rewriting;
* **mgu** — most-general-unifier problems from every same-predicate atom
  pair inside the corpus bodies.

Every timed pair is also an identity check: the flat and reference
implementations must produce byte-identical canonical keys, the same
found/not-found verdicts and first homomorphisms, and equal MGUs — the
document records the flags and any mismatch aborts the run.

A second section measures the ``strategy="auto"`` autotuner against the
sequential baseline on full workload compilations and records the hard
invariant the tuner promises: auto never loses to sequential by more
than :data:`repro.scheduling.AutoStrategy.EPSILON`, and the rewritings
are byte-identical.

The script is import-safe for test collectors; it only runs under
``python benchmarks/bench_hotpaths.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

_SRC = str(Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.core.rewriter import TGDRewriter  # noqa: E402
from repro.fuzzing import GeneratorConfig, WorkloadGenerator  # noqa: E402
from repro.fuzzing.generator import FRAGMENTS  # noqa: E402
from repro.logic.canonical import (  # noqa: E402
    canonical_fingerprint,
    canonical_fingerprint_reference,
)
from repro.logic.flat import FlatTarget  # noqa: E402
from repro.logic.homomorphism import (  # noqa: E402
    _candidate_index,
    homomorphisms,
    homomorphisms_reference,
)
from repro.logic.unification import mgu, mgu_reference  # noqa: E402
from repro.scheduling import AutoStrategy  # noqa: E402
from repro.workloads import get_workload  # noqa: E402

WORKLOADS = ("A", "P5", "S", "U", "V")
SCHEMA_VERSION = 1
#: CQs per rewriting entering the quadratic homomorphism pairing.
HOM_CAP = 60


def _best_of(function, repeats: int) -> float:
    """Best wall-clock of *repeats* runs (the least-noise estimator)."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - started)
    return best


def _harvest(cases_per_fragment: int):
    """The benchmark corpus: per-rewriting CQ lists plus provenance counts."""
    rewritings: list[list] = []
    table1_count = 0
    for name in WORKLOADS:
        workload = get_workload(name)
        engine = TGDRewriter(workload.theory.tgds)
        for query_name in workload.query_names:
            result = engine.rewrite(workload.query(query_name))
            members = list(result.ucq)
            rewritings.append(members)
            table1_count += len(members)
    generated_count = 0
    for fragment in FRAGMENTS:
        generator = WorkloadGenerator(
            seed=42, config=GeneratorConfig(fragment=fragment)
        )
        for case in generator.cases(cases_per_fragment):
            result = TGDRewriter(case.theory.tgds).rewrite(case.query)
            members = list(result.ucq)
            rewritings.append(members)
            generated_count += len(members)
    return rewritings, table1_count, generated_count


def _bench_canonical(queries, repeats: int) -> dict:
    reference = [canonical_fingerprint_reference(query) for query in queries]
    flat = [canonical_fingerprint(query) for query in queries]
    identical = reference == flat
    reference_seconds = _best_of(
        lambda: [canonical_fingerprint_reference(query) for query in queries],
        repeats,
    )
    flat_seconds = _best_of(
        lambda: [canonical_fingerprint(query) for query in queries], repeats
    )
    return {
        "problems": len(queries),
        "identical_outputs": identical,
        "reference_seconds": round(reference_seconds, 4),
        "flat_seconds": round(flat_seconds, 4),
        "speedup": round(reference_seconds / flat_seconds, 3)
        if flat_seconds > 0
        else None,
    }


def _hom_problems(rewritings):
    """Find-first probe pairs: every (source, target) body pair per rewriting.

    Targets are pre-encoded once (candidate index + flat target), exactly
    as :class:`repro.queries.containment.ContainmentIndex` amortises the
    quadratic subsumption sweep.
    """
    problems = []
    for members in rewritings:
        members = members[:HOM_CAP]
        targets = [
            (query, _candidate_index(query.body)) for query in members
        ]
        flat_targets = [FlatTarget(index) for _, index in targets]
        for source in members:
            for (target, index), flat_target in zip(targets, flat_targets):
                if source is target:
                    continue
                problems.append((source.body, index, flat_target))
    return problems


def _bench_hom(rewritings, repeats: int) -> dict:
    problems = _hom_problems(rewritings)

    def run_reference():
        return [
            next(homomorphisms_reference(body, (), index=index), None)
            for body, index, _ in problems
        ]

    def run_flat():
        return [
            next(homomorphisms(body, (), index=index, flat_target=flat), None)
            for body, index, flat in problems
        ]

    reference = run_reference()
    flat = run_flat()
    identical = len(reference) == len(flat) and all(
        (a is None) == (b is None) and (a is None or a == b)
        for a, b in zip(reference, flat)
    )
    reference_seconds = _best_of(run_reference, repeats)
    flat_seconds = _best_of(run_flat, repeats)
    return {
        "problems": len(problems),
        "found": sum(1 for item in flat if item is not None),
        "identical_outputs": identical,
        "reference_seconds": round(reference_seconds, 4),
        "flat_seconds": round(flat_seconds, 4),
        "speedup": round(reference_seconds / flat_seconds, 3)
        if flat_seconds > 0
        else None,
    }


def _mgu_problems(queries):
    problems = []
    for query in queries:
        atoms = query.body
        for i, left in enumerate(atoms):
            for right in atoms[i + 1 :]:
                if left.predicate == right.predicate:
                    problems.append((left, right))
    return problems


def _bench_mgu(queries, repeats: int) -> dict:
    problems = _mgu_problems(queries)

    def run_reference():
        return [mgu_reference([left, right]) for left, right in problems]

    def run_flat():
        return [mgu([left, right]) for left, right in problems]

    reference = run_reference()
    flat = run_flat()
    identical = reference == flat
    reference_seconds = _best_of(run_reference, repeats)
    flat_seconds = _best_of(run_flat, repeats)
    return {
        "problems": len(problems),
        "unifiable": sum(1 for item in flat if item is not None),
        "identical_outputs": identical,
        "reference_seconds": round(reference_seconds, 4),
        "flat_seconds": round(flat_seconds, 4),
        "speedup": round(reference_seconds / flat_seconds, 3)
        if flat_seconds > 0
        else None,
    }


def _bench_auto(repeats: int) -> dict:
    """Full-compilation wall-clock: auto strategy vs the sequential baseline."""
    per_workload = {}
    for name in WORKLOADS:
        workload = get_workload(name)
        queries = [workload.query(q) for q in workload.query_names]

        def compile_with(strategy_name):
            engine = TGDRewriter(workload.theory.tgds, strategy=strategy_name)
            try:
                return [engine.rewrite(query) for query in queries]
            finally:
                engine.strategy.close()

        sequential_results = compile_with("sequential")
        auto_results = compile_with("auto")
        identical = [list(a.ucq) for a in auto_results] == [
            list(s.ucq) for s in sequential_results
        ]
        sequential_seconds = _best_of(
            lambda: compile_with("sequential"), repeats
        )
        auto_seconds = _best_of(lambda: compile_with("auto"), repeats)
        per_workload[name] = {
            "sequential_seconds": round(sequential_seconds, 4),
            "auto_seconds": round(auto_seconds, 4),
            "auto_over_sequential": round(auto_seconds / sequential_seconds, 3)
            if sequential_seconds > 0
            else None,
            "identical_outputs": identical,
            "within_epsilon": auto_seconds
            <= sequential_seconds * (1.0 + AutoStrategy.EPSILON),
        }
    return {
        "epsilon": AutoStrategy.EPSILON,
        "per_workload": per_workload,
        "all_identical": all(
            entry["identical_outputs"] for entry in per_workload.values()
        ),
        "all_within_epsilon": all(
            entry["within_epsilon"] for entry in per_workload.values()
        ),
    }


def run(repeats: int, cases_per_fragment: int) -> dict:
    rewritings, table1_count, generated_count = _harvest(cases_per_fragment)
    queries = [query for members in rewritings for query in members]
    document: dict = {
        "schema": SCHEMA_VERSION,
        "benchmark": "hotpaths",
        "workloads": list(WORKLOADS),
        "configuration": {
            "repeats": repeats,
            "cases_per_fragment": cases_per_fragment,
            "hom_cap_per_rewriting": HOM_CAP,
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
        },
        "corpus": {
            "rewritings": len(rewritings),
            "cqs": len(queries),
            "cqs_table1": table1_count,
            "cqs_generated": generated_count,
        },
        "hotpaths": {
            "canonical": _bench_canonical(queries, repeats),
            "homomorphism": _bench_hom(rewritings, repeats),
            "mgu": _bench_mgu(queries, repeats),
        },
    }
    document["auto_vs_sequential"] = _bench_auto(max(2, repeats - 1))
    hotpaths = document["hotpaths"]
    document["invariants"] = {
        "identical_outputs": all(
            section["identical_outputs"] for section in hotpaths.values()
        ),
        "canonical_speedup_ge_1": hotpaths["canonical"]["speedup"] is not None
        and hotpaths["canonical"]["speedup"] >= 1.0,
        "speedups_ge_1_5": sum(
            1
            for section in hotpaths.values()
            if section["speedup"] is not None and section["speedup"] >= 1.5
        ),
        "auto_all_identical": document["auto_vs_sequential"]["all_identical"],
        "auto_all_within_epsilon": document["auto_vs_sequential"][
            "all_within_epsilon"
        ],
    }
    return document


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", default="BENCH_hotpaths.json", help="where to write the JSON"
    )
    parser.add_argument(
        "--repeats", type=int, default=3, metavar="N",
        help="timing runs per measurement; the best is kept (default 3)",
    )
    parser.add_argument(
        "--cases-per-fragment", type=int, default=15, metavar="K",
        help="generated triples per fragment added to the corpus (default 15)",
    )
    arguments = parser.parse_args(argv)
    document = run(arguments.repeats, arguments.cases_per_fragment)
    Path(arguments.output).write_text(
        json.dumps(document, indent=2, sort_keys=False) + "\n", encoding="utf-8"
    )
    hotpaths = document["hotpaths"]
    for path, section in hotpaths.items():
        print(
            f"{path}: {section['problems']} problems, "
            f"reference {section['reference_seconds']}s -> flat "
            f"{section['flat_seconds']}s (speedup {section['speedup']}x, "
            f"identical: {section['identical_outputs']})"
        )
    auto = document["auto_vs_sequential"]
    print(
        f"auto vs sequential: identical {auto['all_identical']}, within "
        f"epsilon({auto['epsilon']}) {auto['all_within_epsilon']} -> "
        f"{arguments.output}"
    )
    invariants = document["invariants"]
    failures = []
    if not invariants["identical_outputs"]:
        failures.append("flat and reference kernels disagree")
    if not invariants["auto_all_identical"]:
        failures.append("auto strategy changed rewriting bytes")
    if not invariants["auto_all_within_epsilon"]:
        failures.append("auto strategy lost to sequential beyond epsilon")
    for failure in failures:
        print(f"error: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
