"""Table 1, blocks U and UX (UNIVERSITY / LUBM).

``U`` and ``UX`` share the same axioms; the difference is whether the
auxiliary predicates introduced by normalising the qualified existential
rules (Lemmas 1 and 2) are part of the schema.  In ``U`` they are internal,
so rewritten CQs mentioning them are discarded; in ``UX`` they count, which
makes every rewriting at least as large.
"""

import pytest

from _helpers import assert_shape, rewriting_cell
from repro.evaluation import SYSTEMS

QUERIES = ("q1", "q2", "q3", "q4", "q5")


@pytest.mark.parametrize("system", SYSTEMS)
@pytest.mark.parametrize("query_name", QUERIES)
def test_university_cell(benchmark, evaluators, system, query_name):
    """One (system, query) cell of the U block."""
    measurement = rewriting_cell(benchmark, evaluators("U"), system, query_name)
    assert measurement.size >= 1


@pytest.mark.parametrize("system", SYSTEMS)
@pytest.mark.parametrize("query_name", QUERIES)
def test_university_x_cell(benchmark, evaluators, system, query_name):
    """One (system, query) cell of the UX block (auxiliary predicates public)."""
    measurement = rewriting_cell(benchmark, evaluators("UX"), system, query_name)
    assert measurement.size >= 1


@pytest.mark.parametrize("query_name", ("q2", "q4", "q5"))
def test_university_row_collapse(benchmark, evaluators, query_name):
    """Elimination collapses the concept-role-concept queries of U."""
    row = benchmark.pedantic(evaluators("U").row, args=(query_name,), rounds=1, iterations=1)
    assert_shape(row, elimination_helps=True, min_collapse=10.0)
    assert row.cell("NY*").size <= 10
    benchmark.extra_info.update(row.as_dict())


def test_university_x_is_at_least_as_large(benchmark, evaluators):
    """The UX rewriting of q2 is at least as large as the U rewriting."""

    def both_rows():
        return evaluators("U").row("q2"), evaluators("UX").row("q2")

    plain, extended = benchmark.pedantic(both_rows, rounds=1, iterations=1)
    assert extended.cell("NY").size >= plain.cell("NY").size
    assert extended.cell("RQ").size >= plain.cell("RQ").size
    benchmark.extra_info["U_NY_size"] = plain.cell("NY").size
    benchmark.extra_info["UX_NY_size"] = extended.cell("NY").size
