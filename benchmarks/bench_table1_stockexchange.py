"""Table 1, block S (STOCKEXCHANGE): rewriting size / length / width for q1-q5.

This is the headline block of the paper: the domain/range axioms of
``hasStock`` / ``belongsToCompany`` / ``isListedIn`` make every concept atom
of q2-q5 redundant, so ``TGD-rewrite*`` collapses the queries to a couple of
role atoms and the rewriting shrinks by orders of magnitude, while the other
systems keep expanding the concept hierarchies under every redundant atom.
"""

import pytest

from _helpers import assert_shape, rewriting_cell
from repro.evaluation import SYSTEMS

QUERIES = ("q1", "q2", "q3", "q4", "q5")


@pytest.mark.parametrize("system", SYSTEMS)
@pytest.mark.parametrize("query_name", QUERIES)
def test_stockexchange_cell(benchmark, evaluators, system, query_name):
    """One (system, query) cell of the S block."""
    measurement = rewriting_cell(benchmark, evaluators("S"), system, query_name)
    assert measurement.size >= 1


@pytest.mark.parametrize("query_name", ("q2", "q3", "q4", "q5"))
def test_stockexchange_row_collapse(benchmark, evaluators, query_name):
    """Elimination collapses q2-q5 by at least an order of magnitude."""
    row = benchmark.pedantic(evaluators("S").row, args=(query_name,), rounds=1, iterations=1)
    assert_shape(row, elimination_helps=True, min_collapse=10.0)
    assert row.cell("NY*").size <= 8  # the paper reports 2-8 CQs after elimination
    benchmark.extra_info.update(row.as_dict())


def test_stockexchange_q1_plain_hierarchy(benchmark, evaluators):
    """q1 only enumerates the StockExchangeMember hierarchy; nothing to eliminate."""
    row = benchmark.pedantic(evaluators("S").row, args=("q1",), rounds=1, iterations=1)
    assert_shape(row, elimination_helps=False)
    benchmark.extra_info.update(row.as_dict())
