"""Table 2: the test queries of the evaluation.

Table 2 lists the five conjunctive queries used against each ontology.  The
benchmark regenerates the whole query set from the workload modules and
checks its shape (arities and body sizes follow the table); the timing shows
that query construction is negligible compared with rewriting.
"""

from repro.workloads import TABLE1_WORKLOADS, get_workload

#: (workload, query) -> (arity, number of body atoms) as printed in Table 2.
EXPECTED_SHAPES = {
    ("V", "q1"): (1, 1),
    ("V", "q2"): (2, 3),
    ("V", "q3"): (2, 3),
    ("V", "q4"): (2, 3),
    ("V", "q5"): (1, 7),
    ("S", "q1"): (1, 1),
    ("S", "q2"): (2, 3),
    ("S", "q3"): (3, 5),
    ("S", "q4"): (3, 5),
    ("S", "q5"): (4, 7),
    ("U", "q1"): (1, 2),
    ("U", "q2"): (2, 3),
    ("U", "q3"): (3, 6),
    ("U", "q4"): (2, 3),
    ("U", "q5"): (1, 4),
    ("A", "q1"): (1, 2),
    ("A", "q2"): (1, 3),
    ("A", "q3"): (1, 5),
    ("A", "q4"): (1, 3),
    ("A", "q5"): (1, 5),
    ("P5", "q1"): (1, 1),
    ("P5", "q2"): (1, 2),
    ("P5", "q3"): (1, 3),
    ("P5", "q4"): (1, 4),
    ("P5", "q5"): (1, 5),
}


def _collect_all_queries():
    """Materialise every query of every workload (what Table 2 enumerates)."""
    collected = {}
    for name in TABLE1_WORKLOADS:
        workload = get_workload(name)
        for query_name, query in workload.queries.items():
            collected[(name, query_name)] = query
    return collected


def test_table2_query_set(benchmark):
    """Regenerate Table 2 and validate arity and body size of every query."""
    queries = benchmark(_collect_all_queries)
    assert len(queries) == 8 * 5
    for (workload, query_name), (arity, atoms) in EXPECTED_SHAPES.items():
        query = queries[(workload, query_name)]
        assert query.arity == arity, (workload, query_name)
        assert len(query.body) == atoms, (workload, query_name)
    # The *X variants reuse exactly the same queries as their base workloads.
    for name in ("U", "A", "P5"):
        for query_name in ("q1", "q5"):
            assert queries[(f"{name}X", query_name)] == queries[(name, query_name)]
