"""Table 1, blocks A and AX (ADOLENA).

ADOLENA sits between the extremes: query elimination removes the redundant
``Device`` / ``PhysicalAbility`` atoms, but the rewriting stays sizeable
because the device hierarchy keeps being expanded through the surviving
``assistsWith`` atom.  The ``AX`` variant publishes the auxiliary predicates
of the qualified existential axioms and is therefore at least as large.
"""

import pytest

from _helpers import assert_shape, rewriting_cell
from repro.evaluation import SYSTEMS

QUERIES = ("q1", "q2", "q3", "q4", "q5")


@pytest.mark.parametrize("system", SYSTEMS)
@pytest.mark.parametrize("query_name", QUERIES)
def test_adolena_cell(benchmark, evaluators, system, query_name):
    """One (system, query) cell of the A block."""
    measurement = rewriting_cell(benchmark, evaluators("A"), system, query_name)
    assert measurement.size >= 1


@pytest.mark.parametrize("system", SYSTEMS)
@pytest.mark.parametrize("query_name", QUERIES)
def test_adolena_x_cell(benchmark, evaluators, system, query_name):
    """One (system, query) cell of the AX block."""
    measurement = rewriting_cell(benchmark, evaluators("AX"), system, query_name)
    assert measurement.size >= 1


@pytest.mark.parametrize("query_name", QUERIES)
def test_adolena_row_shape(benchmark, evaluators, query_name):
    """Elimination helps on ADOLENA, but the rewriting stays non-trivial."""
    row = benchmark.pedantic(evaluators("A").row, args=(query_name,), rounds=1, iterations=1)
    assert_shape(row, elimination_helps=True, min_collapse=2.0)
    benchmark.extra_info.update(row.as_dict())
