"""Quickstart: compile and answer an ontological query in a few lines.

The scenario is the one sketched in the paper's introduction: a tiny
enterprise ontology sits on top of a relational database; a conjunctive
query posed against the ontology is compiled into a union of conjunctive
queries (the *perfect rewriting*) that can be evaluated directly on the
database — or shipped to an RDBMS as SQL.

Run with::

    python examples/quickstart.py
"""

from repro import (
    Atom,
    ConjunctiveQuery,
    OBDASystem,
    OntologyTheory,
    Variable,
    tgd,
)

X, Y = Variable("X"), Variable("Y")
A, B = Variable("A"), Variable("B")


def build_theory() -> OntologyTheory:
    """A five-rule Datalog± ontology about projects and employees."""
    return OntologyTheory(
        tgds=[
            # Every project has some leader (partial TGD: invents a value).
            tgd(Atom.of("project", X), Atom.of("has_leader", X, Y), "proj_has_leader"),
            # Leaders are employees (domain axiom on the second argument).
            tgd(Atom.of("has_leader", X, Y), Atom.of("employee", Y), "leader_is_employee"),
            # Employees are persons; managers are employees.
            tgd(Atom.of("employee", X), Atom.of("person", X), "employee_is_person"),
            tgd(Atom.of("manager", X), Atom.of("employee", X), "manager_is_employee"),
            # head_of is a specialisation of has_leader.
            tgd(Atom.of("head_of", X, Y), Atom.of("has_leader", X, Y), "head_of_leads"),
        ],
        name="quickstart",
    )


def main() -> None:
    theory = build_theory()
    system = OBDASystem(theory)

    # The ABox / database: plain tuples.
    system.add_facts(
        [
            ("project", ("apollo",)),
            ("project", ("gemini",)),
            ("project", ("mercury",)),
            ("has_leader", ("gemini", "ann")),
            ("head_of", ("mercury", "bob")),
            ("manager", ("carol",)),
        ]
    )

    # Q1: who is a person?  (needs reasoning: leaders/managers are persons)
    # The serving lifecycle: prepare once, execute many.  The prepared
    # handle owns the rewriting plus a backend-compiled plan and caches
    # its answers per database epoch.
    person_query = ConjunctiveQuery([Atom.of("person", A)], (A,), head_name="persons")
    prepared = system.prepare(person_query)          # backend="memory" by default
    answers = prepared.execute()
    print("Q1  persons(A) :-")
    print("    rewriting size:", answers.rewriting.size)
    print("    answers       :", sorted(str(t[0]) for t in answers))
    prepared.execute()                               # warm: a dict lookup
    info = prepared.execution_cache_info()
    print(f"    answer cache  : {info.hits} hits / {info.misses} misses")

    # The same prepared query on SQLite: the rewriting's SQL is actually
    # executed, and must return the same answers.
    sqlite_prepared = system.prepare(person_query, backend="sqlite")
    assert sqlite_prepared.execute().tuples == answers.tuples
    print("    sqlite backend agrees on", len(answers), "answers")

    # A data change bumps the database epoch; both prepared handles
    # notice and re-execute on their next call.
    system.add_fact("manager", ("dave",))
    assert len(prepared.execute()) == len(answers) + 1

    # Q2: which projects have a leader?  (apollo qualifies only via the
    # existential rule, so it is *not* an answer — certain answers never
    # contain invented values — while gemini and mercury are.)
    led_query = ConjunctiveQuery(
        [Atom.of("project", A), Atom.of("has_leader", A, B)], (A, B), head_name="led"
    )
    print("\nQ2  led(A, B) :- project(A), has_leader(A, B)")
    for cq in system.compile(led_query).ucq:
        print("    ", cq)
    print("    answers:", sorted((str(a), str(b)) for a, b in system.answer(led_query)))

    # The same rewriting as SQL, ready for an external RDBMS.
    print("\nSQL for Q1:")
    print(system.to_sql(person_query))


if __name__ == "__main__":
    main()
