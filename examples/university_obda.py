"""Ontology-based data access over a DL-Lite_R university ontology.

This example exercises the DL-Lite layer rather than raw Datalog± rules:

1. a LUBM-style TBox is written in the compact textual syntax and parsed;
2. it is translated into linear TGDs, negative constraints and a key
   dependency (``funct hasId``);
3. a small ABox is loaded, checked for consistency, and queried — including
   a query whose answers require reasoning through the role hierarchy and
   the domain/range axioms;
4. the effect of query elimination on the rewriting size is reported.

Run with::

    python examples/university_obda.py
"""

from repro import (
    Atom,
    ConjunctiveQuery,
    OBDASystem,
    TGDRewriter,
    Variable,
    parse_ontology,
    to_theory,
)

TBOX_TEXT = """
# A LUBM-flavoured university TBox in DL-Lite_R
role worksFor headOf teacherOf takesCourse advisor hasId

UndergraduateStudent [= Student
GraduateStudent [= Student
Student [= Person
Professor [= FacultyStaff
Lecturer [= FacultyStaff
FacultyStaff [= Employee
Employee [= Person

University [= Organization
Department [= Organization

exists worksFor [= Employee
exists worksFor- [= Organization
exists teacherOf [= FacultyStaff
exists teacherOf- [= Course
exists takesCourse [= Student
exists takesCourse- [= Course
exists advisor [= Student
exists advisor- [= Professor

headOf [= worksFor
Employee [= exists worksFor
FacultyStaff [= exists teacherOf
Student [= exists takesCourse

Person [= not Organization
Course [= not Person
funct hasId
"""

A, B, C = Variable("A"), Variable("B"), Variable("C")


def main() -> None:
    tbox = parse_ontology(TBOX_TEXT, name="university")
    theory = to_theory(tbox)
    print(f"Parsed {len(tbox)} axioms -> {len(theory.tgds)} TGDs, "
          f"{len(theory.negative_constraints)} NCs, {len(theory.key_dependencies)} KDs")
    print("Language classification:", theory.classification)
    print()

    system = OBDASystem(theory)
    system.add_facts(
        [
            ("Professor", ("prof_turing",)),
            ("Lecturer", ("dr_hopper",)),
            ("GraduateStudent", ("stu_lovelace",)),
            ("teacherOf", ("prof_turing", "computability")),
            ("takesCourse", ("stu_lovelace", "computability")),
            ("advisor", ("stu_lovelace", "prof_turing")),
            ("headOf", ("dr_hopper", "cs_department")),
            ("Department", ("cs_department",)),
            ("hasId", ("stu_lovelace", "id_1815")),
        ]
    )
    print("ABox consistent?", system.is_consistent())
    print()

    # Q1: every person known to the system (requires the whole hierarchy and
    # the domain axioms of teacherOf / takesCourse / worksFor).
    persons = ConjunctiveQuery([Atom.of("Person", A)], (A,), head_name="persons")
    result = system.answer(persons)
    print(f"Person(A): {result.rewriting.size} CQs in the rewriting")
    print("   ", sorted(str(t[0]) for t in result))

    # Q2: who teaches a course taken by one of their advisees?
    mentor = ConjunctiveQuery(
        [
            Atom.of("advisor", A, B),
            Atom.of("teacherOf", B, C),
            Atom.of("takesCourse", A, C),
        ],
        (B,),
        head_name="mentors",
    )
    result = system.answer(mentor)
    print("advisor/teacherOf/takesCourse triangle:", sorted(str(t[0]) for t in result))
    print()

    # The effect of query elimination on a concept+role+concept query.
    employed = ConjunctiveQuery(
        [Atom.of("Person", A), Atom.of("worksFor", A, B), Atom.of("Organization", B)],
        (A, B),
    )
    plain = TGDRewriter(theory.tgds).rewrite(employed)
    optimised = TGDRewriter(theory.tgds, use_elimination=True).rewrite(employed)
    print("Person(A), worksFor(A,B), Organization(B):")
    print(f"    TGD-rewrite  -> {plain.size} CQs")
    print(f"    TGD-rewrite* -> {optimised.size} CQs")
    for cq in optimised.ucq:
        print("       ", cq)


if __name__ == "__main__":
    main()
