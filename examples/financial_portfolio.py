"""The Stock-Exchange running example of the paper, end to end.

This script replays Section 1 of the paper:

1. the relational schema ``R`` (stocks, companies, listings, portfolios) is
   extended with the ontological constraints σ1 … σ9 and the negative
   constraint δ1;
2. the running query — "financial instruments owned by a company and listed
   on an index" — is compiled twice: with plain ``TGD-rewrite`` and with
   ``TGD-rewrite*`` (query elimination);
3. both rewritings are executed on a small concrete database and shown to
   return the same certain answers, while the optimised rewriting contains
   just the two CQs quoted in the paper;
4. the consistency check demonstrates how δ1 (legal persons and financial
   instruments are disjoint) interacts with *derived* facts.

Run with::

    python examples/financial_portfolio.py
"""

from repro import OBDASystem, TGDRewriter, ucq_metrics
from repro.workloads import stock_exchange_example as running


def describe(title: str, result) -> None:
    metrics = ucq_metrics(result.ucq)
    print(f"{title}: size={metrics.size} length={metrics.length} width={metrics.width}")
    for cq in result.ucq:
        print("   ", cq)


def main() -> None:
    theory = running.theory()
    query = running.running_query()
    print("Ontology:", theory)
    print("Query   :", query)
    print()

    # -- rewriting, with and without query elimination ----------------------
    plain = TGDRewriter(theory.tgds).rewrite(query)
    optimised = TGDRewriter(theory.tgds, use_elimination=True).rewrite(query)

    print(f"TGD-rewrite  : {plain.size} CQs "
          f"({plain.statistics.generated_by_rewriting} generated, "
          f"{plain.statistics.elapsed_seconds:.3f}s)")
    describe("TGD-rewrite* (query elimination)", optimised)
    print()

    # -- answering over the sample database ---------------------------------
    system = OBDASystem(
        theory,
        database=running.sample_database(),
        schema=running.SCHEMA,
        use_elimination=True,
    )
    answers = system.answer(query)
    print("Certain answers over the sample database:")
    for stock, company, index in sorted(answers, key=str):
        print(f"    {stock} is owned by {company} and listed on {index}")

    chase_answers = system.answer_via_chase(query)
    print("Chase oracle agrees:", answers.tuples == chase_answers)
    print()

    # -- the rewriting as SQL ------------------------------------------------
    print("SQL shipped to the RDBMS:")
    print(system.to_sql(query))
    print()

    # -- negative constraints -------------------------------------------------
    print("Database consistent with δ1?", system.is_consistent())
    print("Asserting fin_ins(ibm) — but σ9 derives legal_person(ibm) ...")
    system.add_fact("fin_ins", ("ibm",))
    print("Database consistent with δ1?", system.is_consistent())


if __name__ == "__main__":
    main()
