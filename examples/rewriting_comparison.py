"""Reproduce a slice of Table 1: compare QO, RQ, NY and NY* on a workload.

The script runs the four rewriting systems of the paper's evaluation on one
of the reconstructed ontologies (STOCKEXCHANGE by default) and prints the
size / length / width of every rewriting, Table-1 style.  Pass a different
workload name (``V``, ``S``, ``U``, ``A``, ``P5``, ``UX``, ``AX``, ``P5X``)
as the first command-line argument to compare on another ontology.

Run with::

    python examples/rewriting_comparison.py S
    python examples/rewriting_comparison.py V
"""

import sys

from repro import Table1Evaluator, format_rows, get_workload
from repro.baselines import ChaseBackchase


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "S"
    workload = get_workload(name)
    print(f"Workload {workload.name}: {workload.description}")
    print(f"  {len(workload.theory.tgds)} TGDs, "
          f"{len(workload.theory.negative_constraints)} negative constraints")
    print()

    evaluator = Table1Evaluator(workload)
    rows = evaluator.rows()
    print(format_rows(rows))
    print()

    # Timing summary (seconds per rewriting).
    print("rewriting time (seconds):")
    for row in rows:
        cells = "  ".join(
            f"{system}={row.cell(system).elapsed_seconds:.3f}" for system in evaluator.systems
        )
        print(f"  {row.query_name}: {cells}")
    print()

    # For comparison: what the chase & back-chase minimiser says about the
    # most redundant query of the workload (q2 in most of them).
    query = workload.query("q2")
    minimal = ChaseBackchase(workload.theory, max_chase_depth=4).minimize(query)
    print("Chase & back-chase minimisation of q2:")
    print("    original:", query)
    print("    minimal :", minimal)


if __name__ == "__main__":
    main()
