"""Datalog± dependencies: TGDs, negative constraints, key dependencies, classifiers."""

from .classifiers import (
    Classification,
    affected_positions,
    classify,
    is_full,
    is_guarded,
    is_linear,
    is_sticky,
    is_sticky_join,
    is_weakly_acyclic,
    is_weakly_guarded,
    sticky_marking,
)
from .constraints import (
    KeyDependency,
    KeyViolationQuery,
    NegativeConstraint,
    is_non_conflicting,
    non_conflicting_set,
)
from .normalization import NormalizationResult, is_normalized, normalize
from .tgd import TGD, schema_positions, schema_predicates, tgd
from .theory import NormalizedTheory, OntologyTheory, theory

__all__ = [
    "Classification",
    "KeyDependency",
    "KeyViolationQuery",
    "NegativeConstraint",
    "NormalizationResult",
    "NormalizedTheory",
    "OntologyTheory",
    "TGD",
    "affected_positions",
    "classify",
    "is_full",
    "is_guarded",
    "is_linear",
    "is_non_conflicting",
    "is_normalized",
    "is_sticky",
    "is_sticky_join",
    "is_weakly_acyclic",
    "is_weakly_guarded",
    "non_conflicting_set",
    "normalize",
    "schema_positions",
    "schema_predicates",
    "sticky_marking",
    "tgd",
    "theory",
]
