"""Ontological theories: TGDs + negative constraints + key dependencies.

An :class:`OntologyTheory` bundles the TBox-level knowledge of an ontology in
Datalog± form, mirroring the setting of the paper: a set Σ of TGDs, a set Σ⊥
of negative constraints, and a set ΣK of key dependencies.  It exposes

* normalisation to the single-head / single-existential normal form assumed
  by the rewriting algorithms (optionally keeping the auxiliary predicates in
  the public schema, which is how the UX/AX/P5X workloads are produced);
* language classification (linear / sticky / ... — Section 4);
* the separability pre-check for key dependencies (Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterable, Sequence

from ..logic.atoms import Predicate
from .classifiers import Classification, classify
from .constraints import KeyDependency, NegativeConstraint, non_conflicting_set
from .normalization import NormalizationResult, normalize
from .tgd import TGD, schema_predicates


@dataclass
class OntologyTheory:
    """A Datalog± theory: TGDs, negative constraints and key dependencies."""

    tgds: list[TGD] = field(default_factory=list)
    negative_constraints: list[NegativeConstraint] = field(default_factory=list)
    key_dependencies: list[KeyDependency] = field(default_factory=list)
    name: str = "theory"

    # -- construction helpers ---------------------------------------------------

    def add_tgd(self, rule: TGD) -> "OntologyTheory":
        """Add a TGD (in place) and return ``self`` for chaining."""
        self.tgds.append(rule)
        self.__dict__.pop("classification", None)
        return self

    def add_negative_constraint(self, constraint: NegativeConstraint) -> "OntologyTheory":
        """Add a negative constraint (in place) and return ``self``."""
        self.negative_constraints.append(constraint)
        return self

    def add_key(self, key: KeyDependency) -> "OntologyTheory":
        """Add a key dependency (in place) and return ``self``."""
        self.key_dependencies.append(key)
        return self

    def extend(self, rules: Iterable[TGD]) -> "OntologyTheory":
        """Add several TGDs (in place) and return ``self``."""
        for rule in rules:
            self.add_tgd(rule)
        return self

    # -- views --------------------------------------------------------------------

    @property
    def predicates(self) -> frozenset[Predicate]:
        """All predicates mentioned by the TGDs."""
        return schema_predicates(self.tgds)

    @cached_property
    def classification(self) -> Classification:
        """Language classification of the TGD set (Section 4)."""
        return classify(self.tgds)

    @property
    def is_fo_rewritable(self) -> bool:
        """``True`` iff a recognised FO-rewritability criterion applies."""
        return self.classification.fo_rewritable

    def keys_are_non_conflicting(self) -> bool:
        """Check the sufficient separability criterion for all TGD/KD pairs."""
        if not self.key_dependencies:
            return True
        return non_conflicting_set(self.tgds, self.key_dependencies)

    # -- normalisation ---------------------------------------------------------------

    def normalized(self, keep_auxiliary_in_schema: bool = False) -> "NormalizedTheory":
        """Normalise the TGDs per Lemmas 1 and 2.

        Parameters
        ----------
        keep_auxiliary_in_schema:
            When ``True`` the auxiliary predicates are treated as ordinary
            schema predicates (the ``UX``/``AX``/``P5X`` setting of Table 1);
            otherwise they are recorded as internal.
        """
        result = normalize(self.tgds)
        suffix = "X" if keep_auxiliary_in_schema else "_norm"
        theory = OntologyTheory(
            tgds=list(result.rules),
            negative_constraints=list(self.negative_constraints),
            key_dependencies=list(self.key_dependencies),
            name=f"{self.name}{suffix}",
        )
        return NormalizedTheory(
            theory=theory,
            normalization=result,
            auxiliary_public=keep_auxiliary_in_schema,
        )

    def __repr__(self) -> str:
        return (
            f"OntologyTheory({self.name!r}: {len(self.tgds)} TGDs, "
            f"{len(self.negative_constraints)} NCs, {len(self.key_dependencies)} KDs)"
        )


@dataclass
class NormalizedTheory:
    """A normalised theory plus the bookkeeping of the normalisation."""

    theory: OntologyTheory
    normalization: NormalizationResult
    auxiliary_public: bool

    @property
    def tgds(self) -> list[TGD]:
        """The normalised TGDs."""
        return self.theory.tgds

    @property
    def auxiliary_predicates(self) -> list[Predicate]:
        """Auxiliary predicates introduced by Lemmas 1 and 2."""
        return self.normalization.auxiliary_predicates


def theory(
    tgds: Sequence[TGD] = (),
    negative_constraints: Sequence[NegativeConstraint] = (),
    key_dependencies: Sequence[KeyDependency] = (),
    name: str = "theory",
) -> OntologyTheory:
    """Convenience constructor for an :class:`OntologyTheory`."""
    return OntologyTheory(
        tgds=list(tgds),
        negative_constraints=list(negative_constraints),
        key_dependencies=list(key_dependencies),
        name=name,
    )
