"""Negative constraints (NCs) and key dependencies (KDs).

Section 4.2 of the paper: Datalog± combines TGDs with

* **negative constraints** ``∀X φ(X) → ⊥`` — the body must never hold
  (disjointness of concepts, forbidden participations, ...);
* **key dependencies** ``key(r) = {i1, ..., ik}`` — the listed attribute
  positions functionally determine the whole tuple.

Checking an NC amounts to answering the BCQ whose body is the NC body
(:func:`NegativeConstraint.as_query`).  KDs may only be combined with TGDs
when the interaction is *separable*; the syntactic *non-conflicting*
criterion (Calì, Gottlob & Lukasiewicz, PODS'09) that the paper relies on is
implemented in :func:`is_non_conflicting`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, Sequence

from ..logic.atoms import Atom, Predicate, atoms_variables
from ..logic.terms import Variable, is_variable
from ..queries.conjunctive_query import ConjunctiveQuery
from .tgd import TGD


@dataclass(frozen=True)
class NegativeConstraint:
    """A negative constraint ``body → ⊥``."""

    body: tuple[Atom, ...]
    label: str = ""

    def __init__(self, body: Iterable[Atom], label: str = "") -> None:
        body = tuple(body)
        if not body:
            raise ValueError("a negative constraint must have at least one body atom")
        object.__setattr__(self, "body", body)
        object.__setattr__(self, "label", label)

    @cached_property
    def variables(self) -> frozenset[Variable]:
        """Variables of the constraint body."""
        return atoms_variables(self.body)

    def as_query(self) -> ConjunctiveQuery:
        """The BCQ ``qν() ← body`` whose positive answer signals a violation."""
        return ConjunctiveQuery(self.body, (), head_name=f"nc_{self.label or 'check'}")

    def __repr__(self) -> str:
        body = ", ".join(repr(a) for a in self.body)
        name = f"[{self.label}] " if self.label else ""
        return f"{name}{body} -> ⊥"


@dataclass(frozen=True)
class KeyDependency:
    """A key dependency ``key(predicate) = key_positions`` (1-based positions)."""

    predicate: Predicate
    key_positions: tuple[int, ...]
    label: str = ""

    def __init__(
        self, predicate: Predicate, key_positions: Iterable[int], label: str = ""
    ) -> None:
        key_positions = tuple(sorted(set(key_positions)))
        if not key_positions:
            raise ValueError("a key dependency needs at least one key position")
        for index in key_positions:
            if not 1 <= index <= predicate.arity:
                raise ValueError(
                    f"key position {index} out of range for {predicate!r}"
                )
        object.__setattr__(self, "predicate", predicate)
        object.__setattr__(self, "key_positions", key_positions)
        object.__setattr__(self, "label", label)

    @property
    def non_key_positions(self) -> tuple[int, ...]:
        """Positions of the predicate not belonging to the key."""
        return tuple(
            i for i in range(1, self.predicate.arity + 1) if i not in self.key_positions
        )

    def __repr__(self) -> str:
        positions = ", ".join(str(i) for i in self.key_positions)
        name = f"[{self.label}] " if self.label else ""
        return f"{name}key({self.predicate.name}) = {{{positions}}}"

    def violating_query(self) -> "KeyViolationQuery":
        """A symbolic representation of the violation check.

        The paper (Section 4.2) reduces KD checking to an NC over an auxiliary
        inequality predicate ``neq``: ``r(X..), r(X'..), neq(Yi, Y'i) → ⊥``.
        Because our in-memory engine can evaluate inequalities natively, the
        violation check is expressed as two atoms sharing the key positions
        plus a disequality on some non-key position; see
        :meth:`repro.database.instance.RelationalInstance.satisfies_key`.
        """
        return KeyViolationQuery(self)


@dataclass(frozen=True)
class KeyViolationQuery:
    """Two-atom pattern describing a violation of a key dependency."""

    key: KeyDependency

    def atoms(self) -> tuple[Atom, Atom, tuple[tuple[Variable, Variable], ...]]:
        """Return the two atoms plus the pairs of variables that must differ."""
        predicate = self.key.predicate
        left_terms = [Variable(f"K{i}") for i in range(1, predicate.arity + 1)]
        right_terms = [
            Variable(f"K{i}") if i in self.key.key_positions else Variable(f"K{i}_b")
            for i in range(1, predicate.arity + 1)
        ]
        inequalities = tuple(
            (left_terms[i - 1], right_terms[i - 1]) for i in self.key.non_key_positions
        )
        return (
            Atom(predicate, tuple(left_terms)),
            Atom(predicate, tuple(right_terms)),
            inequalities,
        )


def is_non_conflicting(rule: TGD, key: KeyDependency) -> bool:
    """Sufficient syntactic criterion for the separability of a TGD and a KD.

    Following Calì, Gottlob & Lukasiewicz (PODS'09), a (normalised,
    single-head) TGD ``σ`` and a key ``κ = key(r) = K`` are *non-conflicting*
    when at least one of the following holds:

    1. the head predicate of ``σ`` differs from ``r``;
    2. the positions of ``K`` are **not** a proper subset of the head
       positions of ``σ`` holding universally quantified (frontier) terms or
       constants, and every existential variable of ``σ`` occurs exactly once
       in the head.

    Intuitively, either the TGD never creates tuples of ``r``, or the tuples
    it creates carry a fresh null inside the key (hence they can never
    violate the key against existing tuples), or they duplicate the whole
    key-determined part.
    """
    for head_atom in rule.head:
        if head_atom.predicate != key.predicate:
            continue
        universal_positions = {
            i
            for i, term in enumerate(head_atom.terms, start=1)
            if not (is_variable(term) and term in rule.existential_variables)
        }
        key_positions = set(key.key_positions)
        if key_positions < universal_positions:
            return False
        existential_occurrences: dict[Variable, int] = {}
        for term in head_atom.terms:
            if is_variable(term) and term in rule.existential_variables:
                existential_occurrences[term] = existential_occurrences.get(term, 0) + 1
        if any(count > 1 for count in existential_occurrences.values()):
            return False
    return True


def non_conflicting_set(rules: Sequence[TGD], keys: Sequence[KeyDependency]) -> bool:
    """``True`` iff every TGD/KD pair is non-conflicting."""
    return all(is_non_conflicting(rule, key) for rule in rules for key in keys)
