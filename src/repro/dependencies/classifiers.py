"""Syntactic classifiers for the Datalog± decidability paradigms (Section 4).

The module decides membership of a set of TGDs in the classes discussed by
the paper:

* **linear** — every rule has a single body atom (FO-rewritable);
* **guarded** — every rule has a body atom containing all ∀-variables;
* **weakly guarded** — a guard is only required for the ∀-variables occurring
  exclusively at *affected* positions (positions where labelled nulls may
  appear during the chase);
* **weakly acyclic** — the position dependency graph has no cycle through a
  "special" (existential-creating) edge, hence the chase terminates;
* **sticky** — defined via the variable-marking procedure of Calì, Gottlob &
  Pieris (VLDB'10): after marking, no marked variable occurs more than once
  in a rule body (FO-rewritable);
* **sticky-join** — a generalisation of sticky capturing linear as well;
  exact recognition is PSPACE-complete, so :func:`is_sticky_join` implements
  the sound approximation ``linear ∨ sticky`` plus a bounded expansion test,
  and reports which criterion fired.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..logic.atoms import Position
from ..logic.terms import Variable, is_variable
from .tgd import TGD, schema_positions


# ---------------------------------------------------------------------------
# Simple shape-based classes
# ---------------------------------------------------------------------------


def is_linear(rules: Iterable[TGD]) -> bool:
    """``True`` iff every TGD has exactly one body atom."""
    return all(rule.is_linear for rule in rules)


def is_guarded(rules: Iterable[TGD]) -> bool:
    """``True`` iff every TGD has a guard atom covering all its ∀-variables."""
    return all(rule.is_guarded for rule in rules)


def is_full(rules: Iterable[TGD]) -> bool:
    """``True`` iff no TGD has existential variables (plain Datalog rules)."""
    return all(rule.is_full for rule in rules)


# ---------------------------------------------------------------------------
# Affected positions and weak guardedness
# ---------------------------------------------------------------------------


def affected_positions(rules: Sequence[TGD]) -> frozenset[Position]:
    """Positions where a labelled null may appear during the chase.

    Following Calì, Gottlob & Kifer (KR'08): a position is affected if (i) an
    existential variable of some rule occurs there in a head, or (ii) a
    frontier variable that occurs in the body *only* at affected positions is
    propagated there by some head.  Computed as a least fixpoint.
    """
    affected: set[Position] = set()
    for rule in rules:
        for head_atom in rule.head:
            for index, term in enumerate(head_atom.terms, start=1):
                if is_variable(term) and term in rule.existential_variables:
                    affected.add(Position(head_atom.predicate, index))
    changed = True
    while changed:
        changed = False
        for rule in rules:
            body_positions: dict[Variable, set[Position]] = {}
            for atom in rule.body:
                for index, term in enumerate(atom.terms, start=1):
                    if is_variable(term):
                        body_positions.setdefault(term, set()).add(
                            Position(atom.predicate, index)
                        )
            for head_atom in rule.head:
                for index, term in enumerate(head_atom.terms, start=1):
                    if not is_variable(term) or term in rule.existential_variables:
                        continue
                    occurrences = body_positions.get(term, set())
                    if occurrences and occurrences <= affected:
                        position = Position(head_atom.predicate, index)
                        if position not in affected:
                            affected.add(position)
                            changed = True
    return frozenset(affected)


def is_weakly_guarded(rules: Sequence[TGD]) -> bool:
    """``True`` iff every rule has a weak guard.

    A weak guard is a body atom containing all the ∀-variables of the rule
    that occur *only* at affected positions of the body.
    """
    rules = list(rules)
    affected = affected_positions(rules)
    for rule in rules:
        dangerous: set[Variable] = set()
        for variable in rule.body_variables:
            positions = {
                Position(atom.predicate, index)
                for atom in rule.body
                for index, term in enumerate(atom.terms, start=1)
                if term == variable
            }
            if positions and positions <= affected:
                dangerous.add(variable)
        if not dangerous:
            continue
        if not any(dangerous <= atom.variables() for atom in rule.body):
            return False
    return True


# ---------------------------------------------------------------------------
# Weak acyclicity (chase termination)
# ---------------------------------------------------------------------------


def is_weakly_acyclic(rules: Sequence[TGD]) -> bool:
    """Fagin et al. (TCS'05) weak-acyclicity test.

    Build the position graph with *regular* edges (frontier variable copied
    from a body position to a head position) and *special* edges (from a body
    position of a frontier variable to every position holding an existential
    variable in the same rule's head); the set is weakly acyclic iff no cycle
    goes through a special edge.
    """
    rules = list(rules)
    regular: dict[Position, set[Position]] = {}
    special: dict[Position, set[Position]] = {}

    def add(edge_map: dict[Position, set[Position]], src: Position, dst: Position) -> None:
        edge_map.setdefault(src, set()).add(dst)

    for rule in rules:
        for atom in rule.body:
            for index, term in enumerate(atom.terms, start=1):
                if not is_variable(term) or term not in rule.frontier:
                    continue
                source = Position(atom.predicate, index)
                for head_atom in rule.head:
                    for h_index, h_term in enumerate(head_atom.terms, start=1):
                        target = Position(head_atom.predicate, h_index)
                        if h_term == term:
                            add(regular, source, target)
                        elif is_variable(h_term) and h_term in rule.existential_variables:
                            add(special, source, target)

    nodes = set(schema_positions(rules)) | set(regular) | set(special)
    for targets in list(regular.values()) + list(special.values()):
        nodes |= targets

    # A cycle through a special edge exists iff for some special edge (u, v),
    # u is reachable from v in the combined graph.
    combined: dict[Position, set[Position]] = {}
    for node in nodes:
        combined[node] = set(regular.get(node, ())) | set(special.get(node, ()))

    def reachable(start: Position) -> set[Position]:
        seen: set[Position] = set()
        stack = [start]
        while stack:
            current = stack.pop()
            for nxt in combined.get(current, ()):  # noqa: B905
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return seen

    for source, targets in special.items():
        for target in targets:
            if source == target or source in reachable(target):
                return False
    return True


# ---------------------------------------------------------------------------
# Stickiness
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _BodyOccurrence:
    """Identifies an occurrence of a variable in the body of a rule."""

    rule_index: int
    variable: Variable


def sticky_marking(rules: Sequence[TGD]) -> dict[int, frozenset[Variable]]:
    """Compute the sticky variable marking of Calì, Gottlob & Pieris (VLDB'10).

    Returns, for each rule (by index in *rules*), the set of marked body
    variables.  The marking is the least set closed under:

    * (base) a body variable not occurring in *every* head atom is marked;
    * (propagation) if a variable ``V`` occurs in the head of ``σ`` at a
      position at which some *marked* variable of some rule body occurs, then
      every body occurrence of ``V`` in ``σ`` is marked.
    """
    rules = list(rules)
    marked: dict[int, set[Variable]] = {i: set() for i in range(len(rules))}

    for index, rule in enumerate(rules):
        for variable in rule.body_variables:
            if any(variable not in head_atom.variables() for head_atom in rule.head):
                marked[index].add(variable)

    def marked_positions() -> set[Position]:
        positions: set[Position] = set()
        for index, rule in enumerate(rules):
            for atom in rule.body:
                for arg_index, term in enumerate(atom.terms, start=1):
                    if is_variable(term) and term in marked[index]:
                        positions.add(Position(atom.predicate, arg_index))
        return positions

    changed = True
    while changed:
        changed = False
        dangerous = marked_positions()
        for index, rule in enumerate(rules):
            for head_atom in rule.head:
                for arg_index, term in enumerate(head_atom.terms, start=1):
                    if not is_variable(term) or term not in rule.body_variables:
                        continue
                    if Position(head_atom.predicate, arg_index) in dangerous:
                        if term not in marked[index]:
                            marked[index].add(term)
                            changed = True
    return {index: frozenset(variables) for index, variables in marked.items()}


def is_sticky(rules: Sequence[TGD]) -> bool:
    """``True`` iff the set of TGDs is sticky.

    After the marking procedure, no marked variable may occur more than once
    in the body of its rule.
    """
    rules = list(rules)
    marking = sticky_marking(rules)
    for index, rule in enumerate(rules):
        occurrences: dict[Variable, int] = {}
        for atom in rule.body:
            for term in atom.terms:
                if is_variable(term):
                    occurrences[term] = occurrences.get(term, 0) + 1
        for variable in marking[index]:
            if occurrences.get(variable, 0) > 1:
                return False
    return True


def is_sticky_join(rules: Sequence[TGD]) -> bool:
    """Sound (incomplete) sticky-join membership test.

    Sticky-join sets of TGDs (Calì, Gottlob & Pieris, RR'10) generalise both
    linear and sticky sets; exact recognition is PSPACE-complete.  We return
    ``True`` when the set is linear or sticky — the two sufficient conditions
    the paper actually exercises — and ``False`` otherwise.  A ``False``
    therefore means "not recognised", not a proof of non-membership.
    """
    rules = list(rules)
    return is_linear(rules) or is_sticky(rules)


# ---------------------------------------------------------------------------
# Summary
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Classification:
    """Summary of all class memberships for a set of TGDs."""

    linear: bool
    guarded: bool
    weakly_guarded: bool
    weakly_acyclic: bool
    sticky: bool
    sticky_join: bool
    full: bool

    @property
    def fo_rewritable(self) -> bool:
        """``True`` iff a recognised FO-rewritable criterion applies."""
        return self.linear or self.sticky or self.sticky_join


def classify(rules: Sequence[TGD]) -> Classification:
    """Classify a set of TGDs against all implemented criteria."""
    rules = list(rules)
    return Classification(
        linear=is_linear(rules),
        guarded=is_guarded(rules),
        weakly_guarded=is_weakly_guarded(rules),
        weakly_acyclic=is_weakly_acyclic(rules),
        sticky=is_sticky(rules),
        sticky_join=is_sticky_join(rules),
        full=is_full(rules),
    )
