"""Tuple-generating dependencies (TGDs), the rules of Datalog±.

A TGD has the form ``∀X ∀Y φ(X, Y) → ∃Z ψ(X, Z)`` (Section 3.2): whenever the
body holds, the head must hold for *some* value of the existential variables.
The variables shared between body and head (``X``) are called the *frontier*;
the remaining head variables (``Z``) are existentially quantified.

After the normalisation of Lemmas 1 and 2 (see
:mod:`repro.dependencies.normalization`), every TGD used by the rewriting
algorithms has a single head atom containing at most one existential variable
that occurs exactly once; :attr:`TGD.existential_position` (``πσ`` in the
paper) is then well defined.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, Sequence

from ..logic.atoms import Atom, Position, Predicate, atoms_predicates, atoms_variables
from ..logic.substitution import Substitution
from ..logic.terms import Constant, Term, Variable, is_constant, is_variable


@dataclass(frozen=True)
class TGD:
    """An immutable tuple-generating dependency ``body → head``."""

    body: tuple[Atom, ...]
    head: tuple[Atom, ...]
    label: str = ""

    def __init__(
        self, body: Iterable[Atom], head: Iterable[Atom], label: str = ""
    ) -> None:
        body = tuple(body)
        head = tuple(head)
        if not body:
            raise ValueError("a TGD must have at least one body atom")
        if not head:
            raise ValueError("a TGD must have at least one head atom")
        object.__setattr__(self, "body", body)
        object.__setattr__(self, "head", head)
        object.__setattr__(self, "label", label)

    # -- variable classification ----------------------------------------------

    @cached_property
    def body_variables(self) -> frozenset[Variable]:
        """Variables occurring in the body (the universally quantified ones)."""
        return atoms_variables(self.body)

    @cached_property
    def head_variables(self) -> frozenset[Variable]:
        """Variables occurring in the head."""
        return atoms_variables(self.head)

    @cached_property
    def frontier(self) -> frozenset[Variable]:
        """Variables shared by body and head (propagated, not invented)."""
        return self.body_variables & self.head_variables

    @cached_property
    def existential_variables(self) -> frozenset[Variable]:
        """Head variables that do not occur in the body (the ``∃Z`` of the rule)."""
        return self.head_variables - self.body_variables

    @cached_property
    def constants(self) -> frozenset[Constant]:
        """Constants mentioned anywhere in the rule."""
        result: set[Constant] = set()
        for atom in self.body + self.head:
            result.update(atom.constants())
        return frozenset(result)

    @cached_property
    def predicates(self) -> frozenset[Predicate]:
        """Predicates mentioned anywhere in the rule."""
        return atoms_predicates(self.body) | atoms_predicates(self.head)

    # -- shape predicates -------------------------------------------------------

    @property
    def is_linear(self) -> bool:
        """``True`` iff the TGD has a single body atom (Section 4.1)."""
        return len(self.body) == 1

    @property
    def is_full(self) -> bool:
        """``True`` iff the TGD has no existential variables (a "full" TGD)."""
        return not self.existential_variables

    @property
    def is_single_head(self) -> bool:
        """``True`` iff the TGD has exactly one head atom."""
        return len(self.head) == 1

    @property
    def is_normalized(self) -> bool:
        """``True`` iff single-head with at most one existential variable occurring once.

        This is the normal form assumed by the rewriting algorithms (obtained
        via Lemmas 1 and 2).
        """
        if not self.is_single_head:
            return False
        existentials = [
            t for t in self.head[0].terms if isinstance(t, Variable)
            and t in self.existential_variables
        ]
        return len(existentials) <= 1

    @cached_property
    def existential_position(self) -> Position | None:
        """The position ``πσ`` of the existential variable in the head.

        Only meaningful for normalised TGDs; ``None`` for full TGDs.  Raises
        :class:`ValueError` when the TGD is not normalised (the position would
        be ambiguous).
        """
        if not self.is_single_head:
            raise ValueError(f"{self!r} is not single-head; normalise it first")
        head_atom = self.head[0]
        positions = [
            Position(head_atom.predicate, i)
            for i, t in enumerate(head_atom.terms, start=1)
            if isinstance(t, Variable) and t in self.existential_variables
        ]
        if not positions:
            return None
        if len(positions) > 1:
            raise ValueError(
                f"{self!r} has several existential occurrences; normalise it first"
            )
        return positions[0]

    @property
    def guard(self) -> Atom | None:
        """A body atom containing all universally quantified variables, if any."""
        for atom in self.body:
            if self.body_variables <= atom.variables():
                return atom
        return None

    @property
    def is_guarded(self) -> bool:
        """``True`` iff some body atom is a guard (Section 4.1)."""
        return self.guard is not None

    # -- transformations ---------------------------------------------------------

    def apply(self, substitution: Substitution) -> "TGD":
        """Apply a substitution to body and head, returning a new TGD."""
        return TGD(
            substitution.apply_atoms(self.body),
            substitution.apply_atoms(self.head),
            self.label,
        )

    def rename_apart(self, avoid: Iterable[Term], factory) -> "TGD":
        """Rename all variables of the rule away from those in *avoid*.

        The rewriting algorithm assumes w.l.o.g. that the variables of the
        query and of the TGD are disjoint; this helper enforces it.  The
        factory guarantees freshness only against its *own* previous
        output, so each minted name is additionally checked against
        *avoid* and the rule's variables — a query that itself mentions
        ``W1`` must not receive ``W1`` as the "fresh" replacement.
        """
        avoid_set = {t for t in avoid if is_variable(t)}
        own_variables = self.body_variables | self.head_variables
        mapping: dict[Term, Term] = {}
        for variable in sorted(own_variables, key=str):
            if variable in avoid_set:
                replacement = factory()
                while replacement in avoid_set or replacement in own_variables:
                    replacement = factory()
                mapping[variable] = replacement
        if not mapping:
            return self
        return self.apply(Substitution(mapping))

    def refresh(self, factory) -> "TGD":
        """Return a copy with *all* variables renamed to fresh ones."""
        mapping = {
            variable: factory()
            for variable in sorted(self.body_variables | self.head_variables, key=str)
        }
        return self.apply(Substitution(mapping))

    # -- display -------------------------------------------------------------------

    def __repr__(self) -> str:
        body = ", ".join(repr(a) for a in self.body)
        head = ", ".join(repr(a) for a in self.head)
        existentials = sorted(self.existential_variables, key=str)
        prefix = ""
        if existentials:
            prefix = "∃" + ",".join(str(v) for v in existentials) + " "
        name = f"[{self.label}] " if self.label else ""
        return f"{name}{body} -> {prefix}{head}"


def tgd(body: Sequence[Atom] | Atom, head: Sequence[Atom] | Atom, label: str = "") -> TGD:
    """Convenience constructor accepting single atoms or sequences."""
    if isinstance(body, Atom):
        body = (body,)
    if isinstance(head, Atom):
        head = (head,)
    return TGD(body, head, label)


def schema_predicates(tgds: Iterable[TGD]) -> frozenset[Predicate]:
    """All predicates mentioned by a set of TGDs."""
    result: set[Predicate] = set()
    for rule in tgds:
        result.update(rule.predicates)
    return frozenset(result)


def schema_positions(tgds: Iterable[TGD]) -> frozenset[Position]:
    """All positions of the schema induced by a set of TGDs."""
    positions: set[Position] = set()
    for predicate in schema_predicates(tgds):
        for index in range(1, predicate.arity + 1):
            positions.add(Position(predicate, index))
    return frozenset(positions)
