"""Normalisation of TGDs (Lemmas 1 and 2 of the paper).

The rewriting algorithm assumes, without loss of generality, that every TGD

1. has **one head atom** (Lemma 1), and
2. contains **at most one existentially quantified variable, occurring only
   once** (Lemma 2).

Both reductions introduce auxiliary predicates (``rσ`` in the paper):

* Lemma 1 splits ``body → a1, ..., ak`` into ``body → rσ(X)`` plus
  ``rσ(X) → ai`` for each head atom, where ``X`` are the head variables;
* Lemma 2 splits a head with existential variables ``Z1, ..., Zm`` (m > 1)
  into a chain of rules each inventing a single fresh value.

The transformations preserve certain answers for every query over the
original schema because the auxiliary predicates never occur in queries, and
they preserve linearity / stickiness / sticky-joinness.  The experimental
ontologies ``UX``, ``AX`` and ``P5X`` of Table 1 are exactly the normalised
versions of ``U``, ``A`` and ``P5`` *with the auxiliary predicates considered
part of the schema*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..logic.atoms import Atom, Predicate
from ..logic.terms import Variable
from .tgd import TGD


@dataclass
class NormalizationResult:
    """Outcome of normalising a set of TGDs.

    Attributes
    ----------
    rules:
        The normalised TGDs (single head atom, ≤ 1 existential occurrence).
    auxiliary_predicates:
        Auxiliary predicates introduced by the transformation; queries over
        the original schema never mention them.
    provenance:
        Maps each produced rule to the label of the original rule it derives
        from (useful for debugging and for the ``*X`` workloads).
    """

    rules: list[TGD] = field(default_factory=list)
    auxiliary_predicates: list[Predicate] = field(default_factory=list)
    provenance: dict[TGD, str] = field(default_factory=dict)


def _ordered_variables(atoms: Sequence[Atom]) -> list[Variable]:
    """Variables of *atoms* in first-occurrence order (deterministic output)."""
    ordered: list[Variable] = []
    seen: set[Variable] = set()
    for atom in atoms:
        for term in atom.terms:
            if isinstance(term, Variable) and term not in seen:
                seen.add(term)
                ordered.append(term)
    return ordered


def split_multi_head(rule: TGD, index: int, result: NormalizationResult) -> list[TGD]:
    """Lemma 1: replace a multi-head TGD by single-head TGDs via an auxiliary predicate."""
    if rule.is_single_head:
        return [rule]
    head_variables = _ordered_variables(rule.head)
    auxiliary = Predicate(f"aux_h{index}_{rule.label or 'tgd'}", len(head_variables))
    result.auxiliary_predicates.append(auxiliary)
    auxiliary_atom = Atom(auxiliary, tuple(head_variables))
    produced = [TGD(rule.body, (auxiliary_atom,), f"{rule.label}#collect")]
    for atom_index, head_atom in enumerate(rule.head, start=1):
        produced.append(
            TGD((auxiliary_atom,), (head_atom,), f"{rule.label}#project{atom_index}")
        )
    return produced


def split_multi_existential(rule: TGD, index: int, result: NormalizationResult) -> list[TGD]:
    """Lemma 2: replace multiple existential variables by a chain of single-∃ rules."""
    head_atom = rule.head[0]
    existential_in_head = [
        term
        for term in _ordered_variables([head_atom])
        if term in rule.existential_variables
    ]
    occurrences = sum(
        1 for term in head_atom.terms if term in rule.existential_variables
    )
    if len(existential_in_head) <= 1 and occurrences <= 1:
        return [rule]
    frontier = [v for v in _ordered_variables(rule.body) if v in rule.frontier]
    produced: list[TGD] = []
    previous_atom: Atom | None = None
    carried: list[Variable] = list(frontier)
    for step, existential in enumerate(existential_in_head, start=1):
        auxiliary = Predicate(
            f"aux_e{index}_{step}_{rule.label or 'tgd'}", len(carried) + 1
        )
        result.auxiliary_predicates.append(auxiliary)
        new_atom = Atom(auxiliary, tuple(carried) + (existential,))
        body = rule.body if previous_atom is None else (previous_atom,)
        produced.append(
            TGD(body, (new_atom,), f"{rule.label}#invent{step}")
        )
        carried = carried + [existential]
        previous_atom = new_atom
    assert previous_atom is not None
    produced.append(TGD((previous_atom,), (head_atom,), f"{rule.label}#emit"))
    return produced


def _split_repeated_existential(rule: TGD, index: int, result: NormalizationResult) -> list[TGD]:
    """Handle a single existential variable occurring more than once in the head.

    The paper's normal form also requires the (single) existential variable to
    occur only once; a head like ``r(X, Z, Z)`` is therefore split via an
    auxiliary predicate that holds the invented value once.
    """
    head_atom = rule.head[0]
    existential = next(iter(rule.existential_variables))
    occurrences = sum(1 for term in head_atom.terms if term == existential)
    if occurrences <= 1:
        return [rule]
    frontier = [v for v in _ordered_variables(rule.body) if v in rule.frontier]
    auxiliary = Predicate(f"aux_r{index}_{rule.label or 'tgd'}", len(frontier) + 1)
    result.auxiliary_predicates.append(auxiliary)
    auxiliary_atom = Atom(auxiliary, tuple(frontier) + (existential,))
    return [
        TGD(rule.body, (auxiliary_atom,), f"{rule.label}#invent"),
        TGD((auxiliary_atom,), (head_atom,), f"{rule.label}#emit"),
    ]


def normalize(rules: Iterable[TGD]) -> NormalizationResult:
    """Normalise a set of TGDs to the form assumed by the rewriting algorithms.

    The result's rules each have a single head atom with at most one
    existential variable occurring exactly once (``πσ`` well defined).
    """
    result = NormalizationResult()
    counter = 0
    for rule in rules:
        counter += 1
        stage_one = split_multi_head(rule, counter, result)
        stage_two: list[TGD] = []
        for produced in stage_one:
            counter += 1
            if len(produced.existential_variables) > 1:
                stage_two.extend(split_multi_existential(produced, counter, result))
            elif len(produced.existential_variables) == 1:
                stage_two.extend(_split_repeated_existential(produced, counter, result))
            else:
                stage_two.append(produced)
        for produced in stage_two:
            result.rules.append(produced)
            result.provenance[produced] = rule.label or repr(rule)
    return result


def is_normalized(rules: Iterable[TGD]) -> bool:
    """``True`` iff every rule is already in the normal form."""
    return all(rule.is_normalized for rule in rules)
