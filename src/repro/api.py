"""High-level OBDA facade.

:class:`OBDASystem` wires the pieces of the library into the workflow that
the paper motivates (Section 1): an ontology (TGDs + NCs + KDs) sits on top
of a relational database; conjunctive queries posed against the ontology are
*compiled* into UCQ rewritings (optionally optimised with query elimination)
and then executed directly on the database — or exported as SQL for an
external RDBMS.

Compilation is served through three cache layers, checked in order:

1. an in-process dict keyed by the exact query object (``compile`` called
   twice returns the same result instance);
2. the optional **persistent store** (``cache=`` argument): a
   :class:`repro.cache.store.RewritingStore` keyed by ``(canonical query
   key, theory fingerprint)`` that survives process restarts and is shared
   by every system compiled against an equal theory;
3. the rewriting engine itself, whose rename-apart and applicability memos
   persist across queries, so a whole workload compiled through
   :meth:`OBDASystem.compile_many` shares the interning, memo and
   persistent layers in one pass.

*Answering* follows a prepare/execute lifecycle mirroring a database
driver's: :meth:`OBDASystem.prepare` compiles the query, hands the UCQ to a
pluggable :class:`~repro.backends.base.ExecutionBackend` (in-memory
evaluator or SQLite) for backend-side compilation, and returns a
:class:`PreparedQuery` handle.  ``PreparedQuery.execute()`` runs the plan,
supports rebinding the query's constants, and caches answer sets keyed by
the database's epoch counter — repeated executions on an unchanged ABox
are dictionary lookups.  :meth:`OBDASystem.answer` remains as a one-line
convenience over the lifecycle.
"""

from __future__ import annotations

import logging
import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping, Sequence

from .backends import ExecutionBackend, ExecutionPlan, create_backend
from .cache.fingerprint import theory_fingerprint
from .cache.store import RewritingStore
from .chase.chase import certain_answers as chase_certain_answers
from .core.rewriter import RewritingResult, RewritingStatistics, TGDRewriter
from .database.evaluator import QueryEvaluator
from .database.instance import RelationalInstance
from .database.schema import RelationalSchema
from .database.sql import ucq_to_sql
from .dependencies.theory import OntologyTheory
from .incremental.maintain import AnswerDelta, MaintainedAnswerSet
from .logic.terms import Constant
from .queries.conjunctive_query import ConjunctiveQuery
from .scheduling import SchedulingStrategy, create_strategy

logger = logging.getLogger(__name__)


class InconsistentTheoryError(RuntimeError):
    """Raised when the database violates a negative constraint or key dependency."""


@dataclass
class AnswerSet:
    """Answers of an ontological query, with the rewriting that produced them."""

    query: ConjunctiveQuery
    rewriting: RewritingResult
    tuples: frozenset[tuple]

    def __iter__(self):
        return iter(self.tuples)

    def __len__(self) -> int:
        return len(self.tuples)

    def __contains__(self, item) -> bool:
        return tuple(item) in self.tuples


@dataclass(frozen=True)
class ExecutionCacheInfo:
    """Hit/miss counters of one :class:`PreparedQuery`'s answer cache."""

    hits: int
    misses: int
    size: int


class PreparedQuery:
    """A compiled, backend-planned ontological query, ready to execute.

    Owns the perfect rewriting plus the backend's compiled plan (for
    SQLite: the parameterized SQL; for the in-memory evaluator: a reusable
    join order).  Execution results are cached per database epoch and
    binding set, so a warm :meth:`execute` on an unchanged database never
    touches the backend.  Obtained from :meth:`OBDASystem.prepare`.
    """

    #: Bound answer-cache size: epochs only move forward, so this only
    #: matters for workloads cycling through many distinct binding sets.
    MAX_CACHED_ANSWERS = 128

    def __init__(
        self,
        system: "OBDASystem",
        query: ConjunctiveQuery,
        rewriting: RewritingResult,
        backend: ExecutionBackend,
        plan: ExecutionPlan,
    ) -> None:
        self._system = system
        self._query = query
        self._rewriting = rewriting
        self._backend = backend
        self._plan = plan
        self._answers: dict[Hashable, frozenset[tuple]] = {}
        self._maintained: MaintainedAnswerSet | None = None
        self._hits = 0
        self._misses = 0

    # -- introspection -----------------------------------------------------

    @property
    def query(self) -> ConjunctiveQuery:
        """The ontological query this handle was prepared for."""
        return self._query

    @property
    def rewriting(self) -> RewritingResult:
        """The perfect UCQ rewriting the plan executes."""
        return self._rewriting

    @property
    def backend(self) -> ExecutionBackend:
        """The execution backend that compiled and runs the plan."""
        return self._backend

    @property
    def plan(self) -> ExecutionPlan:
        """The backend-compiled plan."""
        return self._plan

    @property
    def sql(self) -> str | None:
        """The SQL text the plan executes, for SQL-speaking backends."""
        return getattr(self._plan, "sql", None)

    def explain(self) -> str:
        """The cost-aware plan for the system's current database state.

        Delegates to :meth:`ExecutionPlan.explain`: chosen join order per
        disjunct, disjunct execution order and the estimated cardinalities
        behind both (``repro answer --explain`` prints this).
        """
        return self._plan.explain(self._system.database)

    @property
    def bindable_constants(self) -> frozenset[Constant]:
        """Query constants that :meth:`execute` may rebind.

        A constant is bindable when it does not occur in the theory's TGDs
        or negative constraints: the rewriting then treats it generically
        (it only ever unifies with variables), so substituting another
        value commutes with rewriting and the prepared plan stays exact.
        """
        return self._query.constants - self._system.theory_constants

    # -- execution ---------------------------------------------------------

    def execute(
        self, bindings: Mapping[object, object] | None = None
    ) -> AnswerSet:
        """Certain answers over the system's current database.

        *bindings* maps bindable constants (as :class:`Constant` or raw
        values) to replacement values — the prepared-statement parameter
        binding of the serving API.  Answers are cached under the
        database's epoch and the binding set; an unchanged database is
        served without executing the plan.
        """
        normalized = self._normalize_bindings(bindings)
        key = (
            self._backend.data_epoch(self._system.database),
            frozenset(normalized.items()) if normalized else None,
        )
        tuples = self._answers.get(key)
        if tuples is None:
            self._misses += 1
            tuples = self._plan.execute(self._system.database, normalized)
            while len(self._answers) >= self.MAX_CACHED_ANSWERS:
                self._answers.pop(next(iter(self._answers)))
            self._answers[key] = tuples
        else:
            self._hits += 1
        return AnswerSet(query=self._query, rewriting=self._rewriting, tuples=tuples)

    def _normalize_bindings(
        self, bindings: Mapping[object, object] | None
    ) -> dict[Constant, Constant] | None:
        if not bindings:
            return None
        theory_constants = self._system.theory_constants
        bindable = self.bindable_constants
        normalized: dict[Constant, Constant] = {}
        for key, value in bindings.items():
            constant = key if isinstance(key, Constant) else Constant(key)
            replacement = value if isinstance(value, Constant) else Constant(value)
            if constant not in bindable:
                raise ValueError(
                    f"{constant!r} is not a bindable constant of the prepared "
                    f"query (bindable: {sorted(map(repr, bindable))})"
                )
            if replacement in theory_constants:
                raise ValueError(
                    f"cannot bind {constant!r} to {replacement!r}: the value "
                    "occurs in the theory's rules, so the prepared rewriting "
                    "may not be exact for it — compile the bound query instead"
                )
            if replacement != constant:
                normalized[constant] = replacement
        return normalized or None

    # -- incremental maintenance -------------------------------------------

    def maintainer(self) -> "MaintainedAnswerSet":
        """The lazily created delta maintainer of this query's answer set.

        Shared by every subscription on this prepared handle; full
        (re-)executions run through the backend plan's per-disjunct path,
        incremental steps evaluate pinned residual joins over the
        instance.  Independent of the :meth:`execute` answer cache: the
        two paths cross-check each other in the differential tests.
        """
        if self._maintained is None:
            self._maintained = MaintainedAnswerSet(
                self._rewriting.ucq, plan=self._plan
            )
        return self._maintained

    def poll(self) -> "AnswerDelta":
        """Bring the maintained answer set up to the current epoch.

        Returns the :class:`~repro.incremental.maintain.AnswerDelta` since
        the previous poll (the first poll reports the full answer set as
        added).  Read the current set from :attr:`maintained_answers`.
        """
        return self.maintainer().refresh(self._system.database)

    @property
    def maintained_answers(self) -> frozenset[tuple]:
        """The combined maintained answer set as of the last :meth:`poll`."""
        return self.maintainer().tuples

    def invalidate(self) -> None:
        """Drop all cached answer sets (e.g. after out-of-band data changes).

        Also discards the maintainer's state, so the next :meth:`poll`
        recomputes from scratch instead of trusting the change log.
        """
        self._answers.clear()
        self._maintained = None

    def execution_cache_info(self) -> ExecutionCacheInfo:
        """Hit/miss counters of the per-epoch answer cache."""
        return ExecutionCacheInfo(
            hits=self._hits, misses=self._misses, size=len(self._answers)
        )


@dataclass(frozen=True)
class PreparedCacheInfo:
    """Counters of an :class:`OBDASystem`'s interned-:class:`PreparedQuery` table.

    ``hits`` counts :meth:`OBDASystem.prepare` calls served an existing
    handle, ``misses`` freshly built handles, ``evictions`` handles
    dropped by the ``max_prepared`` LRU bound (``None`` = unbounded).
    """

    hits: int
    misses: int
    evictions: int
    size: int
    max_prepared: int | None


@dataclass(frozen=True)
class RewritingCacheInfo:
    """Hit/miss counters of an :class:`OBDASystem`'s compilation caches.

    ``hits``/``misses``/``size`` describe the in-process layer (exact
    query objects); the ``persistent_*`` fields describe the optional
    disk-backed :class:`~repro.cache.store.RewritingStore` and stay zero
    when no store is attached.
    """

    hits: int
    misses: int
    size: int
    persistent_hits: int = 0
    persistent_misses: int = 0
    persistent_size: int = 0
    #: Store writes that failed (disk full, permissions) and degraded to
    #: memory-only serving instead of losing the finished compile.
    persistent_write_failures: int = 0


class OBDASystem:
    """Ontology-based data access over an in-memory relational database.

    Parameters
    ----------
    theory:
        The ontological theory (TGDs, NCs, KDs).
    database:
        The underlying instance; an empty one is created when omitted.
    use_elimination / use_nc_pruning:
        Engine optimisations (``TGD-rewrite*``); elimination is silently
        dropped for non-linear theories, where it is not available.
    cache:
        Optional persistent rewriting cache: a
        :class:`~repro.cache.store.RewritingStore`, or a directory path
        from which one is opened.  Compiled rewritings are persisted there
        and served back — across process restarts and to any other system
        whose theory fingerprint matches.
    backend:
        Default execution backend for :meth:`prepare` / :meth:`answer`: a
        registered name (``"memory"``, ``"sqlite"``) or a constructed
        :class:`~repro.backends.base.ExecutionBackend`.
    strategy:
        Scheduling strategy for the rewriting engine's frontier kernel: a
        registered name (``"sequential"``, ``"threaded"``, ``"chunked"``)
        or a constructed :class:`~repro.scheduling.SchedulingStrategy`.
        Every strategy computes byte-identical rewritings; non-sequential
        ones spread each frontier generation across threads or worker
        processes (intra-query parallelism).  Strategies created here from
        a name are closed by :meth:`close`.
    max_prepared:
        Optional LRU bound on the number of interned
        :class:`PreparedQuery` handles (mirroring the store's
        ``max_entries``): preparing beyond the bound evicts the least
        recently *prepared* handle from the intern table.  Evicted handles
        stay valid for the caller holding them — only the guarantee that
        ``prepare`` returns the same object again is bounded.
    rewriting_cache:
        Optional *shared* in-process compilation cache (a mutable mapping
        ``ConjunctiveQuery → RewritingResult``).  Passing the same mapping
        to several systems built over an equal theory makes a rewriting
        compiled through any of them instantly visible to all — the
        multi-tenant serving layer passes one dict per theory fingerprint,
        so structurally identical tenants share one compiled artifact set.
        Callers are responsible for only sharing a cache between systems
        whose :attr:`theory_fingerprint` agree.
    """

    def __init__(
        self,
        theory: OntologyTheory,
        database: RelationalInstance | None = None,
        use_elimination: bool = True,
        use_nc_pruning: bool = True,
        schema: RelationalSchema | None = None,
        cache: RewritingStore | str | os.PathLike | None = None,
        backend: str | ExecutionBackend = "memory",
        strategy: str | SchedulingStrategy | None = None,
        max_prepared: int | None = None,
        rewriting_cache: dict[ConjunctiveQuery, RewritingResult] | None = None,
    ) -> None:
        if max_prepared is not None and max_prepared < 1:
            raise ValueError(f"max_prepared must be >= 1, got {max_prepared}")
        self._theory = theory
        self._database = database if database is not None else RelationalInstance(schema=schema)
        self._schema = schema if schema is not None else self._database.schema
        use_elimination = use_elimination and theory.classification.linear
        self._use_elimination = use_elimination
        self._use_nc_pruning = use_nc_pruning
        self._owns_strategy = not isinstance(strategy, SchedulingStrategy)
        self._strategy = create_strategy(strategy)
        self._rewriter = TGDRewriter(
            theory,
            use_elimination=use_elimination,
            use_nc_pruning=use_nc_pruning,
            strategy=self._strategy,
        )
        self._last_batch_statistics: RewritingStatistics | None = None
        self._rewriting_cache: dict[ConjunctiveQuery, RewritingResult] = (
            rewriting_cache if rewriting_cache is not None else {}
        )
        self._cache_hits = 0
        self._cache_misses = 0
        self._store_write_failures = 0
        if cache is not None and not isinstance(cache, RewritingStore):
            cache = RewritingStore(cache)
        self._store: RewritingStore | None = cache
        self._fingerprint = theory_fingerprint(
            theory.tgds,
            theory.negative_constraints,
            use_elimination=use_elimination,
            use_nc_pruning=use_nc_pruning,
        )
        self._default_backend = backend
        self._backends: dict[str, ExecutionBackend] = {}
        self._prepared: OrderedDict[tuple[ConjunctiveQuery, int], PreparedQuery] = (
            OrderedDict()
        )
        self._max_prepared = max_prepared
        self._prepared_hits = 0
        self._prepared_misses = 0
        self._prepared_evictions = 0
        self._theory_constants: frozenset[Constant] | None = None
        self._nc_rewritings: tuple | None = None
        self._consistency_verdict: tuple[int, str | None] | None = None

    # -- data management ----------------------------------------------------------

    @property
    def theory(self) -> OntologyTheory:
        """The ontological theory (TBox)."""
        return self._theory

    @property
    def database(self) -> RelationalInstance:
        """The underlying database (ABox)."""
        return self._database

    def add_fact(self, relation_name: str, values: Sequence[object]) -> None:
        """Insert a tuple of Python values into the database."""
        self._database.add_tuple(relation_name, values)

    def add_facts(self, facts: Iterable[tuple[str, Sequence[object]]]) -> None:
        """Insert many ``(relation, values)`` tuples."""
        for relation_name, values in facts:
            self.add_fact(relation_name, values)

    # -- consistency ----------------------------------------------------------------

    def check_consistency(self) -> None:
        """Verify key dependencies and negative constraints (Section 4.2).

        Keys are checked directly on the database (they are separable from
        the TGDs when the non-conflicting criterion holds); negative
        constraints are checked as BCQs *after* rewriting them, so that
        constraint violations entailed through the TGDs are detected too.

        The NC rewritings are compiled once per system (the theory is
        immutable) and the verdict is cached per database epoch, so
        repeated consistency checks between mutations are free.
        """
        epoch = self._database.epoch
        if self._consistency_verdict is not None and self._consistency_verdict[0] == epoch:
            failure = self._consistency_verdict[1]
            if failure is not None:
                raise InconsistentTheoryError(failure)
            return
        failure = self._consistency_failure()
        self._consistency_verdict = (epoch, failure)
        if failure is not None:
            raise InconsistentTheoryError(failure)

    def _consistency_failure(self) -> str | None:
        """The first violated dependency's message, or ``None`` if consistent."""
        for key in self._theory.key_dependencies:
            if not self._database.satisfies_key(key):
                return f"key dependency violated: {key!r}"
        evaluator = QueryEvaluator(self._database)
        for constraint, rewriting in self._constraint_rewritings():
            if evaluator.entails_ucq(rewriting.ucq):
                return f"negative constraint violated: {constraint!r}"
        return None

    def _constraint_rewritings(self) -> tuple:
        """The negative constraints paired with their (cached) BCQ rewritings.

        Rewritten with a plain ``TGD-rewrite`` engine (no NC pruning — the
        constraints themselves are being checked) exactly once; every
        later :meth:`check_consistency` call reuses the compiled UCQs.
        """
        if self._nc_rewritings is None:
            rewriter = TGDRewriter(self._theory.tgds)
            self._nc_rewritings = tuple(
                (constraint, rewriter.rewrite(constraint.as_query()))
                for constraint in self._theory.negative_constraints
            )
        return self._nc_rewritings

    def is_consistent(self) -> bool:
        """``True`` iff the database is consistent with the theory."""
        try:
            self.check_consistency()
        except InconsistentTheoryError:
            return False
        return True

    # -- querying -------------------------------------------------------------------------

    @property
    def rewriting_store(self) -> RewritingStore | None:
        """The attached persistent rewriting store, if any."""
        return self._store

    @property
    def theory_fingerprint(self) -> str:
        """Fingerprint keying this system's entries in a persistent store.

        Covers the TGDs (modulo rule order and variable renaming), the
        negative constraints (when pruning is on), the resolved engine
        options and the engine version — everything a cached rewriting's
        content depends on (see :mod:`repro.cache.fingerprint`).
        """
        return self._fingerprint

    def compile(self, query: ConjunctiveQuery, checkpoint=None) -> RewritingResult:
        """Compile an ontological query into its perfect UCQ rewriting (cached).

        Served, in order, from the in-process cache (exact query), the
        persistent store when one is attached (any *variant* of the query
        under this theory's fingerprint), and finally the rewriting
        engine; a freshly computed rewriting is persisted before being
        returned.  The result's statistics record which persistent path
        was taken (``persistent_cache_hits`` / ``persistent_cache_misses``).

        *checkpoint* is an optional
        :class:`~repro.cache.checkpoint.FrontierCheckpoint` threaded
        through to the engine on a genuine miss, so a killed compilation
        can resume from its last completed generation (cache hits never
        touch it).
        """
        return self.compile_traced(query, checkpoint=checkpoint)[0]

    def compile_traced(
        self, query: ConjunctiveQuery, checkpoint=None
    ) -> tuple[RewritingResult, str]:
        """:meth:`compile` plus the serving layer that produced the result.

        The second element names the source: ``"memory"`` (in-process
        cache), ``"store"`` (persistent store) or ``"engine"`` (freshly
        rewritten).  The serving front end reports it per request and
        counts exactly one ``"engine"`` outcome per coalesced cold query.
        """
        served = self._serve_from_caches(query)
        if served is not None:
            return served
        result = self._rewriter.rewrite(query, checkpoint=checkpoint)
        return self._absorb_fresh_result(query, result), "engine"

    def _serve_from_caches(
        self, query: ConjunctiveQuery
    ) -> tuple[RewritingResult, str] | None:
        """Probe the serving layers in order: in-process dict, then store.

        Returns the served ``(result, source)`` — installed in the
        in-process cache, with its hit counters updated — or ``None`` on a
        genuine miss (the caller then owes the engine a run).  This is the
        *only* implementation of the serving order; the sequential
        :meth:`compile` and the parallel pre-scan of
        :func:`repro.parallel.compile_workloads` both go through it.
        """
        cached = self._rewriting_cache.get(query)
        if cached is not None:
            self._cache_hits += 1
            return cached, "memory"
        self._cache_misses += 1
        if self._store is not None:
            result = self._store.get(
                query, self._fingerprint, rules=self._rewriter.rules
            )
            if result is not None:
                result.statistics.persistent_cache_hits += 1
                self._rewriting_cache[query] = result
                return result, "store"
        return None

    def _absorb_fresh_result(
        self, query: ConjunctiveQuery, result: RewritingResult
    ) -> RewritingResult:
        """Persist an engine-computed rewriting and install it in the caches.

        Persisting happens before the miss is marked, so the stored
        statistics describe the engine run only and a future warm hit
        reports ``hits=1, misses=0``.  When ``put`` refuses because a
        variant entry already exists (a variant compiled earlier in a
        parallel batch — or by another process — landed first), the
        stored round-trip result is served instead, exactly as a
        sequential probe arriving after that write would have been.
        """
        if self._store is not None:
            try:
                persisted = self._store.put(query, self._fingerprint, result)
            except OSError as error:
                # A full or read-only disk must not lose a finished
                # compile: serve from memory and keep going.
                logger.warning(
                    "rewriting store write failed (%s); serving from memory", error
                )
                self._store_write_failures += 1
                persisted = True
            if persisted:
                result.statistics.persistent_cache_misses += 1
            else:
                stored = self._store.get(
                    query, self._fingerprint, rules=self._rewriter.rules
                )
                if stored is not None:
                    stored.statistics.persistent_cache_hits += 1
                    result = stored
                else:
                    # Uncacheable query (non-scalar constants): compiled
                    # but never persisted.
                    result.statistics.persistent_cache_misses += 1
        self._rewriting_cache[query] = result
        return result

    def _engine_specification(self) -> tuple:
        """What a worker process needs to rebuild this system's engine.

        The theory plus the *resolved* engine options — pickled once per
        worker by :func:`repro.parallel.compile_workloads`.  A worker
        engine built from this specification computes byte-identical
        rewritings to :attr:`_rewriter` (the engine is deterministic).
        """
        return (self._theory, self._use_elimination, self._use_nc_pruning)

    def compile_many(
        self,
        queries: Iterable[ConjunctiveQuery],
        workers: int | None = None,
        strategy: str | SchedulingStrategy | None = None,
        checkpoint_dir: "str | os.PathLike | None" = None,
        checkpoint_every: int = 1,
    ) -> list[RewritingResult]:
        """Compile a batch of queries through the shared cache layers.

        All queries go through the shared cache layers and one persistent
        store, so a warm store turns a whole workload run into a sequence
        of lookups.  Results are returned in input order (duplicated or
        variant inputs each get their — shared — result).

        ``workers`` controls cold-compile parallelism: ``None`` (default)
        uses one worker process per CPU, ``workers=1`` keeps the
        sequential in-process path.  ``strategy`` selects *intra-query*
        parallelism for the cold path — each slow query's frontier
        generations are split across the pool instead of one query per
        task; when omitted, the intra-query mode kicks in automatically
        when a single cold query meets a multi-worker pool (see
        :func:`repro.parallel.compile_workloads`).  Cache probes and
        store writes always happen in the parent, in input order, so the
        stored bytes — and the pinned Table 1 sizes — are identical
        under every worker count and strategy.  After the call,
        :attr:`last_batch_statistics` holds the merged per-workload
        totals.

        ``checkpoint_dir`` makes the batch resumable: each cold query
        runs under its own frontier checkpoint (saved every
        ``checkpoint_every`` generations) and a
        :class:`~repro.cache.checkpoint.BatchCheckpoint` manifest tracks
        which members completed, so a killed batch rerun redoes only the
        interrupted member's remaining generations (completed members are
        served from the caches or the persistent store).  Checkpointed
        batches run member-by-member in the parent process — *strategy*
        still applies intra-query, but *workers* does not fan members out.
        """
        from .parallel import compile_workloads, resolve_workers

        queries = list(queries)
        if checkpoint_dir is not None and queries:
            return self._compile_many_checkpointed(
                queries, strategy, checkpoint_dir, checkpoint_every
            )
        if (resolve_workers(workers) == 1 and strategy is None) or not queries:
            results = [self.compile(query) for query in queries]
            self._record_batch_statistics(results)
            return results
        return compile_workloads([(self, queries)], workers=workers, strategy=strategy)[0]

    def _compile_many_checkpointed(
        self,
        queries: "list[ConjunctiveQuery]",
        strategy: "str | SchedulingStrategy | None",
        checkpoint_dir: "str | os.PathLike",
        checkpoint_every: int,
    ) -> list[RewritingResult]:
        """The resumable member-by-member path of :meth:`compile_many`."""
        from .cache.checkpoint import BatchCheckpoint

        batch = BatchCheckpoint(checkpoint_dir, every=checkpoint_every)
        batch.begin(self._fingerprint, queries)
        run_strategy = create_strategy(strategy) if strategy is not None else None
        results = []
        try:
            for query in queries:
                served = self._serve_from_caches(query)
                if served is not None:
                    results.append(served[0])
                    batch.mark_completed(query)
                    continue
                checkpoint = batch.checkpoint_for(query)
                if run_strategy is not None:
                    result = self._rewriter.rewrite(
                        query, strategy=run_strategy, checkpoint=checkpoint
                    )
                else:
                    result = self._rewriter.rewrite(query, checkpoint=checkpoint)
                results.append(self._absorb_fresh_result(query, result))
                batch.mark_completed(
                    query, resumed_generation=checkpoint.resumed_generation
                )
        finally:
            if run_strategy is not None and not isinstance(
                strategy, SchedulingStrategy
            ):
                run_strategy.close()
        batch.finish()
        self._record_batch_statistics(results)
        return results

    def _record_batch_statistics(self, results: Sequence[RewritingResult]) -> None:
        """Fold a batch's per-result statistics into merged workload totals.

        Shared results (duplicated inputs) count once; used by both the
        sequential loop and :func:`repro.parallel.compile_workloads`.
        """
        unique = {id(result): result.statistics for result in results}
        self._last_batch_statistics = RewritingStatistics.merge_all(unique.values())

    @property
    def last_batch_statistics(self) -> RewritingStatistics | None:
        """Merged totals of the most recent :meth:`compile_many` batch.

        Each distinct result's counters summed with
        :meth:`RewritingStatistics.merge` — what ``repro compile --stats``
        prints as per-workload totals.  ``None`` before any batch ran.
        """
        return self._last_batch_statistics

    def rewriting_cache_info(self) -> RewritingCacheInfo:
        """Hit/miss counters of the in-process and persistent caches."""
        store = self._store
        return RewritingCacheInfo(
            hits=self._cache_hits,
            misses=self._cache_misses,
            size=len(self._rewriting_cache),
            persistent_hits=store.statistics.hits if store is not None else 0,
            persistent_misses=store.statistics.misses if store is not None else 0,
            persistent_size=len(store) if store is not None else 0,
            persistent_write_failures=self._store_write_failures,
        )

    def rewriting_statistics(self, query: ConjunctiveQuery) -> RewritingStatistics:
        """The :class:`RewritingStatistics` of *query*'s (cached) compilation.

        Exposes the canonical-interning and rule-index counters of the
        underlying :class:`TGDRewriter` run — how many variant lookups hit,
        how many were proven by key equality alone, and how many TGDs the
        head-predicate index kept off the hot path.
        """
        return self.compile(query).statistics

    # -- the prepare/execute serving lifecycle ---------------------------------

    @property
    def theory_constants(self) -> frozenset[Constant]:
        """Constants occurring in the theory's TGDs or negative constraints.

        A prepared query may only rebind constants outside this set (and
        only to values outside it): for such constants the rewriting is
        generic, so rebinding commutes with compilation.
        """
        if self._theory_constants is None:
            constants: set[Constant] = set()
            for rule in self._theory.tgds:
                constants.update(rule.constants)
            for constraint in self._theory.negative_constraints:
                for atom in constraint.body:
                    constants.update(atom.constants())
            self._theory_constants = frozenset(constants)
        return self._theory_constants

    def backend_for(self, backend: str | ExecutionBackend | None = None) -> ExecutionBackend:
        """Resolve a backend request to a (shared) instance.

        ``None`` resolves the system's default; names resolve to one
        shared instance per name, created on first use and reused by every
        prepared query, so e.g. one SQLite snapshot serves all of them.
        Constructed backends are returned as given.
        """
        if backend is None:
            backend = self._default_backend
        if isinstance(backend, ExecutionBackend):
            return backend
        resolved = self._backends.get(backend)
        if resolved is None:
            resolved = create_backend(backend)
            self._backends[backend] = resolved
        return resolved

    def prepare(
        self,
        query: ConjunctiveQuery,
        backend: str | ExecutionBackend | None = None,
    ) -> PreparedQuery:
        """Compile *query* and plan it on an execution backend.

        The serving entry point: the rewriting is served through the
        compilation cache layers, the backend compiles it into a reusable
        plan (SQL statement, join order), and the returned
        :class:`PreparedQuery` caches its answer sets per database epoch.
        Preparing the same query on the same backend returns the same
        handle — up to the optional ``max_prepared`` LRU bound, beyond
        which the least recently prepared handles are evicted from the
        intern table (an evicted handle keeps working for whoever holds
        it; re-preparing simply builds a fresh one, served by the
        compilation caches).
        """
        resolved = self.backend_for(backend)
        key = (query, id(resolved))
        prepared = self._prepared.get(key)
        if prepared is None:
            self._prepared_misses += 1
            rewriting = self.compile(query)
            plan = resolved.prepare(rewriting.ucq, schema=self._schema)
            prepared = PreparedQuery(self, query, rewriting, resolved, plan)
            self._prepared[key] = prepared
            if self._max_prepared is not None:
                while len(self._prepared) > self._max_prepared:
                    self._prepared.popitem(last=False)
                    self._prepared_evictions += 1
        else:
            self._prepared_hits += 1
            self._prepared.move_to_end(key)
        return prepared

    def prepare_many(
        self,
        queries: Iterable[ConjunctiveQuery],
        backend: str | ExecutionBackend | None = None,
        workers: int | None = None,
    ) -> list[PreparedQuery]:
        """Prepare a batch of queries, sharing one backend snapshot per epoch.

        The batch analogue of :meth:`prepare`, mirroring how
        :meth:`compile_many` batches compilation: the backend is resolved
        **once** (so every returned handle shares the same instance — one
        SQLite snapshot per database epoch serves them all), the
        rewritings are compiled through :meth:`compile_many` (optionally
        fanning cold misses out to *workers* processes), and each query is
        then planned on the shared backend.  Results come back in input
        order; duplicated inputs share one handle.
        """
        queries = list(queries)
        resolved = self.backend_for(backend)
        self.compile_many(queries, workers=workers)
        return [self.prepare(query, backend=resolved) for query in queries]

    def invalidate_answers(self) -> int:
        """Drop every interned prepared query's cached answer sets.

        The serving tier's out-of-band invalidation hook (e.g. after bulk
        data changes applied behind the backends' epoch signal).  Returns
        the number of prepared handles cleared; their plans stay valid —
        only the per-epoch answer caches are emptied.
        """
        for prepared in self._prepared.values():
            prepared.invalidate()
        return len(self._prepared)

    def prepared_cache_info(self) -> PreparedCacheInfo:
        """Hit/miss/eviction counters of the interned prepared-query table."""
        return PreparedCacheInfo(
            hits=self._prepared_hits,
            misses=self._prepared_misses,
            evictions=self._prepared_evictions,
            size=len(self._prepared),
            max_prepared=self._max_prepared,
        )

    def answer(
        self,
        query: ConjunctiveQuery,
        backend: str | ExecutionBackend | None = None,
    ) -> AnswerSet:
        """Certain answers of *query* over the ontology and the database.

        Convenience shim over the prepare/execute lifecycle (kept for
        backward compatibility; new code that answers a query more than
        once should hold on to :meth:`prepare`'s handle).  Equivalent to
        ``self.prepare(query, backend).execute()`` — including the answer
        cache, since the prepared handle is shared.
        """
        return self.prepare(query, backend=backend).execute()

    @property
    def scheduling_strategy(self) -> SchedulingStrategy:
        """The frontier-kernel scheduling strategy compilation runs under."""
        return self._strategy

    def close(self) -> None:
        """Release the backends created by this system (connections etc.)."""
        for backend in self._backends.values():
            backend.close()
        self._backends.clear()
        self._prepared.clear()
        if self._owns_strategy:
            self._strategy.close()

    def __enter__(self) -> "OBDASystem":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def answer_via_chase(
        self, query: ConjunctiveQuery, max_depth: int | None = 8
    ) -> frozenset[tuple]:
        """Reference answers computed by materialising the chase (test oracle)."""
        return chase_certain_answers(
            query, self._database.facts, list(self._rewriter.rules), max_depth=max_depth
        )

    def to_sql(self, query: ConjunctiveQuery) -> str:
        """The SQL form of the perfect rewriting of *query*."""
        rewriting = self.compile(query)
        return ucq_to_sql(rewriting.ucq, schema=self._schema)
