"""High-level OBDA facade.

:class:`OBDASystem` wires the pieces of the library into the workflow that
the paper motivates (Section 1): an ontology (TGDs + NCs + KDs) sits on top
of a relational database; conjunctive queries posed against the ontology are
*compiled* into UCQ rewritings (optionally optimised with query elimination)
and then executed directly on the database — or exported as SQL for an
external RDBMS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from .chase.chase import certain_answers as chase_certain_answers
from .core.rewriter import RewritingResult, RewritingStatistics, TGDRewriter
from .database.evaluator import QueryEvaluator
from .database.instance import RelationalInstance
from .database.schema import RelationalSchema
from .database.sql import ucq_to_sql
from .dependencies.theory import OntologyTheory
from .queries.conjunctive_query import ConjunctiveQuery


class InconsistentTheoryError(RuntimeError):
    """Raised when the database violates a negative constraint or key dependency."""


@dataclass
class AnswerSet:
    """Answers of an ontological query, with the rewriting that produced them."""

    query: ConjunctiveQuery
    rewriting: RewritingResult
    tuples: frozenset[tuple]

    def __iter__(self):
        return iter(self.tuples)

    def __len__(self) -> int:
        return len(self.tuples)

    def __contains__(self, item) -> bool:
        return tuple(item) in self.tuples


@dataclass(frozen=True)
class RewritingCacheInfo:
    """Hit/miss counters of an :class:`OBDASystem`'s compilation cache."""

    hits: int
    misses: int
    size: int


class OBDASystem:
    """Ontology-based data access over an in-memory relational database."""

    def __init__(
        self,
        theory: OntologyTheory,
        database: RelationalInstance | None = None,
        use_elimination: bool = True,
        use_nc_pruning: bool = True,
        schema: RelationalSchema | None = None,
    ) -> None:
        self._theory = theory
        self._database = database if database is not None else RelationalInstance(schema=schema)
        self._schema = schema if schema is not None else self._database.schema
        use_elimination = use_elimination and theory.classification.linear
        self._rewriter = TGDRewriter(
            theory,
            use_elimination=use_elimination,
            use_nc_pruning=use_nc_pruning,
        )
        self._rewriting_cache: dict[ConjunctiveQuery, RewritingResult] = {}
        self._cache_hits = 0
        self._cache_misses = 0

    # -- data management ----------------------------------------------------------

    @property
    def theory(self) -> OntologyTheory:
        """The ontological theory (TBox)."""
        return self._theory

    @property
    def database(self) -> RelationalInstance:
        """The underlying database (ABox)."""
        return self._database

    def add_fact(self, relation_name: str, values: Sequence[object]) -> None:
        """Insert a tuple of Python values into the database."""
        self._database.add_tuple(relation_name, values)

    def add_facts(self, facts: Iterable[tuple[str, Sequence[object]]]) -> None:
        """Insert many ``(relation, values)`` tuples."""
        for relation_name, values in facts:
            self.add_fact(relation_name, values)

    # -- consistency ----------------------------------------------------------------

    def check_consistency(self) -> None:
        """Verify key dependencies and negative constraints (Section 4.2).

        Keys are checked directly on the database (they are separable from
        the TGDs when the non-conflicting criterion holds); negative
        constraints are checked as BCQs *after* rewriting them, so that
        constraint violations entailed through the TGDs are detected too.
        """
        for key in self._theory.key_dependencies:
            if not self._database.satisfies_key(key):
                raise InconsistentTheoryError(f"key dependency violated: {key!r}")
        evaluator = QueryEvaluator(self._database)
        plain_rewriter = TGDRewriter(self._theory.tgds)
        for constraint in self._theory.negative_constraints:
            rewriting = plain_rewriter.rewrite(constraint.as_query())
            if evaluator.entails_ucq(rewriting.ucq):
                raise InconsistentTheoryError(
                    f"negative constraint violated: {constraint!r}"
                )

    def is_consistent(self) -> bool:
        """``True`` iff the database is consistent with the theory."""
        try:
            self.check_consistency()
        except InconsistentTheoryError:
            return False
        return True

    # -- querying -------------------------------------------------------------------------

    def compile(self, query: ConjunctiveQuery) -> RewritingResult:
        """Compile an ontological query into its perfect UCQ rewriting (cached)."""
        cached = self._rewriting_cache.get(query)
        if cached is None:
            self._cache_misses += 1
            cached = self._rewriter.rewrite(query)
            self._rewriting_cache[query] = cached
        else:
            self._cache_hits += 1
        return cached

    def rewriting_cache_info(self) -> RewritingCacheInfo:
        """Hit/miss counters of the compilation cache."""
        return RewritingCacheInfo(
            hits=self._cache_hits,
            misses=self._cache_misses,
            size=len(self._rewriting_cache),
        )

    def rewriting_statistics(self, query: ConjunctiveQuery) -> RewritingStatistics:
        """The :class:`RewritingStatistics` of *query*'s (cached) compilation.

        Exposes the canonical-interning and rule-index counters of the
        underlying :class:`TGDRewriter` run — how many variant lookups hit,
        how many were proven by key equality alone, and how many TGDs the
        head-predicate index kept off the hot path.
        """
        return self.compile(query).statistics

    def answer(self, query: ConjunctiveQuery) -> AnswerSet:
        """Certain answers of *query* over the ontology and the database."""
        rewriting = self.compile(query)
        evaluator = QueryEvaluator(self._database)
        tuples = evaluator.evaluate_ucq(rewriting.ucq)
        return AnswerSet(query=query, rewriting=rewriting, tuples=tuples)

    def answer_via_chase(
        self, query: ConjunctiveQuery, max_depth: int | None = 8
    ) -> frozenset[tuple]:
        """Reference answers computed by materialising the chase (test oracle)."""
        return chase_certain_answers(
            query, self._database.facts, list(self._rewriter.rules), max_depth=max_depth
        )

    def to_sql(self, query: ConjunctiveQuery) -> str:
        """The SQL form of the perfect rewriting of *query*."""
        rewriting = self.compile(query)
        return ucq_to_sql(rewriting.ucq, schema=self._schema)
