"""High-level OBDA facade.

:class:`OBDASystem` wires the pieces of the library into the workflow that
the paper motivates (Section 1): an ontology (TGDs + NCs + KDs) sits on top
of a relational database; conjunctive queries posed against the ontology are
*compiled* into UCQ rewritings (optionally optimised with query elimination)
and then executed directly on the database — or exported as SQL for an
external RDBMS.

Compilation is served through three cache layers, checked in order:

1. an in-process dict keyed by the exact query object (``compile`` called
   twice returns the same result instance);
2. the optional **persistent store** (``cache=`` argument): a
   :class:`repro.cache.store.RewritingStore` keyed by ``(canonical query
   key, theory fingerprint)`` that survives process restarts and is shared
   by every system compiled against an equal theory;
3. the rewriting engine itself, whose rename-apart and applicability memos
   persist across queries, so a whole workload compiled through
   :meth:`OBDASystem.compile_many` shares the interning, memo and
   persistent layers in one pass.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterable, Sequence

from .cache.fingerprint import theory_fingerprint
from .cache.store import RewritingStore
from .chase.chase import certain_answers as chase_certain_answers
from .core.rewriter import RewritingResult, RewritingStatistics, TGDRewriter
from .database.evaluator import QueryEvaluator
from .database.instance import RelationalInstance
from .database.schema import RelationalSchema
from .database.sql import ucq_to_sql
from .dependencies.theory import OntologyTheory
from .queries.conjunctive_query import ConjunctiveQuery


class InconsistentTheoryError(RuntimeError):
    """Raised when the database violates a negative constraint or key dependency."""


@dataclass
class AnswerSet:
    """Answers of an ontological query, with the rewriting that produced them."""

    query: ConjunctiveQuery
    rewriting: RewritingResult
    tuples: frozenset[tuple]

    def __iter__(self):
        return iter(self.tuples)

    def __len__(self) -> int:
        return len(self.tuples)

    def __contains__(self, item) -> bool:
        return tuple(item) in self.tuples


@dataclass(frozen=True)
class RewritingCacheInfo:
    """Hit/miss counters of an :class:`OBDASystem`'s compilation caches.

    ``hits``/``misses``/``size`` describe the in-process layer (exact
    query objects); the ``persistent_*`` fields describe the optional
    disk-backed :class:`~repro.cache.store.RewritingStore` and stay zero
    when no store is attached.
    """

    hits: int
    misses: int
    size: int
    persistent_hits: int = 0
    persistent_misses: int = 0
    persistent_size: int = 0


class OBDASystem:
    """Ontology-based data access over an in-memory relational database.

    Parameters
    ----------
    theory:
        The ontological theory (TGDs, NCs, KDs).
    database:
        The underlying instance; an empty one is created when omitted.
    use_elimination / use_nc_pruning:
        Engine optimisations (``TGD-rewrite*``); elimination is silently
        dropped for non-linear theories, where it is not available.
    cache:
        Optional persistent rewriting cache: a
        :class:`~repro.cache.store.RewritingStore`, or a directory path
        from which one is opened.  Compiled rewritings are persisted there
        and served back — across process restarts and to any other system
        whose theory fingerprint matches.
    """

    def __init__(
        self,
        theory: OntologyTheory,
        database: RelationalInstance | None = None,
        use_elimination: bool = True,
        use_nc_pruning: bool = True,
        schema: RelationalSchema | None = None,
        cache: RewritingStore | str | os.PathLike | None = None,
    ) -> None:
        self._theory = theory
        self._database = database if database is not None else RelationalInstance(schema=schema)
        self._schema = schema if schema is not None else self._database.schema
        use_elimination = use_elimination and theory.classification.linear
        self._use_elimination = use_elimination
        self._use_nc_pruning = use_nc_pruning
        self._rewriter = TGDRewriter(
            theory,
            use_elimination=use_elimination,
            use_nc_pruning=use_nc_pruning,
        )
        self._last_batch_statistics: RewritingStatistics | None = None
        self._rewriting_cache: dict[ConjunctiveQuery, RewritingResult] = {}
        self._cache_hits = 0
        self._cache_misses = 0
        if cache is not None and not isinstance(cache, RewritingStore):
            cache = RewritingStore(cache)
        self._store: RewritingStore | None = cache
        self._fingerprint = theory_fingerprint(
            theory.tgds,
            theory.negative_constraints,
            use_elimination=use_elimination,
            use_nc_pruning=use_nc_pruning,
        )

    # -- data management ----------------------------------------------------------

    @property
    def theory(self) -> OntologyTheory:
        """The ontological theory (TBox)."""
        return self._theory

    @property
    def database(self) -> RelationalInstance:
        """The underlying database (ABox)."""
        return self._database

    def add_fact(self, relation_name: str, values: Sequence[object]) -> None:
        """Insert a tuple of Python values into the database."""
        self._database.add_tuple(relation_name, values)

    def add_facts(self, facts: Iterable[tuple[str, Sequence[object]]]) -> None:
        """Insert many ``(relation, values)`` tuples."""
        for relation_name, values in facts:
            self.add_fact(relation_name, values)

    # -- consistency ----------------------------------------------------------------

    def check_consistency(self) -> None:
        """Verify key dependencies and negative constraints (Section 4.2).

        Keys are checked directly on the database (they are separable from
        the TGDs when the non-conflicting criterion holds); negative
        constraints are checked as BCQs *after* rewriting them, so that
        constraint violations entailed through the TGDs are detected too.
        """
        for key in self._theory.key_dependencies:
            if not self._database.satisfies_key(key):
                raise InconsistentTheoryError(f"key dependency violated: {key!r}")
        evaluator = QueryEvaluator(self._database)
        plain_rewriter = TGDRewriter(self._theory.tgds)
        for constraint in self._theory.negative_constraints:
            rewriting = plain_rewriter.rewrite(constraint.as_query())
            if evaluator.entails_ucq(rewriting.ucq):
                raise InconsistentTheoryError(
                    f"negative constraint violated: {constraint!r}"
                )

    def is_consistent(self) -> bool:
        """``True`` iff the database is consistent with the theory."""
        try:
            self.check_consistency()
        except InconsistentTheoryError:
            return False
        return True

    # -- querying -------------------------------------------------------------------------

    @property
    def rewriting_store(self) -> RewritingStore | None:
        """The attached persistent rewriting store, if any."""
        return self._store

    @property
    def theory_fingerprint(self) -> str:
        """Fingerprint keying this system's entries in a persistent store.

        Covers the TGDs (modulo rule order and variable renaming), the
        negative constraints (when pruning is on), the resolved engine
        options and the engine version — everything a cached rewriting's
        content depends on (see :mod:`repro.cache.fingerprint`).
        """
        return self._fingerprint

    def compile(self, query: ConjunctiveQuery) -> RewritingResult:
        """Compile an ontological query into its perfect UCQ rewriting (cached).

        Served, in order, from the in-process cache (exact query), the
        persistent store when one is attached (any *variant* of the query
        under this theory's fingerprint), and finally the rewriting
        engine; a freshly computed rewriting is persisted before being
        returned.  The result's statistics record which persistent path
        was taken (``persistent_cache_hits`` / ``persistent_cache_misses``).
        """
        served = self._serve_from_caches(query)
        if served is not None:
            return served
        return self._absorb_fresh_result(query, self._rewriter.rewrite(query))

    def _serve_from_caches(self, query: ConjunctiveQuery) -> RewritingResult | None:
        """Probe the serving layers in order: in-process dict, then store.

        Returns the served result — installed in the in-process cache,
        with its hit counters updated — or ``None`` on a genuine miss
        (the caller then owes the engine a run).  This is the *only*
        implementation of the serving order; the sequential
        :meth:`compile` and the parallel pre-scan of
        :func:`repro.parallel.compile_workloads` both go through it.
        """
        cached = self._rewriting_cache.get(query)
        if cached is not None:
            self._cache_hits += 1
            return cached
        self._cache_misses += 1
        if self._store is not None:
            result = self._store.get(
                query, self._fingerprint, rules=self._rewriter.rules
            )
            if result is not None:
                result.statistics.persistent_cache_hits += 1
                self._rewriting_cache[query] = result
                return result
        return None

    def _absorb_fresh_result(
        self, query: ConjunctiveQuery, result: RewritingResult
    ) -> RewritingResult:
        """Persist an engine-computed rewriting and install it in the caches.

        Persisting happens before the miss is marked, so the stored
        statistics describe the engine run only and a future warm hit
        reports ``hits=1, misses=0``.  When ``put`` refuses because a
        variant entry already exists (a variant compiled earlier in a
        parallel batch — or by another process — landed first), the
        stored round-trip result is served instead, exactly as a
        sequential probe arriving after that write would have been.
        """
        if self._store is not None:
            if self._store.put(query, self._fingerprint, result):
                result.statistics.persistent_cache_misses += 1
            else:
                stored = self._store.get(
                    query, self._fingerprint, rules=self._rewriter.rules
                )
                if stored is not None:
                    stored.statistics.persistent_cache_hits += 1
                    result = stored
                else:
                    # Uncacheable query (non-scalar constants): compiled
                    # but never persisted.
                    result.statistics.persistent_cache_misses += 1
        self._rewriting_cache[query] = result
        return result

    def _engine_specification(self) -> tuple:
        """What a worker process needs to rebuild this system's engine.

        The theory plus the *resolved* engine options — pickled once per
        worker by :func:`repro.parallel.compile_workloads`.  A worker
        engine built from this specification computes byte-identical
        rewritings to :attr:`_rewriter` (the engine is deterministic).
        """
        return (self._theory, self._use_elimination, self._use_nc_pruning)

    def compile_many(
        self,
        queries: Iterable[ConjunctiveQuery],
        workers: int | None = None,
    ) -> list[RewritingResult]:
        """Compile a batch of queries through the shared cache layers.

        All queries go through the shared cache layers and one persistent
        store, so a warm store turns a whole workload run into a sequence
        of lookups.  Results are returned in input order (duplicated or
        variant inputs each get their — shared — result).

        ``workers`` controls cold-compile parallelism: ``None`` (default)
        uses one worker process per CPU, ``workers=1`` keeps today's
        sequential in-process path.  Cache probes and store writes always
        happen in the parent, in input order, so the stored bytes — and
        the pinned Table 1 sizes — are identical under every worker
        count; see :mod:`repro.parallel` for the partition/merge
        protocol.  After the call, :attr:`last_batch_statistics` holds
        the merged per-workload totals.
        """
        from .parallel import compile_workloads, resolve_workers

        queries = list(queries)
        if resolve_workers(workers) == 1 or len(queries) <= 1:
            results = [self.compile(query) for query in queries]
            self._record_batch_statistics(results)
            return results
        return compile_workloads([(self, queries)], workers=workers)[0]

    def _record_batch_statistics(self, results: Sequence[RewritingResult]) -> None:
        """Fold a batch's per-result statistics into merged workload totals.

        Shared results (duplicated inputs) count once; used by both the
        sequential loop and :func:`repro.parallel.compile_workloads`.
        """
        unique = {id(result): result.statistics for result in results}
        self._last_batch_statistics = RewritingStatistics.merge_all(unique.values())

    @property
    def last_batch_statistics(self) -> RewritingStatistics | None:
        """Merged totals of the most recent :meth:`compile_many` batch.

        Each distinct result's counters summed with
        :meth:`RewritingStatistics.merge` — what ``repro compile --stats``
        prints as per-workload totals.  ``None`` before any batch ran.
        """
        return self._last_batch_statistics

    def rewriting_cache_info(self) -> RewritingCacheInfo:
        """Hit/miss counters of the in-process and persistent caches."""
        store = self._store
        return RewritingCacheInfo(
            hits=self._cache_hits,
            misses=self._cache_misses,
            size=len(self._rewriting_cache),
            persistent_hits=store.statistics.hits if store is not None else 0,
            persistent_misses=store.statistics.misses if store is not None else 0,
            persistent_size=len(store) if store is not None else 0,
        )

    def rewriting_statistics(self, query: ConjunctiveQuery) -> RewritingStatistics:
        """The :class:`RewritingStatistics` of *query*'s (cached) compilation.

        Exposes the canonical-interning and rule-index counters of the
        underlying :class:`TGDRewriter` run — how many variant lookups hit,
        how many were proven by key equality alone, and how many TGDs the
        head-predicate index kept off the hot path.
        """
        return self.compile(query).statistics

    def answer(self, query: ConjunctiveQuery) -> AnswerSet:
        """Certain answers of *query* over the ontology and the database."""
        rewriting = self.compile(query)
        evaluator = QueryEvaluator(self._database)
        tuples = evaluator.evaluate_ucq(rewriting.ucq)
        return AnswerSet(query=query, rewriting=rewriting, tuples=tuples)

    def answer_via_chase(
        self, query: ConjunctiveQuery, max_depth: int | None = 8
    ) -> frozenset[tuple]:
        """Reference answers computed by materialising the chase (test oracle)."""
        return chase_certain_answers(
            query, self._database.facts, list(self._rewriter.rules), max_depth=max_depth
        )

    def to_sql(self, query: ConjunctiveQuery) -> str:
        """The SQL form of the perfect rewriting of *query*."""
        rewriting = self.compile(query)
        return ucq_to_sql(rewriting.ucq, schema=self._schema)
