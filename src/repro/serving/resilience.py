"""The serving tier's resilience layer: deadlines, shedding, breakers.

PR 7 gave the serving tier a front door; this module gives it a notion
of **time and overload**.  Everything here leans on the one property the
engine has had since PR 3: rewriting is a *pure, restartable* function
of ``(rules, options, query)``, checkpointable at generation boundaries
(PR 5).  Abandoning, shedding or interrupting a compile therefore never
corrupts anything — the next request simply resumes from the last
completed generation — which is what makes aggressive fail-fast
behaviour safe to deploy:

* :class:`Deadline` / :class:`CancelScope` — per-request time budgets
  (``compile_timeout`` / ``answer_timeout``, overridable per request via
  an ``X-Deadline-Ms`` header).  The event loop enforces them with
  ``asyncio.wait_for``; the engine observes them *cooperatively* through
  :class:`InterruptibleStrategy`, which checks the scope between frontier
  generations and raises :class:`CompileInterrupted` — after the kernel
  has already persisted the checkpoint of the last completed generation,
  so a 504 leaves a resumable compile behind, not a wasted one.
* :class:`CompileGate` — admission control for the cold path: a global
  in-flight-compile bound plus a bounded per-tenant compile queue.  When
  full, cold requests are shed with 503 + ``Retry-After`` *before* they
  consume an executor slot; warm requests never pass through the gate at
  all, extending PR 7's no-starvation guarantee from "one wedged
  compile" to "an overloaded service".
* :class:`CircuitBreaker` — per compile digest.  A query whose compile
  fails deterministically would otherwise be retried by every client
  forever, each retry burning a full engine run; after
  ``breaker_threshold`` consecutive failures the breaker opens and
  converts the retry storm into instant 503s with exponential backoff
  (seeded jitter, so tests are reproducible).  A half-open probe re-tests
  the compile once per backoff window; success closes the breaker.

:class:`ResilienceConfig` carries the knobs (mirrored by ``repro serve``
flags); :class:`ServingApp` owns one gate and one breaker table and
threads scopes into :meth:`SharedArtifacts.compile_blocking`.  See
``docs/SERVING.md`` (semantics) and ``docs/OPERATIONS.md`` (tuning).
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field

from ..scheduling import SchedulingStrategy


class CompileInterrupted(RuntimeError):
    """A compile was cooperatively aborted between frontier generations.

    Raised on the compile executor thread by
    :class:`InterruptibleStrategy` when the request's
    :class:`CancelScope` expires (deadline passed or explicitly
    cancelled).  By construction the kernel has already checkpointed the
    last *completed* generation, so the work is resumable, not lost.
    """


@dataclass(frozen=True)
class ResilienceConfig:
    """The serving tier's resilience knobs (see ``docs/OPERATIONS.md``).

    ``None`` timeouts disable the respective deadline.  The defaults are
    deliberately generous — they exist to bound pathology, not to tune
    latency; ``repro serve`` exposes each as a flag and requests can
    tighten (never widen) the budget with an ``X-Deadline-Ms`` header.
    """

    #: Budget for one compile, warm-probe to artifact, in seconds.
    compile_timeout: float | None = 30.0
    #: Budget for one plan execution on the tenant backend, in seconds.
    answer_timeout: float | None = 10.0
    #: Global bound on concurrently *running* compile flights.
    max_inflight_compiles: int = 8
    #: Bound on cold requests queued (leader + joiners) per tenant.
    #: Joiners are cheap (one shielded await each), so the default sits
    #: well above the thundering-herd sizes coalescing is built for.
    queue_depth: int = 256
    #: Consecutive compile failures per digest before the breaker opens.
    breaker_threshold: int = 3
    #: First open interval in seconds; doubles per consecutive trip.
    breaker_base_delay: float = 0.5
    #: Cap on the open interval.
    breaker_max_delay: float = 30.0
    #: Seed of the breaker's jitter stream (reproducible backoff).
    breaker_seed: int = 0
    #: ``Retry-After`` hint (seconds) attached to shed (503) responses.
    shed_retry_after: float = 1.0


class Deadline:
    """A monotonic-clock budget for one request.

    Built once at request entry from the config defaults and the optional
    ``X-Deadline-Ms`` header (the header *caps* the per-phase budgets, it
    never extends them).  ``None`` means unbounded.
    """

    def __init__(self, seconds: float | None) -> None:
        self._expires = (
            time.monotonic() + seconds if seconds is not None else None
        )

    @classmethod
    def from_header(cls, headers: dict | None) -> "Deadline":
        """The request-wide deadline encoded in ``X-Deadline-Ms``, if any.

        Unreadable or non-positive values are ignored (the request simply
        runs under the configured per-phase budgets alone).
        """
        raw = (headers or {}).get("x-deadline-ms")
        if raw is None:
            return cls(None)
        try:
            milliseconds = float(raw)
        except (TypeError, ValueError):
            return cls(None)
        if milliseconds <= 0:
            return cls(None)
        return cls(milliseconds / 1000.0)

    @property
    def expires(self) -> float | None:
        """Monotonic timestamp the budget runs out at (``None`` = never)."""
        return self._expires

    def remaining(self) -> float | None:
        """Seconds left, ``None`` when unbounded (may be <= 0 when spent)."""
        if self._expires is None:
            return None
        return self._expires - time.monotonic()

    def phase_budget(self, phase_timeout: float | None) -> float | None:
        """The effective budget of one phase: min(phase, remaining).

        Returns ``None`` when both the phase timeout and the request
        deadline are unbounded.
        """
        remaining = self.remaining()
        if remaining is None:
            return phase_timeout
        if phase_timeout is None:
            return remaining
        return min(phase_timeout, remaining)


class CancelScope:
    """Cooperative cancellation signal shared between loop and executor.

    The event loop creates one per compile attempt (carrying the
    request's absolute deadline) and cancels it when ``wait_for`` times
    out or the app shuts down; the executor-side
    :class:`InterruptibleStrategy` polls :meth:`expired` between frontier
    generations.  Thread-safe by construction (an ``Event`` plus an
    immutable deadline).
    """

    def __init__(self, deadline: float | None = None) -> None:
        self._event = threading.Event()
        self._deadline = deadline

    def cancel(self) -> None:
        """Request the compile to stop at its next generation boundary."""
        self._event.set()

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` was called."""
        return self._event.is_set()

    def expired(self) -> bool:
        """Whether the compile must stop (cancelled or past deadline)."""
        if self._event.is_set():
            return True
        return self._deadline is not None and time.monotonic() >= self._deadline


class InterruptibleStrategy(SchedulingStrategy):
    """Wrap a scheduling strategy with cooperative cancellation.

    :class:`~repro.serving.tenants.SharedArtifacts` installs the active
    request's :class:`CancelScope` before each engine run (compiles per
    artifact set are serialised, so one slot suffices) and a master
    shutdown event for :meth:`ServingApp.aclose`.  The check runs
    *before* each generation is expanded — after the kernel checkpointed
    the previous one — so an interrupt loses at most the generation in
    flight.
    """

    name = "interruptible"

    def __init__(self, inner: SchedulingStrategy) -> None:
        self._inner = inner
        self.scope: CancelScope | None = None
        #: Optional chaos seam: a zero-argument callable invoked before
        #: each generation (installed per compile by the fault plan); it
        #: may sleep (stall) or raise (mid-compile kill).
        self.fault = None
        self._shutdown = threading.Event()

    @property
    def inner(self) -> SchedulingStrategy:
        """The wrapped strategy actually doing the expansion."""
        return self._inner

    def shutdown(self) -> None:
        """Abort any current and future runs (service shutdown)."""
        self._shutdown.set()

    def begin_run(self, engine, query, generation=0):
        self._inner.begin_run(engine, query, generation)

    def expand_generation(self, engine, batch):
        if self._shutdown.is_set():
            raise CompileInterrupted("serving tier is shutting down")
        scope = self.scope
        if scope is not None and scope.expired():
            raise CompileInterrupted(
                "compile deadline exceeded; progress is checkpointed and the "
                "next request for this query will resume it"
            )
        if self.fault is not None:
            self.fault()
        return self._inner.expand_generation(engine, batch)

    def close(self) -> None:
        self._inner.close()


class OverloadedError(Exception):
    """Admission control shed a cold request (mapped to HTTP 503).

    ``retry_after`` is the client hint in seconds; ``scope`` names which
    bound fired (``"global"`` or ``"tenant"``) for the structured body.
    """

    def __init__(self, message: str, retry_after: float, scope: str) -> None:
        super().__init__(message)
        self.retry_after = retry_after
        self.scope = scope


class CompileGate:
    """Load shedding for the cold path: bounded queues, never blocking.

    Only ever touched from the event loop, so plain counters suffice.  A
    cold request *admits* before joining/leading a flight and *releases*
    when its wait ends (success, failure or timeout alike).  Admission is
    non-blocking by design: a full queue answers 503 immediately — the
    restartable compile pipeline makes retrying cheap for the client,
    while queueing unboundedly would wedge the service for everyone.
    """

    def __init__(self, config: ResilienceConfig) -> None:
        self._config = config
        self._leading = 0
        self._per_tenant: dict[str, int] = {}
        self.shed_global = 0
        self.shed_tenant = 0

    @property
    def inflight(self) -> int:
        """Compile flights currently running (leaders only)."""
        return self._leading

    def queued(self, tenant: str) -> int:
        """Cold requests currently admitted for *tenant*."""
        return self._per_tenant.get(tenant, 0)

    def admit(self, tenant: str, leader: bool) -> None:
        """Admit one cold request or raise :class:`OverloadedError`.

        *leader* marks the request that will start a fresh flight: the
        global in-flight bound counts leaders only (a joiner rides an
        already-counted compile and costs one shielded await), while the
        per-tenant queue bound counts everyone waiting on a compile for
        the tenant.
        """
        config = self._config
        queued = self._per_tenant.get(tenant, 0)
        if queued >= config.queue_depth:
            self.shed_tenant += 1
            raise OverloadedError(
                f"tenant {tenant!r} has {queued} cold requests queued "
                f"(bound {config.queue_depth}); retry shortly",
                retry_after=config.shed_retry_after,
                scope="tenant",
            )
        if leader:
            if self._leading >= config.max_inflight_compiles:
                self.shed_global += 1
                raise OverloadedError(
                    f"{self._leading} compiles in flight "
                    f"(bound {config.max_inflight_compiles}); retry shortly",
                    retry_after=config.shed_retry_after,
                    scope="global",
                )
            self._leading += 1
        self._per_tenant[tenant] = queued + 1

    def release(self, tenant: str, leader: bool) -> None:
        """Return one admitted request's slot(s)."""
        if leader:
            self._leading = max(0, self._leading - 1)
        remaining = self._per_tenant.get(tenant, 0) - 1
        if remaining > 0:
            self._per_tenant[tenant] = remaining
        else:
            self._per_tenant.pop(tenant, None)

    def describe(self) -> dict:
        """The stats-endpoint view of the gate."""
        return {
            "inflight": self._leading,
            "shed_global": self.shed_global,
            "shed_tenant": self.shed_tenant,
            "max_inflight_compiles": self._config.max_inflight_compiles,
            "queue_depth": self._config.queue_depth,
        }


class CircuitOpenError(Exception):
    """The per-digest breaker is open (mapped to HTTP 503)."""

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after


@dataclass
class _BreakerState:
    """One digest's breaker: consecutive failures, trips, open-until."""

    failures: int = 0
    trips: int = 0
    open_until: float = 0.0
    probing: bool = False
    last_error: str | None = None


class CircuitBreaker:
    """Per compile digest failure memory with exponential backoff.

    Compiles are deterministic (PR 3), so a digest that failed N times in
    a row will keep failing until the theory or the code changes; the
    breaker spares the executor those doomed engine runs and answers
    open-circuit requests in microseconds.  After the backoff window one
    *probe* request is let through (half-open); its outcome closes or
    re-opens the circuit.  Interrupts and sheds are *not* failures — only
    genuine compile errors count.  Only touched from the event loop.
    """

    def __init__(self, config: ResilienceConfig) -> None:
        self._config = config
        self._states: dict[str, _BreakerState] = {}
        self._jitter = random.Random(config.breaker_seed)
        self.open_rejections = 0

    def check(self, digest: str) -> None:
        """Raise :class:`CircuitOpenError` when *digest*'s circuit is open.

        In the half-open window the first caller becomes the probe (the
        call returns normally); concurrent callers keep getting 503 until
        the probe's outcome is recorded.
        """
        state = self._states.get(digest)
        if state is None or state.trips == 0:
            return
        now = time.monotonic()
        if now < state.open_until:
            self.open_rejections += 1
            raise CircuitOpenError(
                f"compile circuit open for this query "
                f"({state.failures} consecutive failures; "
                f"last: {state.last_error})",
                retry_after=max(0.0, state.open_until - now),
            )
        if state.probing:
            self.open_rejections += 1
            raise CircuitOpenError(
                "compile circuit half-open; a probe is in flight",
                retry_after=self._config.breaker_base_delay,
            )
        state.probing = True

    def record_success(self, digest: str) -> None:
        """A compile for *digest* completed: close and forget the circuit."""
        self._states.pop(digest, None)

    def record_interrupt(self, digest: str) -> None:
        """A compile was interrupted (timeout/shutdown): inconclusive.

        Interrupts don't count as failures, but a half-open probe that
        got interrupted must surrender the probe slot or the circuit
        would stay half-open forever.
        """
        state = self._states.get(digest)
        if state is not None:
            state.probing = False

    def record_failure(self, digest: str, error: BaseException) -> None:
        """A compile for *digest* failed; trips the breaker past the threshold."""
        state = self._states.setdefault(digest, _BreakerState())
        state.probing = False
        state.failures += 1
        state.last_error = f"{type(error).__name__}: {error}"
        if state.failures < self._config.breaker_threshold and state.trips == 0:
            return
        state.trips += 1
        delay = min(
            self._config.breaker_base_delay * (2 ** (state.trips - 1)),
            self._config.breaker_max_delay,
        )
        delay *= 1.0 + 0.1 * self._jitter.random()
        state.open_until = time.monotonic() + delay

    def state(self, digest: str) -> str:
        """``closed`` / ``open`` / ``half-open`` for *digest* (diagnostics)."""
        breaker = self._states.get(digest)
        if breaker is None or breaker.trips == 0:
            return "closed"
        if time.monotonic() < breaker.open_until:
            return "open"
        return "half-open"

    def reset(self) -> None:
        """Forget every circuit (tests and chaos-phase boundaries)."""
        self._states.clear()

    def describe(self) -> dict:
        """The stats-endpoint view of the breaker table."""
        open_now = sum(
            1 for digest in self._states if self.state(digest) != "closed"
        )
        return {
            "tracked": len(self._states),
            "open": open_now,
            "rejections": self.open_rejections,
            "threshold": self._config.breaker_threshold,
        }
