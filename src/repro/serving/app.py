""":class:`ServingApp` — the transport-free serving application.

The app owns the endpoint contracts and nothing else: requests come in as
``(method, path, JSON payload)`` and leave as ``(status, JSON payload)``,
whether they arrived over a real socket (:mod:`repro.serving.http`) or
from an in-process test calling :meth:`ServingApp.request` directly.

Endpoints (full contracts in ``docs/SERVING.md``):

=======================  ====================================================
``POST /register-theory``  create a tenant from a workload name, a textual
                           DL-Lite TBox or JSON-encoded TGDs (+ facts)
``POST /prepare``          compile + plan a query for a tenant (warms it)
``POST /answer``           certain answers of a query over a tenant's data
``POST /data``             insert/remove facts (bumps the tenant's epoch)
``POST /invalidate``       drop a tenant's answer caches — or the tenant
``GET  /stats``            tenants, artifact sets, coalescing, store counters
``GET  /healthz``          liveness probe
=======================  ====================================================

Request lifecycle of ``/answer`` (the hot path):

1. parse the query (textual or tagged-JSON form);
2. **warm probe** — if the shared artifact set already holds the
   rewriting, skip straight to execution (never queued behind compiles);
3. **cold path** — coalesce onto the single-flight compile for the
   query's ``(canonical key, fingerprint)`` digest: one engine run per
   herd, run on the artifact set's dedicated executor thread;
4. execute on the tenant's executor: plan cache + epoch-keyed answer
   cache make a warm execute two dictionary probes.

Errors are structured and *classified*:
``{"error": {"code": ..., "message": ...}}`` with a meaningful HTTP
status and a machine-readable code — 400 malformed (``bad-request`` /
``bad-query`` / ...), 404 unknown tenant/endpoint, 405 wrong method,
409 duplicate tenant, 429 admission control, 500 ``compile-failed`` /
``internal``, 503 ``overloaded`` / ``circuit-open`` / ``backend-error``
(retryable, carrying ``retry_after``), 504 ``timeout`` (the compile's
progress is checkpointed; a retry resumes it).

The resilience layer (:mod:`repro.serving.resilience`, PR 8) threads
through every request: per-request deadlines (``compile_timeout`` /
``answer_timeout``, tightened per request by an ``X-Deadline-Ms``
header) enforced with ``asyncio.wait_for`` around the executor hops and
cooperatively inside the engine, cold-path admission control
(:class:`~repro.serving.resilience.CompileGate`), and a per-digest
:class:`~repro.serving.resilience.CircuitBreaker`.  Warm answers never
pass through the gate — overload sheds cold traffic only.
"""

from __future__ import annotations

import asyncio
import json
import re
import sqlite3
import time
from dataclasses import dataclass

from ..backends.base import BackendError
from ..cache.serialization import (
    atom_from_json,
    query_from_json,
    tgd_from_json,
)
from ..dependencies.constraints import NegativeConstraint
from ..dependencies.theory import OntologyTheory
from ..incremental.subscriptions import UnknownSubscriptionError
from ..logic.terms import Constant
from ..queries.conjunctive_query import ConjunctiveQuery
from ..queries.parser import QuerySyntaxError, parse_query
from .coalescing import SingleFlight
from .resilience import (
    CancelScope,
    CircuitBreaker,
    CircuitOpenError,
    CompileGate,
    CompileInterrupted,
    Deadline,
    OverloadedError,
    ResilienceConfig,
)
from .tenants import (
    DEFAULT_WARM_LIMIT,
    DuplicateTenantError,
    RegistryFullError,
    Tenant,
    TenantEpoch,
    TenantRegistry,
    UnknownTenantError,
    compile_digest,
)

#: ``POST /tenants/{name}/theory`` — the first parameterised route
#: (kept as a module name for backward compatibility; the app now routes
#: every ``/tenants/{name}/...`` endpoint through ``_tenant_routes``).
_TENANT_THEORY_ROUTE = re.compile(r"/tenants/([^/]+)/theory")


@dataclass(frozen=True)
class ServingResponse:
    """One endpoint response: HTTP status plus the JSON payload."""

    status: int
    payload: dict

    @property
    def ok(self) -> bool:
        """``True`` for 2xx responses."""
        return 200 <= self.status < 300

    def body(self) -> bytes:
        """The payload as canonical JSON bytes (what the wire carries)."""
        return json.dumps(self.payload, sort_keys=True).encode("utf-8")


class ServingError(Exception):
    """A structured endpoint failure: status + machine-readable code.

    *retry_after* (seconds) marks retryable failures — shed, open
    circuit, backend hiccup; it lands in the error body and the HTTP
    layer mirrors it as a ``Retry-After`` header.
    """

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        retry_after: float | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.retry_after = retry_after

    def response(self) -> ServingResponse:
        """The error body every endpoint failure shares."""
        error = {"code": self.code, "message": str(self)}
        if self.retry_after is not None:
            error["retry_after"] = round(self.retry_after, 3)
        return ServingResponse(self.status, {"error": error})


def encode_answers(tuples: frozenset[tuple]) -> list[list]:
    """Deterministic JSON encoding of an answer set.

    One list per answer tuple, holding the constants' raw values; rows
    sorted by their JSON serialisation so equal answer sets always encode
    to identical bytes.  This is the byte-identity channel of the serving
    differential tests: the direct in-process path is encoded with the
    same function and compared as JSON.
    """
    rows = []
    for answer in tuples:
        row = []
        for value in answer:
            if isinstance(value, Constant):
                value = value.value
            if not isinstance(value, (str, int, float, bool)) and value is not None:
                raise ServingError(
                    500,
                    "unserializable-answer",
                    f"answer value {value!r} has no JSON form",
                )
            row.append(value)
        rows.append(row)
    rows.sort(key=lambda row: json.dumps(row, sort_keys=True))
    return rows


class ServingApp:
    """The multi-tenant serving application (see module docstring).

    Parameters mirror ``repro serve``: *cache* is the persistent cache
    directory (rewriting store + compile checkpoints), *max_tenants* the
    admission-control bound, *backend* the default execution backend for
    new tenants.  *warm_limit* bounds per-fingerprint store preloading
    and *strategy_factory* injects compile strategies (tests only).
    """

    def __init__(
        self,
        cache: str | None = None,
        max_tenants: int | None = None,
        backend: str = "memory",
        warm_limit: int | None = DEFAULT_WARM_LIMIT,
        strategy_factory=None,
        resilience: ResilienceConfig | None = None,
        fault_plan=None,
        change_log: int | None = None,
    ) -> None:
        self.config = resilience or ResilienceConfig()
        self.registry = TenantRegistry(
            cache_directory=cache,
            max_tenants=max_tenants,
            backend=backend,
            warm_limit=warm_limit,
            strategy_factory=strategy_factory,
            fault_plan=fault_plan,
            max_tracked_changes=change_log,
        )
        self.flights = SingleFlight()
        self.gate = CompileGate(self.config)
        self.breaker = CircuitBreaker(self.config)
        self._started = time.monotonic()
        self._request_counts: dict[str, int] = {}
        self._routes = {
            ("POST", "/register-theory"): self._register,
            ("POST", "/prepare"): self._prepare,
            ("POST", "/answer"): self._answer,
            ("POST", "/data"): self._data,
            ("POST", "/invalidate"): self._invalidate,
            ("GET", "/stats"): self._stats,
            ("GET", "/healthz"): self._healthz,
        }
        # Parameterised per-tenant routes: (pattern, method, handler).
        # Handlers take (name, payload, headers).
        self._tenant_routes = (
            (_TENANT_THEORY_ROUTE, "POST", self._update_theory),
            (re.compile(r"/tenants/([^/]+)/subscribe"), "POST", self._subscribe),
            (re.compile(r"/tenants/([^/]+)/changes"), "GET", self._changes),
            (re.compile(r"/tenants/([^/]+)/unsubscribe"), "POST", self._unsubscribe),
            (
                re.compile(r"/tenants/([^/]+)/prepare-batch"),
                "POST",
                self._prepare_batch,
            ),
        )
        self._closed = False

    # -- the front door ----------------------------------------------------

    async def request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        headers: dict | None = None,
    ) -> ServingResponse:
        """Route one request; never raises (failures become error bodies).

        *headers* carries transport metadata the handlers honor —
        currently ``x-deadline-ms`` (lower-cased keys, as the HTTP layer
        normalises them).
        """
        method = method.upper()
        handler = self._routes.get((method, path))
        if handler is None:
            for pattern, route_method, tenant_handler in self._tenant_routes:
                match = pattern.fullmatch(path)
                if match is None:
                    continue
                if method != route_method:
                    return ServingError(
                        405, "method-not-allowed", f"{method} is not valid for {path}"
                    ).response()
                handler = (
                    lambda payload,
                    headers,
                    name=match.group(1),
                    bound=tenant_handler: bound(name, payload, headers)
                )
                break
            else:
                if any(route_path == path for _, route_path in self._routes):
                    return ServingError(
                        405, "method-not-allowed", f"{method} is not valid for {path}"
                    ).response()
                return ServingError(
                    404, "unknown-endpoint", f"no endpoint {path}"
                ).response()
        self._request_counts[path] = self._request_counts.get(path, 0) + 1
        if payload is None:
            payload = {}
        if not isinstance(payload, dict):
            return ServingError(
                400, "bad-request", "request body must be a JSON object"
            ).response()
        try:
            return await handler(payload, headers or {})
        except ServingError as error:
            return error.response()
        except UnknownTenantError as error:
            return ServingError(404, "unknown-tenant", str(error)).response()
        except UnknownSubscriptionError as error:
            return ServingError(
                404, "unknown-cursor", f"no subscription {error.args[0]!r}"
            ).response()
        except DuplicateTenantError as error:
            return ServingError(409, "duplicate-tenant", str(error)).response()
        except RegistryFullError as error:
            return ServingError(429, "max-tenants", str(error)).response()
        except QuerySyntaxError as error:
            return ServingError(400, "bad-query", str(error)).response()
        except OverloadedError as error:
            return ServingError(
                503, "overloaded", str(error), retry_after=error.retry_after
            ).response()
        except CircuitOpenError as error:
            return ServingError(
                503, "circuit-open", str(error), retry_after=error.retry_after
            ).response()
        except (BackendError, sqlite3.Error) as error:
            return ServingError(
                503,
                "backend-error",
                f"{type(error).__name__}: {error}",
                retry_after=self.config.shed_retry_after,
            ).response()
        except (asyncio.TimeoutError, CompileInterrupted) as error:
            return ServingError(
                504, "timeout", str(error) or "request budget exhausted"
            ).response()
        except (KeyError, TypeError, ValueError) as error:
            return ServingError(400, "bad-request", str(error)).response()
        except Exception as error:  # truly unclassified failures
            return ServingError(
                500, "internal", f"{type(error).__name__}: {error}"
            ).response()

    async def aclose(self) -> None:
        """Graceful shutdown: drain the executors, close systems and store.

        In-flight compiles are interrupted *first* — they abort at their
        next generation boundary with their frontier checkpoints already
        on disk — so draining the executors is bounded by one generation,
        not one compile, and the interrupted work resumes after restart.
        """
        if self._closed:
            return
        self._closed = True
        self.registry.interrupt_all()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.registry.close)

    def close(self) -> None:
        """Synchronous shutdown for non-async callers."""
        if not self._closed:
            self._closed = True
            self.registry.interrupt_all()
            self.registry.close()

    # -- payload decoding --------------------------------------------------

    @staticmethod
    def _required(payload: dict, field: str):
        value = payload.get(field)
        if value is None:
            raise ServingError(400, "missing-field", f"field {field!r} is required")
        return value

    def _tenant(self, payload: dict) -> Tenant:
        name = self._required(payload, "tenant")
        if not isinstance(name, str):
            raise ServingError(400, "bad-request", "'tenant' must be a string")
        return self.registry.get(name)

    @staticmethod
    def _decode_query(payload: dict) -> ConjunctiveQuery:
        """A query from its textual form or the tagged-JSON encoding."""
        raw = payload.get("query")
        if isinstance(raw, str):
            return parse_query(raw)
        if isinstance(raw, dict):
            try:
                return query_from_json(raw)
            except (KeyError, TypeError, ValueError) as error:
                raise ServingError(
                    400, "bad-query", f"unreadable JSON query: {error}"
                ) from error
        raise ServingError(
            400,
            "bad-query",
            "'query' must be a string (\"q(A) :- p(A)\") or a tagged-JSON object",
        )

    @staticmethod
    def _decode_theory(payload: dict, default_name: str) -> OntologyTheory:
        """A theory from a workload name, a textual TBox or JSON TGDs."""
        sources = [key for key in ("workload", "tbox", "tgds") if key in payload]
        if len(sources) != 1:
            raise ServingError(
                400,
                "bad-theory",
                "exactly one of 'workload', 'tbox' or 'tgds' is required",
            )
        if "workload" in payload:
            from ..workloads import get_workload

            try:
                return get_workload(payload["workload"]).theory
            except KeyError as error:
                raise ServingError(
                    404, "unknown-workload", f"no workload {payload['workload']!r}"
                ) from error
        if "tbox" in payload:
            from ..ontology.parser import parse_ontology
            from ..ontology.translation import to_theory

            try:
                return to_theory(
                    parse_ontology(payload["tbox"], name=default_name)
                )
            except ValueError as error:
                raise ServingError(
                    400, "bad-theory", f"unreadable TBox: {error}"
                ) from error
        try:
            tgds = [tgd_from_json(rule) for rule in payload["tgds"]]
            constraints = [
                NegativeConstraint(
                    body=[atom_from_json(atom) for atom in constraint]
                )
                for constraint in payload.get("constraints", [])
            ]
        except (KeyError, TypeError, ValueError) as error:
            raise ServingError(
                400, "bad-theory", f"unreadable JSON rules: {error}"
            ) from error
        return OntologyTheory(
            tgds=tgds, negative_constraints=constraints, name=default_name
        )

    @staticmethod
    def _decode_facts(payload: dict, field: str = "facts") -> list[tuple[str, list]]:
        """``[[relation, [v1, v2, ...]], ...]`` fact lists."""
        facts = payload.get(field, [])
        if not isinstance(facts, list):
            raise ServingError(400, "bad-facts", f"'{field}' must be a list")
        decoded = []
        for entry in facts:
            if (
                not isinstance(entry, (list, tuple))
                or len(entry) != 2
                or not isinstance(entry[0], str)
                or not isinstance(entry[1], list)
            ):
                raise ServingError(
                    400,
                    "bad-facts",
                    f"each fact must be [relation, [values...]], got {entry!r}",
                )
            decoded.append((entry[0], entry[1]))
        return decoded

    # -- the compile path --------------------------------------------------

    async def _ensure_compiled(
        self,
        tenant: Tenant,
        epoch: TenantEpoch,
        query: ConjunctiveQuery,
        deadline: Deadline,
    ) -> tuple[str, bool]:
        """Make sure *query*'s rewriting is in the shared artifact cache.

        Returns ``(source, coalesced)``.  Warm queries short-circuit on a
        dictionary probe and never queue behind a running compile — nor
        behind the admission gate: overload sheds cold traffic only.
        Cold queries run the resilience gauntlet:

        1. **admission** — the gate bounds the tenant's cold queue and
           (for flight leaders) the global in-flight compiles; full means
           503 + ``Retry-After`` *now*, not a queue slot;
        2. **circuit breaker** — leaders of a digest whose compiles fail
           deterministically are rejected while the circuit is open;
        3. **single flight** — the herd coalesces per compile digest;
        4. **deadline** — the wait is bounded by the compile budget.  On
           timeout the leader cancels the :class:`CancelScope`, the
           engine aborts at its next generation boundary (checkpoint
           already persisted) and every waiter gets a 504 whose retry
           *resumes* the compile instead of restarting it.
        """
        artifacts = epoch.artifacts
        if query in artifacts.rewriting_cache:
            artifacts.served_memory += 1
            return "memory", False
        digest = compile_digest(query, artifacts.fingerprint)
        leader = not self.flights.pending(digest)
        self.gate.admit(tenant.name, leader)
        budget = deadline.phase_budget(self.config.compile_timeout)
        scope = CancelScope(
            deadline=time.monotonic() + budget if budget is not None else None
        )
        loop = asyncio.get_running_loop()

        def thunk():
            return loop.run_in_executor(
                artifacts.executor,
                lambda: artifacts.compile_blocking(query, scope),
            )

        try:
            if leader:
                self.breaker.check(digest)
            # Synchronous join-or-start: no await separates the pending
            # probe that decided `leader` from the flight creation, so
            # the admission accounting above cannot be raced.
            task, _ = self.flights.acquire(digest, thunk)
            waiter = asyncio.shield(task)
            if budget is not None:
                _, source = await asyncio.wait_for(waiter, budget)
            else:
                _, source = await waiter
        except asyncio.TimeoutError:
            if leader:
                scope.cancel()
                self.breaker.record_interrupt(digest)
            raise ServingError(
                504,
                "timeout",
                f"compile did not finish within its {budget:.3f}s budget; "
                "progress is checkpointed — a retry resumes it",
            ) from None
        except CompileInterrupted as error:
            if leader:
                self.breaker.record_interrupt(digest)
            raise ServingError(504, "timeout", str(error)) from error
        except (ServingError, CircuitOpenError, OverloadedError):
            raise
        except Exception as error:
            if leader:
                self.breaker.record_failure(digest, error)
            raise ServingError(
                500, "compile-failed", f"{type(error).__name__}: {error}"
            ) from error
        else:
            if leader:
                self.breaker.record_success(digest)
            return source, not leader
        finally:
            self.gate.release(tenant.name, leader)

    # -- endpoint handlers -------------------------------------------------

    async def _register(self, payload: dict, headers: dict) -> ServingResponse:
        name = self._required(payload, "tenant")
        if not isinstance(name, str) or not name:
            raise ServingError(400, "bad-request", "'tenant' must be a non-empty string")
        theory = self._decode_theory(payload, default_name=name)
        facts = self._decode_facts(payload)
        backend = payload.get("backend")
        loop = asyncio.get_running_loop()
        tenant, shared = await loop.run_in_executor(
            None,
            lambda: self.registry.register(
                name, theory, facts=facts, backend=backend
            ),
        )
        return ServingResponse(
            201,
            {
                "tenant": name,
                "fingerprint": tenant.fingerprint,
                "shared_artifacts": shared,
                "tgds": len(theory.tgds),
                "constraints": len(theory.negative_constraints),
                "facts": len(tenant.system.database),
                "warmed_rewritings": tenant.artifacts.warmed,
                "warmed_prepared": tenant.warmed_prepared,
            },
        )

    async def _update_theory(
        self, name: str, payload: dict, headers: dict
    ) -> ServingResponse:
        """``POST /tenants/{name}/theory`` — epoch a live tenant.

        In-flight requests finish on the old artifact set; requests
        arriving after this returns compile against the new fingerprint.
        Facts and the database epoch counter survive.
        """
        self.registry.get(name)  # 404 before decoding the body
        theory = self._decode_theory(payload, default_name=name)
        loop = asyncio.get_running_loop()
        tenant, changed, shared = await loop.run_in_executor(
            None, lambda: self.registry.update_theory(name, theory)
        )
        return ServingResponse(
            200,
            {
                "tenant": name,
                "fingerprint": tenant.fingerprint,
                "changed": changed,
                "shared_artifacts": shared,
                "theory_updates": tenant.theory_updates,
                "tgds": len(theory.tgds),
                "constraints": len(theory.negative_constraints),
                "facts": len(tenant.system.database),
            },
        )

    async def _prepare(self, payload: dict, headers: dict) -> ServingResponse:
        tenant = self._tenant(payload)
        query = self._decode_query(payload)
        started = time.perf_counter()
        deadline = Deadline.from_header(headers)
        epoch = tenant.retain_epoch()
        try:
            source, coalesced = await self._ensure_compiled(
                tenant, epoch, query, deadline
            )
            loop = asyncio.get_running_loop()
            prepared = await loop.run_in_executor(
                tenant.executor,
                lambda: tenant.prepare_blocking(query, epoch.system),
            )
        finally:
            tenant.release_epoch(epoch)
        return ServingResponse(
            200,
            {
                "tenant": tenant.name,
                "source": source,
                "coalesced": coalesced,
                "cqs": len(prepared.rewriting.ucq),
                "elapsed_ms": (time.perf_counter() - started) * 1000.0,
            },
        )

    async def _prepare_batch(
        self, name: str, payload: dict, headers: dict
    ) -> ServingResponse:
        """``POST /tenants/{name}/prepare-batch`` — bulk plan warming.

        Each query's compile runs through the same single-flight /
        admission-control path as a single ``/prepare`` (a concurrent
        identical batch coalesces per digest); backend planning of the
        whole batch then happens in one hop on the tenant executor via
        ``prepare_many``.
        """
        tenant = self.registry.get(name)
        raw = self._required(payload, "queries")
        if not isinstance(raw, list) or not raw:
            raise ServingError(
                400, "bad-request", "'queries' must be a non-empty list"
            )
        queries = [
            self._decode_query(item if isinstance(item, dict) else {"query": item})
            for item in raw
        ]
        started = time.perf_counter()
        deadline = Deadline.from_header(headers)
        epoch = tenant.retain_epoch()
        try:
            results = []
            for query in queries:
                source, coalesced = await self._ensure_compiled(
                    tenant, epoch, query, deadline
                )
                results.append({"source": source, "coalesced": coalesced})
            loop = asyncio.get_running_loop()
            prepared = await loop.run_in_executor(
                tenant.executor,
                lambda: tenant.prepare_batch_blocking(queries, epoch.system),
            )
        finally:
            tenant.release_epoch(epoch)
        for entry, handle in zip(results, prepared):
            entry["cqs"] = len(handle.rewriting.ucq)
        return ServingResponse(
            200,
            {
                "tenant": tenant.name,
                "prepared": len(prepared),
                "results": results,
                "elapsed_ms": (time.perf_counter() - started) * 1000.0,
            },
        )

    async def _subscribe(
        self, name: str, payload: dict, headers: dict
    ) -> ServingResponse:
        """``POST /tenants/{name}/subscribe`` — open a standing-query cursor.

        Returns the cursor plus the current answer set as the initial
        snapshot; subsequent ``GET /tenants/{name}/changes?cursor=``
        polls return only the delta accumulated since the last delivery.
        """
        tenant = self.registry.get(name)
        query = self._decode_query(payload)
        started = time.perf_counter()
        deadline = Deadline.from_header(headers)
        epoch = tenant.retain_epoch()
        try:
            source, coalesced = await self._ensure_compiled(
                tenant, epoch, query, deadline
            )
            loop = asyncio.get_running_loop()
            budget = deadline.phase_budget(self.config.answer_timeout)
            work = loop.run_in_executor(
                tenant.executor,
                lambda: tenant.subscribe_blocking(query, epoch.system),
            )
            try:
                if budget is not None:
                    subscription, answers, epoch_counter, mode = await asyncio.wait_for(
                        work, budget
                    )
                else:
                    subscription, answers, epoch_counter, mode = await work
            except asyncio.TimeoutError:
                raise ServingError(
                    504,
                    "timeout",
                    f"subscribe did not finish within its {budget:.3f}s budget",
                ) from None
        finally:
            tenant.release_epoch(epoch)
        return ServingResponse(
            201,
            {
                "tenant": tenant.name,
                "cursor": subscription.cursor,
                "answers": encode_answers(answers),
                "count": len(answers),
                "epoch": epoch_counter,
                "mode": mode,
                "source": source,
                "coalesced": coalesced,
                "elapsed_ms": (time.perf_counter() - started) * 1000.0,
            },
        )

    async def _changes(
        self, name: str, payload: dict, headers: dict
    ) -> ServingResponse:
        """``GET /tenants/{name}/changes?cursor=`` — poll a cursor's delta.

        The answer set is delta-maintained on the tenant's executor
        thread (semi-naive inserts, DRed deletes, full-refresh fallback
        when the change log was truncated); the response carries the rows
        added and removed since the cursor's previous delivery, in the
        same deterministic ``encode_answers`` ordering as ``/answer``.
        """
        tenant = self.registry.get(name)
        cursor = self._required(payload, "cursor")
        if not isinstance(cursor, str):
            raise ServingError(400, "bad-request", "'cursor' must be a string")
        query = tenant.subscriptions.query_for(cursor)
        started = time.perf_counter()
        deadline = Deadline.from_header(headers)
        epoch = tenant.retain_epoch()
        try:
            source, coalesced = await self._ensure_compiled(
                tenant, epoch, query, deadline
            )
            loop = asyncio.get_running_loop()
            budget = deadline.phase_budget(self.config.answer_timeout)
            work = loop.run_in_executor(
                tenant.executor,
                lambda: tenant.changes_blocking(cursor, epoch.system),
            )
            try:
                if budget is not None:
                    poll = await asyncio.wait_for(work, budget)
                else:
                    poll = await work
            except asyncio.TimeoutError:
                raise ServingError(
                    504,
                    "timeout",
                    f"poll did not finish within its {budget:.3f}s budget",
                ) from None
        finally:
            tenant.release_epoch(epoch)
        return ServingResponse(
            200,
            {
                "tenant": tenant.name,
                "cursor": poll.cursor,
                "added": encode_answers(poll.added),
                "removed": encode_answers(poll.removed),
                "count": poll.answers,
                "epoch": poll.epoch,
                "mode": poll.mode,
                "polls": poll.polls,
                "source": source,
                "coalesced": coalesced,
                "elapsed_ms": (time.perf_counter() - started) * 1000.0,
            },
        )

    async def _unsubscribe(
        self, name: str, payload: dict, headers: dict
    ) -> ServingResponse:
        """``POST /tenants/{name}/unsubscribe`` — drop a cursor."""
        tenant = self.registry.get(name)
        cursor = self._required(payload, "cursor")
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            tenant.executor, lambda: tenant.unsubscribe_blocking(cursor)
        )
        return ServingResponse(
            200, {"tenant": tenant.name, "cursor": cursor, "unsubscribed": True}
        )

    async def _answer(self, payload: dict, headers: dict) -> ServingResponse:
        tenant = self._tenant(payload)
        query = self._decode_query(payload)
        bindings = payload.get("bindings")
        if bindings is not None and not isinstance(bindings, dict):
            raise ServingError(400, "bad-bindings", "'bindings' must be an object")
        started = time.perf_counter()
        deadline = Deadline.from_header(headers)
        epoch = tenant.retain_epoch()
        try:
            source, coalesced = await self._ensure_compiled(
                tenant, epoch, query, deadline
            )
            loop = asyncio.get_running_loop()
            budget = deadline.phase_budget(self.config.answer_timeout)
            execution = loop.run_in_executor(
                tenant.executor,
                lambda: tenant.answer_blocking(query, bindings, epoch.system),
            )
            try:
                if budget is not None:
                    tuples, cached = await asyncio.wait_for(execution, budget)
                else:
                    tuples, cached = await execution
            except asyncio.TimeoutError:
                raise ServingError(
                    504,
                    "timeout",
                    f"answer did not finish within its {budget:.3f}s budget",
                ) from None
            except ValueError as error:
                raise ServingError(400, "bad-bindings", str(error)) from error
            epoch_counter = epoch.system.database.epoch
        finally:
            tenant.release_epoch(epoch)
        return ServingResponse(
            200,
            {
                "tenant": tenant.name,
                "answers": encode_answers(tuples),
                "count": len(tuples),
                "source": source,
                "coalesced": coalesced,
                "answer_cached": cached,
                "epoch": epoch_counter,
                "elapsed_ms": (time.perf_counter() - started) * 1000.0,
            },
        )

    async def _data(self, payload: dict, headers: dict) -> ServingResponse:
        tenant = self._tenant(payload)
        added_facts = self._decode_facts(payload, "add")
        removed_facts = self._decode_facts(payload, "remove")
        if not added_facts and not removed_facts:
            raise ServingError(
                400, "bad-request", "'add' and/or 'remove' fact lists are required"
            )
        loop = asyncio.get_running_loop()

        def mutate() -> tuple[int, int]:
            return (
                tenant.add_facts(added_facts),
                tenant.remove_facts(removed_facts),
            )

        added, removed = await loop.run_in_executor(tenant.executor, mutate)
        return ServingResponse(
            200,
            {
                "tenant": tenant.name,
                "added": added,
                "removed": removed,
                "facts": len(tenant.system.database),
                "epoch": tenant.system.database.epoch,
            },
        )

    async def _invalidate(self, payload: dict, headers: dict) -> ServingResponse:
        tenant = self._tenant(payload)
        scope = payload.get("scope", "answers")
        loop = asyncio.get_running_loop()
        if scope == "answers":
            invalidated = await loop.run_in_executor(
                tenant.executor, tenant.invalidate_answers
            )
            return ServingResponse(
                200,
                {"tenant": tenant.name, "scope": scope, "invalidated": invalidated},
            )
        if scope == "tenant":
            await loop.run_in_executor(
                None, lambda: self.registry.deregister(tenant.name)
            )
            return ServingResponse(
                200, {"tenant": tenant.name, "scope": scope, "invalidated": 1}
            )
        raise ServingError(
            400, "bad-scope", f"scope must be 'answers' or 'tenant', got {scope!r}"
        )

    async def _stats(self, payload: dict, headers: dict) -> ServingResponse:
        store = self.registry.store
        store_stats = None
        if store is not None:
            statistics = store.statistics
            store_stats = {
                "entries": len(store),
                "hits": statistics.hits,
                "misses": statistics.misses,
                "stores": statistics.stores,
                "path": str(store.path),
            }
        return ServingResponse(
            200,
            {
                "uptime_seconds": time.monotonic() - self._started,
                "tenants": {
                    tenant.name: tenant.describe()
                    for tenant in self.registry.tenants()
                },
                "artifacts": {
                    artifacts.fingerprint[:12]: artifacts.describe()
                    for artifacts in self.registry.artifact_sets()
                },
                "coalescing": {
                    "leaders": self.flights.leaders,
                    "joined": self.flights.joined,
                    "inflight": len(self.flights),
                },
                "store": store_stats,
                "resilience": {
                    "gate": self.gate.describe(),
                    "breaker": self.breaker.describe(),
                    "timeouts": {
                        "compile": self.config.compile_timeout,
                        "answer": self.config.answer_timeout,
                    },
                },
                "requests": dict(sorted(self._request_counts.items())),
                "max_tenants": self.registry.max_tenants,
            },
        )

    async def _healthz(self, payload: dict, headers: dict) -> ServingResponse:
        return ServingResponse(
            200, {"status": "ok", "tenants": len(self.registry)}
        )
