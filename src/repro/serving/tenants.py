"""Tenants, fingerprint-shared artifacts and the registry binding them.

The serving tier separates what tenants *share* from what they *own*:

* **Shared per theory fingerprint** (:class:`SharedArtifacts`): the
  compiled artifact set.  One :class:`~repro.api.OBDASystem` dedicated to
  compilation, one in-process rewriting cache (a plain dict, passed to
  every same-fingerprint system via ``OBDASystem(rewriting_cache=...)``),
  one slice of the persistent :class:`~repro.cache.store.RewritingStore`
  (the store is server-wide; entries are segregated by fingerprint), and
  one frontier-checkpoint directory so a compile killed mid-flight
  resumes instead of restarting.  Two tenants registering structurally
  identical ontologies — same fingerprint — get the *same* object.
* **Owned per tenant** (:class:`Tenant`): the database (its own
  :class:`~repro.database.instance.RelationalInstance` with its own epoch
  counter), the execution backend, and the prepared-query pool with its
  epoch-keyed answer caches.  Mutating one tenant's data therefore only
  invalidates that tenant's answers; the shared rewritings are untouched
  (they depend on the theory alone).

Every tenant and every artifact set carries a dedicated single-thread
executor: blocking work (compiles, plan executions) runs off the event
loop, per-tenant state is mutated by one thread at a time, and
thread-affine backends (SQLite connections) stay on the thread that
created them.  A slow compile occupies only its artifact executor — warm
answers keep flowing through the tenant executors.

Two resilience mechanisms live at this layer (PR 8):

* **Cooperative cancellation** — every artifact set's strategy is wrapped
  in :class:`~repro.serving.resilience.InterruptibleStrategy`; the app
  hands :meth:`SharedArtifacts.compile_blocking` a per-request
  :class:`~repro.serving.resilience.CancelScope` so a timed-out compile
  aborts at the next generation boundary *after* the kernel checkpointed
  the previous one — the request 504s, the work is resumable.
* **Epoched live theory updates** — :meth:`TenantRegistry.update_theory`
  swaps a live tenant onto a new artifact set without downtime.  Requests
  pin the :class:`TenantEpoch` (artifacts + execution system) they
  started on; the swap retires the old epoch, which is closed only when
  its in-flight refcount drains.  Artifact sets are refcounted the same
  way (tenant memberships + pinned epochs), so the shared compile
  executor survives exactly as long as someone can still reach it.
"""

from __future__ import annotations

import hashlib
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from ..api import OBDASystem, RewritingResult
from ..cache.checkpoint import FrontierCheckpoint
from ..cache.fingerprint import theory_fingerprint
from ..cache.serialization import query_from_json, result_from_json
from ..cache.store import RewritingStore
from ..database.instance import RelationalInstance
from ..dependencies.theory import OntologyTheory
from ..incremental.subscriptions import PollResult, Subscription, SubscriptionPool
from ..queries.conjunctive_query import ConjunctiveQuery
from ..scheduling import create_strategy
from .resilience import CancelScope, InterruptibleStrategy

#: Subdirectory of the store directory holding per-compile frontier
#: checkpoints (one file per (canonical key, fingerprint) digest).
CHECKPOINT_DIRNAME = "checkpoints"

#: Default bound on rewritings preloaded from the store per fingerprint.
DEFAULT_WARM_LIMIT = 128


class RegistryError(RuntimeError):
    """Base class of tenant-registry failures (mapped to HTTP statuses)."""


class UnknownTenantError(RegistryError):
    """A request named a tenant that is not registered."""


class DuplicateTenantError(RegistryError):
    """``register`` was asked to create a tenant name that already exists."""


class RegistryFullError(RegistryError):
    """Admission control: the ``max_tenants`` bound would be exceeded."""


def compile_digest(query: ConjunctiveQuery, fingerprint: str) -> str:
    """Content address of one compilation: canonical key + fingerprint.

    Names the checkpoint file and the single-flight key, so variants of
    one query coalesce onto one compile and one resumable checkpoint.
    """
    key, _ = query.canonical_fingerprint
    payload = f"{fingerprint}\n{key!r}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class SharedArtifacts:
    """The compiled artifact set shared by every tenant of one fingerprint.

    ``compile_blocking`` is the only compile entry point of the serving
    tier: it serves from the shared in-process cache, then the persistent
    store, and only then runs the engine — under a per-artifacts lock and
    with a frontier checkpoint, so a killed service resumes the compile
    where it died.  ``compiles`` counts *engine runs only*; the coalescing
    tests pin it to exactly one per cold query under any herd size.
    """

    def __init__(
        self,
        theory: OntologyTheory,
        store: RewritingStore | None = None,
        checkpoint_directory: str | Path | None = None,
        strategy=None,
        warm_limit: int | None = DEFAULT_WARM_LIMIT,
        fault_plan=None,
    ) -> None:
        self.theory = theory
        self.rewriting_cache: dict[ConjunctiveQuery, RewritingResult] = {}
        # Every compile runs under the interruptible wrapper so deadlines,
        # shutdown and chaos faults all share one generation-boundary seam.
        # The serving tier defaults to the autotuner: per-query telemetry
        # picks the scheduling, and the choice degrades to sequential on
        # one-CPU deployments (same bytes either way).
        if strategy is None:
            strategy = "auto"
        self.strategy = InterruptibleStrategy(create_strategy(strategy))
        self.system = OBDASystem(
            theory,
            use_nc_pruning=bool(theory.negative_constraints),
            cache=store,
            strategy=self.strategy,
            rewriting_cache=self.rewriting_cache,
        )
        self.fingerprint = self.system.theory_fingerprint
        self._checkpoint_directory = (
            Path(checkpoint_directory) if checkpoint_directory is not None else None
        )
        self._compile_lock = threading.Lock()
        self.executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"compile-{self.fingerprint[:8]}"
        )
        self.tenant_names: set[str] = set()
        self.compiles = 0
        self.served_memory = 0
        self.served_store = 0
        self._fault_plan = fault_plan
        # Lifetime: tenant memberships + pinned epochs, see retain/retire.
        self._state_lock = threading.Lock()
        self._refs = 0
        self._retired = False
        self._closed = False
        self.warmed = self._warm_from_store(store, warm_limit)

    def _warm_from_store(
        self, store: RewritingStore | None, limit: int | None
    ) -> int:
        """Preload this fingerprint's stored rewritings into the shared cache.

        Restart-warm behaviour: a service reopened over the same cache
        directory answers previously compiled queries without touching
        the engine *or* re-parsing store records per tenant.  Bounded by
        *limit* (oldest records first — the store file is append-ordered,
        and `repro cache compact` keeps the most recently served tail).
        """
        if store is None or limit is not None and limit <= 0:
            return 0
        rules = tuple(self.system._rewriter.rules)
        warmed = 0
        for record in store:
            if record.get("fingerprint") != self.fingerprint:
                continue
            try:
                query = query_from_json(record["result"]["query"])
                result = result_from_json(record["result"], rules)
            except (KeyError, ValueError, TypeError):
                continue
            self.rewriting_cache.setdefault(query, result)
            warmed += 1
            if limit is not None and warmed >= limit:
                break
        return warmed

    def checkpoint_for(self, query: ConjunctiveQuery) -> FrontierCheckpoint | None:
        """The resumable frontier checkpoint of *query*'s compile, if any.

        Only available when the registry has a cache directory; the file
        is removed by the engine on successful completion, so its
        existence means "a compile of this query died mid-flight".
        """
        if self._checkpoint_directory is None:
            return None
        self._checkpoint_directory.mkdir(parents=True, exist_ok=True)
        digest = compile_digest(query, self.fingerprint)
        return FrontierCheckpoint(self._checkpoint_directory / f"{digest}.json")

    def compile_blocking(
        self, query: ConjunctiveQuery, scope: CancelScope | None = None
    ) -> tuple[RewritingResult, str]:
        """Compile *query* through the shared layers; returns (result, source).

        Blocking — the serving app runs it on :attr:`executor`.  The lock
        serialises engine runs per fingerprint (the engine's memo tables
        are not thread-safe); cache and store probes inside
        ``compile_traced`` are cheap, so holding the lock across them
        costs warm requests nothing (warm requests are answered from the
        tenant's prepared pool without ever calling this).

        *scope* is the request's cancellation scope: the wrapped strategy
        polls it between frontier generations, so an expired deadline
        aborts the engine run right after a checkpoint — resumable, not
        wasted.  One slot suffices because compiles per artifact set are
        serialised by the lock.
        """
        plan = self._fault_plan
        digest = compile_digest(query, self.fingerprint)
        with self._compile_lock:
            self.strategy.scope = scope
            self.strategy.fault = (
                plan.generation_fault(digest) if plan is not None else None
            )
            try:
                if plan is not None:
                    plan.before_compile(digest)
                result, source = self.system.compile_traced(
                    query, checkpoint=self.checkpoint_for(query)
                )
            finally:
                self.strategy.scope = None
                self.strategy.fault = None
        if source == "engine":
            self.compiles += 1
        elif source == "store":
            self.served_store += 1
        else:
            self.served_memory += 1
        return result, source

    # -- lifetime ----------------------------------------------------------
    #
    # An artifact set stays alive while anyone can still reach it: each
    # registered tenant holds one reference, and each request-pinned
    # TenantEpoch holds one more.  ``retire`` (last tenant detached, e.g.
    # after a live theory update) closes the set as soon as the last
    # in-flight epoch drains — never under a request's feet.

    def retain(self) -> None:
        """Take one reference (tenant membership or pinned epoch)."""
        with self._state_lock:
            self._refs += 1

    def release(self) -> None:
        """Drop one reference; closes the set once retired and drained."""
        with self._state_lock:
            self._refs = max(0, self._refs - 1)
            should_close = self._retired and self._refs == 0
        if should_close:
            self.close()

    def retire(self) -> None:
        """Mark the set obsolete; it closes when the refcount drains."""
        with self._state_lock:
            self._retired = True
            should_close = self._refs == 0
        if should_close:
            self.close()

    def interrupt(self) -> None:
        """Abort the current and all future compiles (service shutdown).

        The in-flight engine run stops at its next generation boundary —
        after the kernel persisted the previous generation's checkpoint —
        so shutdown never loses more than one generation of work.
        """
        self.strategy.shutdown()

    def describe(self) -> dict:
        """The stats-endpoint view of this artifact set."""
        info = self.system.rewriting_cache_info()
        return {
            "fingerprint": self.fingerprint,
            "tenants": sorted(self.tenant_names),
            "compiles": self.compiles,
            "served_memory": self.served_memory,
            "served_store": self.served_store,
            "warmed_rewritings": self.warmed,
            "rewritings": len(self.rewriting_cache),
            "cache": {"hits": info.hits, "misses": info.misses},
            "persistent": {
                "hits": info.persistent_hits,
                "misses": info.persistent_misses,
            },
        }

    def close(self) -> None:
        """Release the compile executor and the compilation system."""
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
        self.executor.shutdown(wait=True)
        self.system.close()
        self.strategy.close()


class TenantEpoch:
    """One tenant's view of the world between two theory updates.

    Pins the pair a request must use together — the shared artifact set
    it compiles against and the tenant-owned execution system it answers
    on.  Requests :meth:`~Tenant.retain_epoch` at entry and release at
    exit; a live theory update retires the old epoch, whose system is
    closed (on the tenant's executor thread) only when the last in-flight
    request lets go.  The epoch holds one reference on its artifact set
    for its whole life, so retired artifacts drain the same way.
    """

    def __init__(self, artifacts: SharedArtifacts, system: OBDASystem) -> None:
        self.artifacts = artifacts
        self.system = system
        self.refs = 0
        self.retired = False
        artifacts.retain()


class Tenant:
    """One tenant: its own database, backend and prepared-query pool.

    The compilation side is entirely shared: the tenant's
    :class:`~repro.api.OBDASystem` is built over the *same* theory object
    and the *same* in-process rewriting cache as its
    :class:`SharedArtifacts`, so preparing a query the artifact set has
    compiled never runs the engine — it plans the cached rewriting on the
    tenant's backend and caches answers under the tenant's epoch.
    """

    def __init__(
        self,
        name: str,
        artifacts: SharedArtifacts,
        backend: str = "memory",
        fault_plan=None,
        max_tracked_changes: int | None = None,
    ) -> None:
        self.name = name
        self.backend_name = backend
        self._lock = threading.RLock()
        self._fault_plan = fault_plan
        self.executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"tenant-{name}"
        )
        # Built on the executor thread: thread-affine backends (SQLite
        # connections) must live on the thread that will run the plans.
        system = self.executor.submit(
            lambda: OBDASystem(
                artifacts.theory,
                database=RelationalInstance(
                    max_tracked_changes=max_tracked_changes
                ),
                use_nc_pruning=bool(artifacts.theory.negative_constraints),
                backend=backend,
                rewriting_cache=artifacts.rewriting_cache,
            )
        ).result()
        self._epoch_lock = threading.Lock()
        self._epoch = TenantEpoch(artifacts, system)
        self._live_epochs: list[TenantEpoch] = [self._epoch]
        # Standing-query cursors; survives theory updates because it keys
        # on the query, not on any epoch's prepared handle.
        self.subscriptions = SubscriptionPool()
        self.theory_updates = 0
        self.answers_served = 0
        self.warmed_prepared = 0

    @property
    def artifacts(self) -> SharedArtifacts:
        """The current epoch's shared artifact set."""
        return self._epoch.artifacts

    @property
    def system(self) -> OBDASystem:
        """The current epoch's execution system."""
        return self._epoch.system

    # -- epochs (live theory updates) --------------------------------------

    def retain_epoch(self) -> TenantEpoch:
        """Pin the current epoch for one request (release when done).

        Everything the request touches afterwards — artifact cache,
        compile executor, execution system — must come from the returned
        epoch, so a concurrent theory update can never close state out
        from under it.
        """
        with self._epoch_lock:
            epoch = self._epoch
            epoch.refs += 1
            return epoch

    def release_epoch(self, epoch: TenantEpoch) -> None:
        """Unpin *epoch*; a retired epoch is closed once fully drained."""
        with self._epoch_lock:
            epoch.refs -= 1
            drained = epoch.retired and epoch.refs == 0
        if drained:
            self._close_epoch(epoch)

    def adopt(self, artifacts: SharedArtifacts) -> None:
        """Swap this tenant onto *artifacts* (a live theory update).

        The new execution system is built on the tenant's executor thread
        over the *same* database instance — facts and the epoch counter
        survive the update.  The old epoch keeps serving its in-flight
        requests on the old artifacts and is closed when they drain; new
        requests see the new epoch the moment the swap completes.
        """
        old_system = self._epoch.system
        system = self.on_own_thread(
            lambda: OBDASystem(
                artifacts.theory,
                database=old_system.database,
                use_nc_pruning=bool(artifacts.theory.negative_constraints),
                backend=self.backend_name,
                rewriting_cache=artifacts.rewriting_cache,
            )
        )
        fresh = TenantEpoch(artifacts, system)
        with self._epoch_lock:
            old = self._epoch
            self._epoch = fresh
            self._live_epochs.append(fresh)
            old.retired = True
            drained = old.refs == 0
        self.theory_updates += 1
        if drained:
            self._close_epoch(old)

    def _close_epoch(self, epoch: TenantEpoch) -> None:
        """Close a drained epoch's system (on the tenant thread) and
        release its artifact reference."""
        with self._epoch_lock:
            if epoch not in self._live_epochs:
                return
            self._live_epochs.remove(epoch)
        try:
            self.executor.submit(epoch.system.close).result()
        except RuntimeError:
            epoch.system.close()
        epoch.artifacts.release()

    def on_own_thread(self, function, *args):
        """Run *function* on this tenant's executor thread, synchronously.

        Registration-time work (fact loading, prepared-pool warmup) comes
        in on the registry's thread but must touch the backend on the
        tenant's thread; the serving app's request path instead schedules
        straight onto :attr:`executor` asynchronously.
        """
        return self.executor.submit(function, *args).result()

    @property
    def fingerprint(self) -> str:
        """The theory fingerprint keying this tenant's shared artifacts."""
        return self.artifacts.fingerprint

    def add_facts(self, facts: Iterable[tuple[str, Sequence[object]]]) -> int:
        """Insert ``(relation, values)`` tuples; returns how many were new."""
        with self._lock:
            before = len(self.system.database)
            for relation, values in facts:
                self.system.database.add_tuple(relation, values)
            return len(self.system.database) - before

    def remove_facts(self, facts: Iterable[tuple[str, Sequence[object]]]) -> int:
        """Remove ``(relation, values)`` tuples; returns how many existed."""
        removed = 0
        with self._lock:
            for relation, values in facts:
                if self.system.database.remove_tuple(relation, values):
                    removed += 1
        return removed

    def warm_prepared_pool(self, limit: int | None = None) -> int:
        """Plan every shared cached rewriting on this tenant's backend.

        The startup warmup of the prepared-query pool: after a restart
        (or a late registration against a warm artifact set) the tenant's
        first answer to a known query is a plan-cache hit, not a compile
        *plus* a plan.  Returns the number of queries prepared.
        """
        queries = list(self.artifacts.rewriting_cache)
        if limit is not None:
            queries = queries[:limit]
        with self._lock:
            for query in queries:
                self.system.prepare(query)
        self.warmed_prepared += len(queries)
        return len(queries)

    def prepare_blocking(self, query: ConjunctiveQuery, system: OBDASystem | None = None):
        """Plan *query* on this tenant's backend; returns the prepared handle.

        Blocking — the serving app runs it on :attr:`executor` after the
        shared compile has happened, so this is a plan-cache probe or a
        single backend planning pass, never an engine run.  *system* pins
        the request's epoch (defaults to the current one).
        """
        with self._lock:
            return (system or self.system).prepare(query)

    def answer_blocking(
        self,
        query: ConjunctiveQuery,
        bindings: Mapping[object, object] | None = None,
        system: OBDASystem | None = None,
    ) -> tuple[frozenset[tuple], bool]:
        """Execute *query*; returns ``(answer tuples, served-from-cache?)``.

        Blocking — the serving app runs it on :attr:`executor`.  The
        compile is expected to have happened through the shared artifacts
        already; this plans (once) and executes on the tenant's backend,
        with answers cached per database epoch.  *system* pins the
        request's epoch (defaults to the current one).
        """
        if self._fault_plan is not None:
            self._fault_plan.before_execute(self.name)
        with self._lock:
            prepared = (system or self.system).prepare(query)
            before = prepared.execution_cache_info().hits
            answers = prepared.execute(bindings)
            cached = prepared.execution_cache_info().hits > before
            self.answers_served += 1
            return answers.tuples, cached

    def prepare_batch_blocking(
        self,
        queries: Sequence[ConjunctiveQuery],
        system: OBDASystem | None = None,
    ) -> list:
        """Plan a whole batch on this tenant's backend via ``prepare_many``.

        Blocking — the serving app runs it on :attr:`executor` after every
        compile has gone through the shared single-flight path, so the
        batch is pure cache absorption plus backend planning.
        """
        with self._lock:
            return (system or self.system).prepare_many(queries)

    # -- standing queries ---------------------------------------------------

    def subscribe_blocking(
        self,
        query: ConjunctiveQuery,
        system: OBDASystem | None = None,
    ) -> tuple[Subscription, frozenset[tuple], int, str]:
        """Open a cursor on *query*'s answer set; returns the initial snapshot.

        Blocking — runs on :attr:`executor`.  The subscription's snapshot
        starts at the current answer set, so the first poll only reports
        changes made after subscribing.  Returns ``(subscription,
        answers, epoch, refresh mode)``.
        """
        with self._lock:
            prepared = (system or self.system).prepare(query)
            delta = prepared.poll()
            current = prepared.maintained_answers
            subscription = self.subscriptions.subscribe(query)
            subscription.delivered = current
            subscription.epoch = delta.epoch
            return subscription, current, delta.epoch, delta.mode

    def changes_blocking(
        self,
        cursor: str,
        system: OBDASystem | None = None,
    ) -> PollResult:
        """Poll the cursor: maintain the answer set, diff against the snapshot.

        Blocking — runs on :attr:`executor`.  The query is re-prepared
        against the pinned epoch's system, so a subscription opened before
        a live theory update keeps polling correctly afterwards (the
        maintainer of the new epoch full-refreshes once, and the cursor's
        delta covers the rewriting change exactly).
        """
        query = self.subscriptions.query_for(cursor)
        with self._lock:
            prepared = (system or self.system).prepare(query)
            delta = prepared.poll()
            return self.subscriptions.deliver(
                cursor, prepared.maintained_answers, delta.epoch, delta.mode
            )

    def unsubscribe_blocking(self, cursor: str) -> None:
        """Drop the cursor (raises ``UnknownSubscriptionError`` if absent)."""
        self.subscriptions.unsubscribe(cursor)

    def invalidate_answers(self) -> int:
        """Drop every prepared query's cached answer sets; returns the count."""
        with self._lock:
            return self.system.invalidate_answers()

    def describe(self) -> dict:
        """The stats-endpoint view of this tenant."""
        prepared = self.system.prepared_cache_info()
        return {
            "fingerprint": self.fingerprint,
            "backend": self.backend_name,
            "facts": len(self.system.database),
            "epoch": self.system.database.epoch,
            "theory_updates": self.theory_updates,
            "answers_served": self.answers_served,
            "warmed_prepared": self.warmed_prepared,
            "subscriptions": self.subscriptions.describe(),
            "prepared": {
                "size": prepared.size,
                "hits": prepared.hits,
                "misses": prepared.misses,
            },
        }

    def close(self) -> None:
        """Release the tenant executor and backend resources.

        Every live epoch's system is closed *on* the executor thread
        first (SQLite connections refuse cross-thread close), then the
        executor drains; each epoch's artifact reference is released so
        retired artifact sets can finally close too.
        """
        with self._epoch_lock:
            epochs = list(self._live_epochs)
            self._live_epochs.clear()
        for epoch in epochs:
            try:
                self.executor.submit(epoch.system.close).result()
            except RuntimeError:
                # Executor already shut down — nothing ran since, so
                # closing from this thread is the best remaining option.
                epoch.system.close()
            epoch.artifacts.release()
        self.executor.shutdown(wait=True)


class TenantRegistry:
    """Name → tenant, fingerprint → shared artifacts, one store for all.

    Parameters
    ----------
    cache_directory:
        Optional persistent cache directory.  Holds the server-wide
        :class:`~repro.cache.store.RewritingStore` (shared by every
        fingerprint — entries are keyed by it) and the frontier
        checkpoints of in-flight compiles.  Without it the service is
        memory-only: correct, but cold after every restart.
    max_tenants:
        Admission control: ``register`` beyond this bound raises
        :class:`RegistryFullError` (HTTP 429).
    backend:
        Default execution backend name for new tenants.
    warm_limit:
        Bound on rewritings preloaded from the store per fingerprint.
    strategy_factory:
        Optional zero-argument callable producing the scheduling strategy
        for each artifact set's compile engine (tests inject failing
        strategies to simulate kills; the default is sequential).
    fault_plan:
        Optional chaos-harness fault plan (see
        :mod:`repro.serving.chaos`), threaded into every artifact set
        (compile stalls/kills) and tenant (backend faults).
    """

    def __init__(
        self,
        cache_directory: str | Path | None = None,
        max_tenants: int | None = None,
        backend: str = "memory",
        warm_limit: int | None = DEFAULT_WARM_LIMIT,
        strategy_factory=None,
        fault_plan=None,
        max_tracked_changes: int | None = None,
    ) -> None:
        if max_tenants is not None and max_tenants < 1:
            raise ValueError(f"max_tenants must be >= 1, got {max_tenants}")
        self._cache_directory = (
            Path(cache_directory) if cache_directory is not None else None
        )
        self.store = (
            RewritingStore(self._cache_directory)
            if self._cache_directory is not None
            else None
        )
        self.max_tenants = max_tenants
        self._default_backend = backend
        self._warm_limit = warm_limit
        self._strategy_factory = strategy_factory
        self._fault_plan = fault_plan
        #: Per-tenant change-log bound (``repro serve --change-log``);
        #: ``None`` keeps :data:`RelationalInstance.MAX_TRACKED_CHANGES`.
        self._max_tracked_changes = max_tracked_changes
        # register/update/deregister may run on different pool threads
        # (the app offloads them); serialise the registry mutations.
        self._mutation_lock = threading.RLock()
        self._tenants: dict[str, Tenant] = {}
        self._artifacts: dict[str, SharedArtifacts] = {}

    # -- lookups -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._tenants)

    def __contains__(self, name: str) -> bool:
        return name in self._tenants

    def tenants(self) -> tuple[Tenant, ...]:
        """Every registered tenant, in registration order."""
        return tuple(self._tenants.values())

    def artifact_sets(self) -> tuple[SharedArtifacts, ...]:
        """Every live artifact set, in creation order."""
        return tuple(self._artifacts.values())

    def get(self, name: str) -> Tenant:
        """The tenant registered under *name*."""
        tenant = self._tenants.get(name)
        if tenant is None:
            raise UnknownTenantError(f"no tenant named {name!r} is registered")
        return tenant

    def expected_fingerprint(self, theory: OntologyTheory) -> str:
        """The fingerprint *theory* would be registered under.

        Mirrors how :class:`~repro.api.OBDASystem` resolves the engine
        options: elimination only for linear theories, NC pruning only
        when constraints are present.
        """
        return theory_fingerprint(
            theory.tgds,
            theory.negative_constraints,
            use_elimination=theory.classification.linear,
            use_nc_pruning=bool(theory.negative_constraints),
        )

    # -- registration ------------------------------------------------------

    def register(
        self,
        name: str,
        theory: OntologyTheory,
        facts: Iterable[tuple[str, Sequence[object]]] = (),
        backend: str | None = None,
        warm_prepared: bool = True,
    ) -> tuple[Tenant, bool]:
        """Create a tenant; returns ``(tenant, artifacts were shared?)``.

        The artifact set is resolved by theory fingerprint: a second
        tenant registering a structurally identical ontology (same rules
        modulo order and renaming) attaches to the existing set — its
        registration never compiles anything, and any rewriting either
        tenant compiles afterwards is immediately warm for both.
        """
        with self._mutation_lock:
            return self._register_locked(name, theory, facts, backend, warm_prepared)

    def _register_locked(
        self,
        name: str,
        theory: OntologyTheory,
        facts: Iterable[tuple[str, Sequence[object]]],
        backend: str | None,
        warm_prepared: bool,
    ) -> tuple[Tenant, bool]:
        if name in self._tenants:
            raise DuplicateTenantError(f"tenant {name!r} is already registered")
        if self.max_tenants is not None and len(self._tenants) >= self.max_tenants:
            raise RegistryFullError(
                f"tenant capacity reached ({self.max_tenants}); "
                "deregister a tenant first"
            )
        artifacts, shared = self._artifacts_for(theory)
        tenant = Tenant(
            name,
            artifacts,
            backend=backend or self._default_backend,
            fault_plan=self._fault_plan,
            max_tracked_changes=self._max_tracked_changes,
        )
        tenant.on_own_thread(tenant.add_facts, facts)
        if warm_prepared and artifacts.rewriting_cache:
            tenant.on_own_thread(tenant.warm_prepared_pool, self._warm_limit)
        self._attach(artifacts, name)
        self._tenants[name] = tenant
        return tenant, shared

    def _artifacts_for(self, theory: OntologyTheory) -> tuple[SharedArtifacts, bool]:
        """Get or create the artifact set of *theory*'s fingerprint."""
        fingerprint = self.expected_fingerprint(theory)
        artifacts = self._artifacts.get(fingerprint)
        if artifacts is not None:
            return artifacts, True
        artifacts = SharedArtifacts(
            theory,
            store=self.store,
            checkpoint_directory=(
                self._cache_directory / CHECKPOINT_DIRNAME
                if self._cache_directory is not None
                else None
            ),
            strategy=(
                self._strategy_factory() if self._strategy_factory else None
            ),
            warm_limit=self._warm_limit,
            fault_plan=self._fault_plan,
        )
        self._artifacts[artifacts.fingerprint] = artifacts
        return artifacts, False

    def _attach(self, artifacts: SharedArtifacts, name: str) -> None:
        """Record *name*'s membership in *artifacts* (one reference)."""
        artifacts.tenant_names.add(name)
        artifacts.retain()

    def _detach(self, artifacts: SharedArtifacts, name: str) -> None:
        """Drop *name*'s membership; retire the set when the last is out.

        Retiring drops the set from the fingerprint table immediately —
        a re-registration of the same theory gets a fresh set — but the
        retired set itself is only closed when its in-flight epoch
        references drain.
        """
        artifacts.tenant_names.discard(name)
        if not artifacts.tenant_names:
            if self._artifacts.get(artifacts.fingerprint) is artifacts:
                del self._artifacts[artifacts.fingerprint]
            artifacts.release()
            artifacts.retire()
        else:
            artifacts.release()

    def update_theory(
        self, name: str, theory: OntologyTheory
    ) -> tuple[Tenant, bool, bool]:
        """Swap a live tenant onto *theory* without dropping requests.

        Returns ``(tenant, changed?, artifacts were shared?)``.  A theory
        with the tenant's current fingerprint is a no-op.  Otherwise the
        tenant is epoched onto the (new or existing) artifact set of the
        new fingerprint: in-flight requests finish on the old epoch, new
        requests compile against the new fingerprint, and the old epoch —
        and its artifact set, when this was its last tenant — is released
        once its refcount drains.  Facts and the database epoch counter
        survive the update.
        """
        with self._mutation_lock:
            tenant = self.get(name)
            fingerprint = self.expected_fingerprint(theory)
            if fingerprint == tenant.fingerprint:
                return tenant, False, True
            artifacts, shared = self._artifacts_for(theory)
            old = tenant.artifacts
            self._attach(artifacts, name)
            tenant.adopt(artifacts)
            self._detach(old, name)
            return tenant, True, shared

    def deregister(self, name: str) -> None:
        """Remove a tenant, releasing its artifact set when last out.

        The shared artifact set survives as long as any same-fingerprint
        tenant remains; the persistent store survives regardless (that is
        the point of it).
        """
        with self._mutation_lock:
            tenant = self.get(name)
            del self._tenants[name]
            artifacts = tenant.artifacts
            tenant.close()
            self._detach(artifacts, name)

    def interrupt_all(self) -> None:
        """Ask every artifact set to abort its compiles (shutdown path).

        In-flight engine runs stop at their next generation boundary with
        their checkpoints already persisted, so a service stopped under
        load loses at most one generation per compile and resumes on
        restart.
        """
        for artifacts in list(self._artifacts.values()):
            artifacts.interrupt()

    def close(self) -> None:
        """Close every tenant, artifact set and the store."""
        with self._mutation_lock:
            for name in list(self._tenants):
                tenant = self._tenants.pop(name)
                artifacts = tenant.artifacts
                tenant.close()
                self._detach(artifacts, name)
            for artifacts in list(self._artifacts.values()):
                artifacts.close()
            self._artifacts.clear()
