"""The asyncio socket layer: just enough HTTP/1.1 for the serving app.

:class:`ServingServer` puts a :class:`~repro.serving.app.ServingApp` on a
TCP port with nothing beyond the standard library: request-line + header
parsing, ``Content-Length`` bodies, keep-alive connections, JSON in and
JSON out.  It is deliberately minimal — no chunked encoding, no TLS, no
pipelining — because the serving contracts live in :class:`ServingApp`
and this layer only carries them; anything fancier belongs behind a real
reverse proxy.

:class:`ServingClient` is the matching minimal client (one keep-alive
connection, blocking-per-request semantics) used by the load benchmark
and the socket-level tests.  It retries connection failures and 503s
with jittered exponential backoff (honoring ``Retry-After``) under a
per-request retry budget, so transient resets and load shedding don't
fail a benchmark run.

Graceful shutdown: :meth:`ServingServer.stop` closes the listening
socket, waits briefly for in-flight connection handlers, cancels any
stragglers, then closes the app (draining the tenant/compile executors
and the persistent store).
"""

from __future__ import annotations

import asyncio
import json
import random
from urllib.parse import parse_qsl

from .app import ServingApp, ServingResponse

#: Hard bound on request bodies (16 MiB) — admission control against a
#: client streaming an unbounded ontology at the parser.
MAX_BODY_BYTES = 16 * 1024 * 1024

#: How long an idle keep-alive connection may sit between requests.
KEEPALIVE_TIMEOUT = 30.0

_REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def _encode_response(response: ServingResponse, keep_alive: bool) -> bytes:
    body = response.body()
    reason = _REASONS.get(response.status, "Unknown")
    # Retryable structured errors carry their retry hint in the body;
    # mirror it as the standard header so plain HTTP clients see it too.
    retry_after = ""
    error = response.payload.get("error")
    if isinstance(error, dict) and "retry_after" in error:
        retry_after = f"Retry-After: {max(0.0, float(error['retry_after'])):.3f}\r\n"
    head = (
        f"HTTP/1.1 {response.status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"{retry_after}"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        f"\r\n"
    )
    return head.encode("ascii") + body


class ServingServer:
    """Serve a :class:`ServingApp` over HTTP/1.1 on a TCP port.

    ``port=0`` binds an ephemeral port (tests); the bound port is
    available as :attr:`port` after :meth:`start`.  The server owns the
    app for shutdown purposes: :meth:`stop` closes both.
    """

    def __init__(self, app: ServingApp, host: str = "127.0.0.1", port: int = 0):
        self.app = app
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.Task] = set()
        self.requests_served = 0

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self, drain_timeout: float = 5.0) -> None:
        """Graceful shutdown: stop accepting, drain, close the app."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._connections:
            done, pending = await asyncio.wait(
                self._connections, timeout=drain_timeout
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        await self.app.aclose()

    async def serve_forever(self) -> None:
        """Block until cancelled (the ``repro serve`` main loop)."""
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    # -- connection handling -----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            while True:
                try:
                    request = await asyncio.wait_for(
                        self._read_request(reader), timeout=KEEPALIVE_TIMEOUT
                    )
                except asyncio.TimeoutError:
                    break
                if request is None:
                    break
                method, path, payload, request_headers, keep_alive, parse_error = request
                if parse_error is not None:
                    response = ServingResponse(
                        parse_error[0],
                        {"error": {"code": parse_error[1], "message": parse_error[2]}},
                    )
                    keep_alive = False
                else:
                    response = await self.app.request(
                        method, path, payload, headers=request_headers
                    )
                self.requests_served += 1
                writer.write(_encode_response(response, keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        """Parse one request; ``None`` on clean EOF.

        Returns ``(method, path, payload, headers, keep_alive,
        parse_error)`` where *headers* maps lower-cased names to values
        (the app honors ``x-deadline-ms``) and *parse_error* is ``None``
        or ``(status, code, message)`` for malformed input the app never
        sees.
        """
        try:
            request_line = await reader.readline()
        except (ValueError, ConnectionError):
            return None
        if not request_line:
            return None
        try:
            method, target, version = (
                request_line.decode("ascii").strip().split(" ", 2)
            )
        except (UnicodeDecodeError, ValueError):
            return "GET", "/", None, {}, False, (400, "bad-request-line", "unreadable request line")
        path, _, query_string = target.partition("?")
        # Query parameters (``GET /tenants/x/changes?cursor=sub-1``) merge
        # into the payload below; an explicit JSON body wins on conflicts.
        params = (
            dict(parse_qsl(query_string, keep_blank_values=True))
            if query_string
            else None
        )

        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if not line or line in (b"\r\n", b"\n"):
                break
            if b":" in line:
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()

        keep_alive = version.upper() != "HTTP/1.0"
        if headers.get("connection", "").lower() == "close":
            keep_alive = False

        payload = None
        length_header = headers.get("content-length")
        if length_header is not None:
            try:
                length = int(length_header)
            except ValueError:
                return method, path, None, headers, False, (
                    400, "bad-content-length", "Content-Length is not an integer"
                )
            if length > MAX_BODY_BYTES:
                return method, path, None, headers, False, (
                    413, "payload-too-large",
                    f"request body exceeds {MAX_BODY_BYTES} bytes",
                )
            if length:
                try:
                    body = await reader.readexactly(length)
                except asyncio.IncompleteReadError:
                    return None
                try:
                    payload = json.loads(body)
                except json.JSONDecodeError as error:
                    return method, path, None, headers, keep_alive, (
                        400, "bad-json", f"request body is not JSON: {error}"
                    )
        if params:
            if payload is None:
                payload = params
            elif isinstance(payload, dict):
                payload = {**params, **payload}
        return method, path, payload, headers, keep_alive, None


class ServingClient:
    """A minimal keep-alive HTTP/1.1 client for the serving endpoints.

    One TCP connection, one request in flight at a time.  Used by the
    load benchmark (many client instances = many concurrent connections)
    and the socket-level tests; not a general HTTP client.

    Transient failures are retried under a budget of *retries* extra
    attempts: connection errors reconnect and retry, 503 responses (load
    shed, open circuit, backend hiccup — all marked retryable by the
    server) are retried after the server's ``Retry-After`` hint capped at
    *max_backoff*, or a jittered exponential backoff when the hint is
    absent.  The jitter stream is seeded per client, so a seeded harness
    (chaos, benchmarks) replays identical schedules.  ``retries=0``
    restores the PR 7 fail-fast behaviour.
    """

    def __init__(
        self,
        host: str,
        port: int,
        retries: int = 3,
        backoff: float = 0.05,
        max_backoff: float = 2.0,
        seed: int = 0,
    ):
        self.host = host
        self.port = port
        self.retries = retries
        self.backoff = backoff
        self.max_backoff = max_backoff
        self.retried = 0
        self._jitter = random.Random(seed)
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def _ensure_connected(self) -> None:
        if self._writer is None or self._writer.is_closing():
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )

    def _delay(self, attempt: int, retry_after: float | None) -> float:
        """Backoff before retry *attempt*: server hint or jittered exp."""
        if retry_after is not None:
            return min(max(retry_after, 0.0), self.max_backoff)
        delay = min(self.backoff * (2**attempt), self.max_backoff)
        return delay * (0.5 + 0.5 * self._jitter.random())

    async def request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        headers: dict | None = None,
    ) -> ServingResponse:
        """Send one request; returns the decoded :class:`ServingResponse`.

        *headers* adds extra request headers (e.g. ``X-Deadline-Ms``).
        Connection errors and 503s are retried per the client's budget;
        other statuses — including 5xx that are not marked retryable —
        are returned as-is.
        """
        attempt = 0
        while True:
            try:
                response = await self._attempt(method, path, payload, headers)
            except (ConnectionError, OSError, asyncio.IncompleteReadError):
                await self.aclose()
                if attempt >= self.retries:
                    raise
                retry_after = None
            else:
                if response.status != 503 or attempt >= self.retries:
                    return response
                error = response.payload.get("error", {})
                retry_after = (
                    error.get("retry_after") if isinstance(error, dict) else None
                )
            self.retried += 1
            await asyncio.sleep(self._delay(attempt, retry_after))
            attempt += 1

    async def _attempt(
        self,
        method: str,
        path: str,
        payload: dict | None,
        extra_headers: dict | None,
    ) -> ServingResponse:
        await self._ensure_connected()
        body = b""
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
        extra = "".join(
            f"{name}: {value}\r\n" for name, value in (extra_headers or {}).items()
        )
        head = (
            f"{method.upper()} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra}"
            f"\r\n"
        )
        self._writer.write(head.encode("ascii") + body)
        await self._writer.drain()

        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        parts = status_line.decode("ascii").strip().split(" ", 2)
        status = int(parts[1])
        headers: dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if not line or line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        raw = await self._reader.readexactly(length) if length else b"{}"
        if headers.get("connection", "").lower() == "close":
            await self.aclose()
        return ServingResponse(status, json.loads(raw))

    async def aclose(self) -> None:
        """Close the connection (idempotent)."""
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
            self._reader = None
