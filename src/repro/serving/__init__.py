"""The multi-tenant ontology-serving front end.

This package is the network layer of the ROADMAP's north star: a
long-running asyncio HTTP/JSON service over the library-grade serving API
(:class:`repro.api.OBDASystem`), built entirely on the standard library.

* :mod:`repro.serving.tenants` — the tenant registry.  Tenants are keyed
  by name, compiled artifacts by **theory fingerprint**
  (:mod:`repro.cache.fingerprint`): two tenants registering structurally
  identical ontologies transparently share one compiled artifact set and
  one persistent :class:`~repro.cache.store.RewritingStore`, while each
  keeps its own database, epoch counter and answer caches.
* :mod:`repro.serving.coalescing` — single-flight request coalescing: a
  thundering herd on one cold query compiles it exactly once.
* :mod:`repro.serving.app` — :class:`ServingApp`, the transport-free
  application handle (endpoint routing, JSON contracts, admission
  control); tests and the load benchmark drive it directly.
* :mod:`repro.serving.http` — the asyncio socket layer:
  :class:`ServingServer` speaks just enough HTTP/1.1 (keep-alive,
  Content-Length bodies) to put :class:`ServingApp` on a port, and
  :class:`ServingClient` is the matching minimal client used by the load
  generator, with jittered-backoff retries for transient failures.
* :mod:`repro.serving.resilience` — deadlines and cooperative compile
  cancellation, cold-path load shedding, per-digest circuit breakers
  (:class:`ResilienceConfig` carries the knobs).
* :mod:`repro.serving.chaos` — the seeded fault-injection harness behind
  ``repro chaos``: deterministic fault plans (stalls, kills, backend and
  write failures) driven against the full serving stack, with invariant
  checks for deadlines, warm-path latency and recovery byte-identity.

See ``docs/SERVING.md`` for the endpoint contracts and semantics and
``docs/OPERATIONS.md`` for the operational runbook.
"""

from .app import ServingApp, ServingError, ServingResponse
from .chaos import ChaosHarness, ChaosKill, ChaosReport, FaultPlan
from .coalescing import SingleFlight
from .http import ServingClient, ServingServer
from .resilience import (
    CancelScope,
    CircuitBreaker,
    CircuitOpenError,
    CompileGate,
    CompileInterrupted,
    Deadline,
    InterruptibleStrategy,
    OverloadedError,
    ResilienceConfig,
)
from .tenants import SharedArtifacts, Tenant, TenantEpoch, TenantRegistry

__all__ = [
    "CancelScope",
    "ChaosHarness",
    "ChaosKill",
    "ChaosReport",
    "CircuitBreaker",
    "CircuitOpenError",
    "CompileGate",
    "CompileInterrupted",
    "Deadline",
    "FaultPlan",
    "InterruptibleStrategy",
    "OverloadedError",
    "ResilienceConfig",
    "ServingApp",
    "ServingClient",
    "ServingError",
    "ServingResponse",
    "ServingServer",
    "SharedArtifacts",
    "SingleFlight",
    "Tenant",
    "TenantEpoch",
    "TenantRegistry",
]
