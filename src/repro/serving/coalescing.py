"""Single-flight request coalescing.

A cold query hit by a thundering herd must be compiled exactly once: the
first request becomes the *leader* and runs the expensive thunk; every
concurrent request for the same key *joins* the leader's in-flight task
and is handed the same result (or the same exception).  Requests arriving
after completion start a fresh flight — by then the serving caches answer
instantly, so the fresh flight is a dictionary probe, not a compile.

The pattern is Go's ``singleflight`` adapted to asyncio: the in-flight
table is only ever touched from the event loop, so no lock is needed, and
joiners await a :func:`asyncio.shield` of the leader's task so one
cancelled request never cancels the work for the others.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Hashable, TypeVar

T = TypeVar("T")


class SingleFlight:
    """Coalesce concurrent calls per key into one execution.

    Counters: ``leaders`` counts flights actually started, ``joined``
    counts requests served by attaching to an in-flight one.  The serving
    stats endpoint reports both, and the coalescing tests assert
    ``joined == N - 1`` for N concurrent cold requests.
    """

    def __init__(self) -> None:
        self._inflight: dict[Hashable, asyncio.Task] = {}
        self.leaders = 0
        self.joined = 0

    def __len__(self) -> int:
        return len(self._inflight)

    def pending(self, key: Hashable) -> bool:
        """Whether a flight for *key* is currently in the air."""
        return key in self._inflight

    def acquire(
        self, key: Hashable, thunk: Callable[[], Awaitable[T]]
    ) -> tuple[asyncio.Task, bool]:
        """Join-or-start the flight for *key*; returns ``(task, leader?)``.

        Synchronous — the pending probe and the task creation happen in
        one event-loop tick, so a caller deciding leadership from
        :meth:`pending` just before calling this cannot be raced by a
        concurrent request (the serving app's admission control depends
        on this: only true leaders consume global compile slots).
        """
        task = self._inflight.get(key)
        if task is not None:
            self.joined += 1
            return task, False
        self.leaders += 1
        task = asyncio.ensure_future(thunk())
        self._inflight[key] = task
        task.add_done_callback(
            lambda finished, key=key: self._forget(key, finished)
        )
        return task, True

    async def run(
        self, key: Hashable, thunk: Callable[[], Awaitable[T]]
    ) -> T:
        """Run *thunk* under *key*, coalescing with any in-flight call.

        Must be called from the event loop.  The leader's task survives
        cancellation of individual waiters (joiners await a shield); if
        the leader itself fails, every coalesced waiter sees the same
        exception.
        """
        task, _ = self.acquire(key, thunk)
        return await asyncio.shield(task)

    def _forget(self, key: Hashable, finished: asyncio.Task) -> None:
        """Drop a completed flight (only if it is still the current one)."""
        if self._inflight.get(key) is finished:
            del self._inflight[key]
        # A flight whose waiters all timed out and left still resolves
        # here; retrieve its exception so an abandoned failure doesn't
        # surface as a "Task exception was never retrieved" warning.
        if not finished.cancelled():
            finished.exception()
