"""Seeded chaos harness for the serving tier (``repro chaos``).

The resilience layer (PR 8) makes promises — deadlines are honored,
warm traffic is never starved by cold compiles, and every disturbance
(timeout, kill, backend hiccup, failed cache write) degrades to a
*retryable* error that converges back to the undisturbed answer.  This
module turns those promises into executable invariants, the same way
``repro fuzz`` holds the engine to its differential oracles:

* :class:`FaultPlan` is the injection seam threaded through the stack
  (``ServingApp(fault_plan=...)`` → registry → artifact sets and
  tenants).  It injects executor stalls and mid-compile kills at the
  :class:`~repro.serving.resilience.InterruptibleStrategy` generation
  boundary, ``sqlite3.OperationalError`` on the tenant execution path,
  rewriting-store write failures (``OSError`` from ``put``) and
  checkpoint write failures (a checkpoint pointed at an unwritable
  path).  Every budget is drawn from one seeded stream, so a failing
  case replays exactly.
* :class:`ChaosHarness` runs seeded cases end to end.  Each case
  generates a workload (via the fuzzing generator), records the
  *undisturbed* answers and warm latency on a pristine app, then replays
  the same traffic against a fault-injected app — a cold-compile storm
  plus concurrent warm traffic, all under ``X-Deadline-Ms`` — and
  finally disarms the plan and retries until the service recovers.

Invariants checked per case (violations fail the run and are written as
replayable repro files, like the fuzzing gate's):

1. **deadline** — no response arrives later than its effective budget
   plus a scheduling epsilon;
2. **warm-starvation** — warm p50 during the storm stays within 2× the
   unloaded warm p50 (with a small absolute floor against timer noise);
3. **recovery** — once faults stop, every query answers 200 again and
   the answers are byte-identical to the undisturbed run;
4. **classification** — no response ever carries the ``internal`` error
   code (every injected disturbance must map to a classified error).
"""

from __future__ import annotations

import asyncio
import json
import sqlite3
import statistics
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..cache.checkpoint import FrontierCheckpoint
from ..cache.serialization import query_to_json
from ..fuzzing.generator import FRAGMENTS, GeneratorConfig, WorkloadGenerator
from ..queries.parser import parse_query
from .app import ServingApp
from .resilience import ResilienceConfig
from .tenants import compile_digest

#: Fault kinds a plan can inject, in budget order.
FAULT_KINDS = ("stall", "kill", "backend", "store", "checkpoint")


class ChaosKill(RuntimeError):
    """An injected mid-compile failure (the chaos stand-in for a crash)."""


class FaultPlan:
    """A budgeted, seeded set of faults to inject into one serving app.

    The serving stack calls the three hooks from its executor threads:
    ``before_compile`` at compile start (stalls), ``generation_fault``
    per engine run (mid-compile kills at the generation boundary) and
    ``before_execute`` on the tenant's answer path (backend faults).
    Store and checkpoint write failures are installed by the harness via
    :meth:`wrap_store` / :meth:`sabotage_checkpoints`.  Budgets are only
    consumed while the plan is :meth:`armed <arm>`, so a harness can
    warm a tenant undisturbed, unleash the faults, then :meth:`disarm`
    and watch the service converge.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        stalls: int = 0,
        stall_seconds: float = 0.0,
        kills: int = 0,
        backend_faults: int = 0,
        store_faults: int = 0,
        checkpoint_faults: int = 0,
    ) -> None:
        self.seed = seed
        self.stall_seconds = stall_seconds
        self._lock = threading.Lock()
        self._armed = False
        self._budgets = {
            "stall": stalls,
            "kill": kills,
            "backend": backend_faults,
            "store": store_faults,
            "checkpoint": checkpoint_faults,
        }
        self.injected = {kind: 0 for kind in FAULT_KINDS}
        self._generation_calls: dict[str, int] = {}

    def arm(self) -> None:
        """Start consuming fault budgets."""
        with self._lock:
            self._armed = True

    def disarm(self) -> None:
        """Stop injecting; remaining budgets are left unspent."""
        with self._lock:
            self._armed = False

    def _consume(self, kind: str) -> bool:
        with self._lock:
            if not self._armed or self._budgets[kind] <= 0:
                return False
            self._budgets[kind] -= 1
            self.injected[kind] += 1
            return True

    # -- hooks called by the serving stack ---------------------------------

    def before_compile(self, digest: str) -> None:
        """Compile-start hook: stall the artifact executor thread."""
        if self._consume("stall"):
            time.sleep(self.stall_seconds)

    def generation_fault(self, digest: str):
        """The per-compile generation hook, or ``None`` when out of kills.

        The returned callable runs between frontier generations; it kills
        the engine run from its *second* generation on, so a killed
        compile dies with at least one checkpointed generation behind it
        — exactly the crash the resume machinery exists for.
        """
        with self._lock:
            if not self._armed or self._budgets["kill"] <= 0:
                return None

        def hook() -> None:
            fire = False
            with self._lock:
                calls = self._generation_calls.get(digest, 0) + 1
                self._generation_calls[digest] = calls
                if calls >= 2 and self._armed and self._budgets["kill"] > 0:
                    self._budgets["kill"] -= 1
                    self.injected["kill"] += 1
                    fire = True
            if fire:
                raise ChaosKill(f"injected mid-compile kill for {digest[:12]}")

        return hook

    def before_execute(self, tenant: str) -> None:
        """Answer-path hook: one transient backend failure."""
        if self._consume("backend"):
            raise sqlite3.OperationalError("chaos: injected backend fault")

    # -- harness-side installs ---------------------------------------------

    def wrap_store(self, store) -> None:
        """Make *store*'s ``put`` fail with ``OSError`` while budgeted."""
        if store is None:
            return
        original = store.put

        def put(*args, **kwargs):
            if self._consume("store"):
                raise OSError("chaos: injected store write failure")
            return original(*args, **kwargs)

        store.put = put

    def sabotage_checkpoints(self, artifacts, broken_root: Path) -> None:
        """Point budgeted compiles at an unwritable checkpoint path.

        *broken_root* must be a regular file, so the checkpoint's own
        ``mkdir``/``open`` raise a genuine ``OSError`` — exercising the
        real degraded path in :meth:`FrontierCheckpoint.save`.
        """
        original = artifacts.checkpoint_for

        def checkpoint_for(query):
            if self._consume("checkpoint"):
                return FrontierCheckpoint(broken_root / "chaos-checkpoint.json")
            return original(query)

        artifacts.checkpoint_for = checkpoint_for

    def describe(self) -> dict:
        """Budgets granted and faults actually injected (for repro files)."""
        with self._lock:
            return {
                "seed": self.seed,
                "stall_seconds": round(self.stall_seconds, 4),
                "remaining": dict(self._budgets),
                "injected": dict(self.injected),
            }


@dataclass
class CaseOutcome:
    """What one chaos case did and every invariant it violated."""

    index: int
    case_seed: int
    fragment: str
    faults: dict
    requests: int = 0
    timeouts: int = 0
    shed: int = 0
    recovery_attempts: int = 0
    warm_p50_reference: float | None = None
    warm_p50_storm: float | None = None
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        injected = self.faults.get("injected", {})
        fired = ", ".join(
            f"{kind}={count}" for kind, count in injected.items() if count
        ) or "none"
        status = "ok" if self.ok else f"FAIL ({len(self.violations)} violations)"
        return (
            f"chaos[{self.index}] {self.fragment}: {status} — "
            f"{self.requests} requests, {self.timeouts} timeouts, "
            f"{self.shed} shed, faults fired: {fired}"
        )


@dataclass
class ChaosReport:
    """The outcome of one ``repro chaos`` run."""

    seed: int
    epsilon: float
    outcomes: list[CaseOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    @property
    def violations(self) -> list[str]:
        return [
            f"case {outcome.index}: {violation}"
            for outcome in self.outcomes
            for violation in outcome.violations
        ]

    def summary(self) -> str:
        failed = sum(1 for outcome in self.outcomes if not outcome.ok)
        return (
            f"# chaos: {len(self.outcomes)} cases, "
            f"{len(self.outcomes) - failed} ok, {failed} failed "
            f"(seed {self.seed}, epsilon {self.epsilon}s)"
        )


def write_chaos_repro(path: Path, seed: int, outcome: CaseOutcome) -> Path:
    """Persist a failing case as a replayable repro file."""
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "kind": "chaos-repro",
        "seed": seed,
        "index": outcome.index,
        "case_seed": outcome.case_seed,
        "fragment": outcome.fragment,
        "faults": outcome.faults,
        "violations": outcome.violations,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_chaos_repro(path: str | Path) -> tuple[int, int]:
    """The ``(seed, case index)`` coordinates stored in a repro file."""
    payload = json.loads(Path(path).read_text())
    if payload.get("kind") != "chaos-repro":
        raise ValueError(f"{path} is not a chaos repro file")
    return int(payload["seed"]), int(payload["index"])


class ChaosHarness:
    """Run seeded fault-injection cases against the serving app.

    Each case is a pure function of ``(seed, index)``: the workload, the
    fault budgets, the resilience config and the traffic mix all come
    from one deterministic stream, so any failure replays bit-for-bit
    with ``repro chaos --replay FILE``.
    """

    #: Absolute floor for the warm-p50 comparison — below this, timer
    #: noise dominates and a 2× ratio check would flake.
    WARM_FLOOR_SECONDS = 0.05

    def __init__(
        self,
        seed: int = 0,
        epsilon: float = 0.5,
        repro_directory: str | Path | None = None,
    ) -> None:
        self.seed = seed
        self.epsilon = epsilon
        self.repro_directory = (
            Path(repro_directory) if repro_directory is not None else None
        )

    def _case_seed(self, index: int) -> int:
        # Same integer-only mixing discipline as the fuzzing generator:
        # no hash(), so runs are PYTHONHASHSEED-independent.
        return (self.seed * 1_000_003 + index * 7919 + 17) % (2**63)

    def run(self, cases: int, on_case=None) -> ChaosReport:
        """Run *cases* sequential chaos cases; returns the full report."""
        report = ChaosReport(seed=self.seed, epsilon=self.epsilon)
        for index in range(cases):
            outcome = self.run_case(index)
            report.outcomes.append(outcome)
            if on_case is not None:
                on_case(outcome)
            if not outcome.ok and self.repro_directory is not None:
                write_chaos_repro(
                    self.repro_directory
                    / f"chaos-seed{self.seed}-case{index}.json",
                    self.seed,
                    outcome,
                )
        return report

    def run_case(self, index: int) -> CaseOutcome:
        """Run one case (its own event loop, apps and temp directories)."""
        return asyncio.run(self._run_case(index))

    def replay(self, path: str | Path) -> CaseOutcome:
        """Re-run the exact case recorded in a repro file."""
        seed, index = load_chaos_repro(path)
        harness = ChaosHarness(seed=seed, epsilon=self.epsilon)
        return harness.run_case(index)

    # -- one case, end to end ----------------------------------------------

    async def _run_case(self, index: int) -> CaseOutcome:
        import random

        case_seed = self._case_seed(index)
        rng = random.Random(case_seed)
        fragment = rng.choice(FRAGMENTS)
        generated = WorkloadGenerator(
            seed=case_seed, config=GeneratorConfig(fragment=fragment)
        ).case(0)
        theory = generated.theory
        storm_query = generated.query
        facts = [
            (atom.predicate.name, [term.value for term in atom.terms])
            for atom in generated.instance
        ]

        config = ResilienceConfig(
            compile_timeout=rng.uniform(0.12, 0.25),
            answer_timeout=rng.uniform(0.5, 1.0),
            max_inflight_compiles=rng.randint(2, 4),
            queue_depth=rng.randint(16, 64),
            breaker_threshold=3,
            breaker_base_delay=0.05,
            breaker_max_delay=0.5,
            breaker_seed=case_seed,
            shed_retry_after=0.05,
        )
        plan = FaultPlan(
            seed=case_seed,
            stalls=rng.randint(0, 2),
            stall_seconds=rng.uniform(1.2, 2.0) * config.compile_timeout,
            kills=rng.randint(0, 2),
            backend_faults=rng.randint(0, 2),
            store_faults=rng.randint(0, 2),
            checkpoint_faults=rng.randint(0, 1),
        )
        if not any(plan._budgets.values()):
            plan._budgets["kill"] = 1  # every case disturbs something
        storm_size = rng.randint(4, 8)
        warm_hits = rng.randint(6, 12)
        deadline_ms = config.compile_timeout * 1000.0 * rng.uniform(0.8, 1.5)

        outcome = CaseOutcome(
            index=index,
            case_seed=case_seed,
            fragment=fragment,
            faults=plan.describe(),
        )

        # Phase 1 — the undisturbed truth: answers and warm latency on a
        # pristine, fault-free app.
        reference = ServingApp()
        try:
            reference.registry.register("t", theory, facts=facts)
            warm_query = self._warm_query(reference, storm_query)
            reference_answers = {}
            for name, query in (("storm", storm_query), ("warm", warm_query)):
                response = await self._answer(reference, query)
                if not response.ok:
                    outcome.violations.append(
                        f"reference answer for {name} query failed: "
                        f"{response.payload}"
                    )
                    return outcome
                reference_answers[name] = json.dumps(
                    response.payload["answers"], sort_keys=True
                )
            warm_samples = []
            for _ in range(5):
                _, elapsed = await self._timed_answer(reference, warm_query)
                warm_samples.append(elapsed)
            outcome.warm_p50_reference = statistics.median(warm_samples)
        finally:
            await reference.aclose()

        # Phase 2 — the same workload against a fault-injected app.
        with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
            cache_dir = Path(tmp) / "cache"
            broken_root = Path(tmp) / "not-a-directory"
            broken_root.write_text("")  # a file where a directory is needed
            app = ServingApp(
                cache=str(cache_dir), resilience=config, fault_plan=plan
            )
            try:
                await self._chaos_phase(
                    app,
                    plan,
                    broken_root,
                    theory,
                    facts,
                    storm_query,
                    warm_query,
                    reference_answers,
                    config,
                    storm_size,
                    warm_hits,
                    deadline_ms,
                    outcome,
                )
            finally:
                await app.aclose()
        outcome.faults = plan.describe()
        return outcome

    async def _chaos_phase(
        self,
        app: ServingApp,
        plan: FaultPlan,
        broken_root: Path,
        theory,
        facts,
        storm_query,
        warm_query,
        reference_answers: dict,
        config: ResilienceConfig,
        storm_size: int,
        warm_hits: int,
        deadline_ms: float,
        outcome: CaseOutcome,
    ) -> None:
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            None, lambda: app.registry.register("t", theory, facts=facts)
        )
        plan.wrap_store(app.registry.store)
        for artifacts in app.registry.artifact_sets():
            plan.sabotage_checkpoints(artifacts, broken_root)

        # Warm up the warm query while the plan is still disarmed.
        response = await self._answer(app, warm_query)
        if not response.ok:
            outcome.violations.append(
                f"undisturbed warmup failed: {response.payload}"
            )
            return

        plan.arm()
        phase_bound = (
            min(deadline_ms / 1000.0, config.compile_timeout + config.answer_timeout)
            + self.epsilon
        )
        headers = {"x-deadline-ms": f"{deadline_ms:.0f}"}

        async def storm_request():
            response, elapsed = await self._timed_answer(
                app, storm_query, headers=headers
            )
            return ("storm", response, elapsed, phase_bound)

        async def warm_loop():
            results = []
            for _ in range(warm_hits):
                response, elapsed = await self._timed_answer(app, warm_query)
                bound = (config.answer_timeout or 0.0) + self.epsilon
                results.append(("warm", response, elapsed, bound))
                await asyncio.sleep(0.01)
            return results

        storm_results = await asyncio.gather(
            *(storm_request() for _ in range(storm_size)), warm_loop()
        )
        plan.disarm()

        flattened = []
        for entry in storm_results:
            if isinstance(entry, list):
                flattened.extend(entry)
            else:
                flattened.append(entry)
        warm_latencies = []
        for kind, response, elapsed, bound in flattened:
            outcome.requests += 1
            code = response.payload.get("error", {}).get("code")
            if response.status == 504:
                outcome.timeouts += 1
            if response.status == 503:
                outcome.shed += 1
            if code == "internal":
                outcome.violations.append(
                    f"unclassified 500 during storm: {response.payload}"
                )
            if elapsed > bound:
                outcome.violations.append(
                    f"{kind} request took {elapsed:.3f}s, "
                    f"budget was {bound:.3f}s"
                )
            if kind == "warm":
                warm_latencies.append(elapsed)

        if warm_latencies and outcome.warm_p50_reference is not None:
            outcome.warm_p50_storm = statistics.median(warm_latencies)
            allowance = max(
                2.0 * outcome.warm_p50_reference, self.WARM_FLOOR_SECONDS
            )
            if outcome.warm_p50_storm > allowance:
                outcome.violations.append(
                    f"warm p50 {outcome.warm_p50_storm * 1000:.1f}ms during the "
                    f"storm exceeds {allowance * 1000:.1f}ms "
                    f"(2x unloaded p50 {outcome.warm_p50_reference * 1000:.1f}ms)"
                )

        # Phase 3 — recovery: with the plan disarmed the service must
        # converge back to the undisturbed answers, byte for byte.
        for name, query in (("storm", storm_query), ("warm", warm_query)):
            recovered = None
            for _ in range(30):
                outcome.recovery_attempts += 1
                response, elapsed = await self._timed_answer(app, query)
                bound = (
                    (config.compile_timeout or 0.0)
                    + (config.answer_timeout or 0.0)
                    + self.epsilon
                )
                if elapsed > bound:
                    outcome.violations.append(
                        f"recovery request took {elapsed:.3f}s, "
                        f"budget was {bound:.3f}s"
                    )
                if response.ok:
                    recovered = response
                    break
                code = response.payload.get("error", {}).get("code")
                if code == "internal":
                    outcome.violations.append(
                        f"unclassified 500 during recovery: {response.payload}"
                    )
                    break
                retry_after = response.payload.get("error", {}).get(
                    "retry_after", 0.02
                )
                await asyncio.sleep(min(float(retry_after), 0.5))
            if recovered is None:
                outcome.violations.append(
                    f"{name} query never recovered after faults stopped"
                )
                continue
            got = json.dumps(recovered.payload["answers"], sort_keys=True)
            if got != reference_answers[name]:
                outcome.violations.append(
                    f"post-recovery {name} answers differ from the "
                    f"undisturbed run: {got} != {reference_answers[name]}"
                )

    # -- helpers -------------------------------------------------------------

    def _warm_query(self, app: ServingApp, storm_query):
        """A second query over the same theory with a distinct compile digest.

        Derived from the storm query's own schema (single-atom probes over
        its body predicates), so it is always well-formed for the theory;
        falls back across predicates until the digest differs.
        """
        fingerprint = app.registry.tenants()[0].fingerprint
        storm_digest = compile_digest(storm_query, fingerprint)
        seen = []
        for atom in storm_query.body:
            if atom.predicate in seen:
                continue
            seen.append(atom.predicate)
        for predicate in seen:
            variables = ", ".join(f"V{i}" for i in range(predicate.arity))
            candidate = parse_query(f"q({variables}) :- {predicate.name}({variables})")
            if compile_digest(candidate, fingerprint) != storm_digest:
                return candidate
        # Degenerate single-atom storm query: probe with one variable
        # repeated, which canonicalises differently.
        predicate = seen[0]
        variables = ", ".join("V0" for _ in range(predicate.arity))
        return parse_query(f"q(V0) :- {predicate.name}({variables})")

    async def _answer(self, app: ServingApp, query, headers=None):
        return await app.request(
            "POST",
            "/answer",
            {"tenant": "t", "query": query_to_json(query)},
            headers=headers,
        )

    async def _timed_answer(self, app: ServingApp, query, headers=None):
        started = time.perf_counter()
        response = await self._answer(app, query, headers=headers)
        return response, time.perf_counter() - started
