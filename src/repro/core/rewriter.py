"""The rewriting algorithms ``TGD-rewrite`` and ``TGD-rewrite*`` (Algorithm 1).

``TGD-rewrite`` compiles a (Boolean or non-Boolean) conjunctive query and a
set of TGDs into a union of conjunctive queries — the *perfect rewriting* —
such that evaluating the UCQ directly over any database returns exactly the
certain answers of the original query over the database plus the TGDs
(Theorem 6).  It alternates two steps until a fixpoint:

* the **factorization step** unifies sets of atoms whose shared existential
  variable provably originates from a single chase atom (Definition 2);
  factorized queries are kept with label ``0``: they are *not* part of the
  final rewriting, they only enable further rewriting steps (Example 4);
* the **rewriting step** resolves a set of body atoms against the head of an
  applicable TGD (Definition 1), replacing them with the TGD body; the
  resulting queries carry label ``1`` and form the final rewriting.

``TGD-rewrite*`` additionally applies **query elimination** (Section 6) after
every step, dropping body atoms covered by other atoms, and it can exploit
**negative constraints** (Section 5.1) to prune queries that can never be
entailed by a consistent database.

Termination is guaranteed for linear, sticky and sticky-join TGDs
(Theorem 7); a configurable budget protects against non-terminating inputs.

A :class:`TGDRewriter` is a *compilation engine*, built once per theory and
reused across queries: the head-predicate :class:`RuleIndex`, the
:class:`~repro.core.applicability.RenameApartCache` and the
:class:`~repro.core.applicability.ApplicabilityMemo` all live on the
rewriter instance and keep learning across calls, so compiling a workload
through one rewriter (:meth:`repro.api.OBDASystem.compile_many`) is faster
than compiling each query in a fresh engine.  Every run's
:class:`RewritingStatistics` reports the per-run share of that memo work.

Structurally, :meth:`TGDRewriter.rewrite` is a *frontier kernel* (see
:mod:`repro.core.frontier`): the worklist is an explicit
:class:`~repro.core.frontier.RewriteFrontier` drained one generation at a
time, each pending CQ is turned into candidates by the pure step function
:meth:`TGDRewriter.expand`, and results are deduplicated, labelled and
scheduled at a single merge point.  How a generation's expansions are
computed is delegated to a pluggable
:class:`~repro.scheduling.SchedulingStrategy` — sequential by default,
thread- or process-parallel on demand — with byte-identical output under
every strategy, because expansion is pure and the merge is ordered.
Between generations the kernel state can be checkpointed
(:class:`repro.cache.checkpoint.FrontierCheckpoint`), so a killed
compilation resumes instead of restarting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Iterable, Sequence

from ..logic.atoms import Atom
from ..logic.terms import VariableFactory
from ..logic.unification import mgu
from ..dependencies.classifiers import is_linear
from ..dependencies.constraints import NegativeConstraint
from ..dependencies.normalization import is_normalized, normalize
from ..dependencies.tgd import TGD
from ..dependencies.theory import OntologyTheory
from ..queries.conjunctive_query import ConjunctiveQuery
from ..queries.ucq import QuerySet, UnionOfConjunctiveQueries
from .applicability import (
    ApplicabilityMemo,
    RenameApartCache,
    RuleIndex,
    applicable_atom_sets,
    factorizable_sets,
)
from .elimination import QueryEliminator
from .frontier import (
    LABEL_FACTORIZATION,
    LABEL_REWRITING,
    CandidateQuery,
    Expansion,
    KernelState,
    merge_expansion,
)
from .nc_pruning import NegativeConstraintPruner

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cache.checkpoint import FrontierCheckpoint
    from ..scheduling import SchedulingStrategy


class RewritingBudgetExceeded(RuntimeError):
    """Raised when the rewriting exceeds its query budget.

    This only happens for rule sets outside the FO-rewritable fragments (or
    with an unreasonably small budget); linear, sticky and sticky-join sets
    always terminate (Theorem 7).
    """


@dataclass
class RewritingStatistics:
    """Counters describing a rewriting run.

    Beyond the Algorithm 1 counters, the run records how the two indexes of
    the engine behaved: the canonical-key interning store (``variant_*`` and
    ``canonical_*`` fields, see :class:`repro.queries.ucq.QuerySet`) and the
    head-predicate rule index (``rules_*`` fields, see
    :class:`repro.core.applicability.RuleIndex`).
    """

    generated_by_rewriting: int = 0
    generated_by_factorization: int = 0
    pruned_by_constraints: int = 0
    eliminated_atoms: int = 0
    processed_queries: int = 0
    elapsed_seconds: float = 0.0
    # -- canonical-interning counters ------------------------------------
    interned_queries: int = 0
    canonical_buckets: int = 0
    canonical_collisions: int = 0
    variant_lookups: int = 0
    variant_cache_hits: int = 0
    variant_exact_hits: int = 0
    variant_confirmations: int = 0
    # -- rule-index counters ---------------------------------------------
    rules_considered: int = 0
    rules_skipped_by_index: int = 0
    # -- memoisation counters (this run's share of the engine memos) ------
    rename_cache_hits: int = 0
    rename_cache_misses: int = 0
    unification_memo_hits: int = 0
    unification_memo_misses: int = 0
    # -- persistent-cache counters (set by the serving layer) -------------
    persistent_cache_hits: int = 0
    persistent_cache_misses: int = 0

    #: Fields that vary between runs computing the *same* rewriting —
    #: wall-clock and the engine/serving cache shares.  Everything else is
    #: a deterministic function of ``(rules, options, query)``, which is
    #: what makes stored records and merged workload totals reproducible
    #: under any worker count.
    VOLATILE_FIELDS = frozenset(
        {
            "elapsed_seconds",
            "rename_cache_hits",
            "rename_cache_misses",
            "unification_memo_hits",
            "unification_memo_misses",
            "persistent_cache_hits",
            "persistent_cache_misses",
        }
    )

    def merge(self, other: "RewritingStatistics") -> "RewritingStatistics":
        """Return a new statistics object with every counter summed.

        Used to aggregate per-query statistics into per-workload totals —
        both by the sequential :meth:`repro.api.OBDASystem.compile_many`
        loop and by the parallel path when it folds per-worker results
        back together (``repro compile --stats`` prints the totals).
        """
        merged = RewritingStatistics()
        for field_ in fields(RewritingStatistics):
            setattr(
                merged,
                field_.name,
                getattr(self, field_.name) + getattr(other, field_.name),
            )
        return merged

    @classmethod
    def merge_all(
        cls, statistics: Iterable["RewritingStatistics"]
    ) -> "RewritingStatistics":
        """Fold many statistics objects into one total (order-independent)."""
        total = cls()
        for entry in statistics:
            total = total.merge(entry)
        return total


@dataclass
class RewritingResult:
    """The perfect rewriting of a query together with run statistics."""

    query: ConjunctiveQuery
    rules: tuple[TGD, ...]
    ucq: UnionOfConjunctiveQueries
    auxiliary_queries: tuple[ConjunctiveQuery, ...] = ()
    statistics: RewritingStatistics = field(default_factory=RewritingStatistics)

    @property
    def size(self) -> int:
        """Number of CQs in the perfect rewriting (Table 1 "Size")."""
        return len(self.ucq)

    def __iter__(self):
        return iter(self.ucq)

    def __len__(self) -> int:
        return len(self.ucq)


class TGDRewriter:
    """Backward-chaining rewriter for Datalog± ontological queries.

    Parameters
    ----------
    rules:
        The TGDs Σ.  They are normalised (Lemmas 1 and 2) automatically
        unless already in normal form.
    negative_constraints:
        Optional NCs Σ⊥ used for pruning (Section 5.1).
    use_elimination:
        Enable the query-elimination optimisation (``TGD-rewrite*``); requires
        the rule set to be linear.
    use_nc_pruning:
        Enable pruning with negative constraints; only meaningful when
        *negative_constraints* is non-empty.
    max_queries:
        Budget on the number of distinct CQs generated; exceeding it raises
        :class:`RewritingBudgetExceeded`.
    use_memoisation:
        Keep per-rule rename-apart pools and applicability outcomes across
        the whole lifetime of the rewriter (default).  Disabling it
        reproduces the unmemoised engine — useful for differential testing;
        the computed rewritings are identical either way.
    strategy:
        The :class:`~repro.scheduling.SchedulingStrategy` used to expand
        frontier generations (a registered name or an instance); default
        sequential.  Every strategy produces byte-identical rewritings —
        this knob trades wall-clock only.
    """

    def __init__(
        self,
        rules: Sequence[TGD] | OntologyTheory,
        negative_constraints: Iterable[NegativeConstraint] = (),
        use_elimination: bool = False,
        use_nc_pruning: bool = False,
        max_queries: int = 200_000,
        use_memoisation: bool = True,
        strategy: "SchedulingStrategy | str | None" = None,
    ) -> None:
        if isinstance(rules, OntologyTheory):
            theory = rules
            rules = theory.tgds
            if not negative_constraints:
                negative_constraints = theory.negative_constraints
        rules = list(rules)
        internal_predicates: frozenset = frozenset()
        if not is_normalized(rules):
            normalization = normalize(rules)
            rules = list(normalization.rules)
            internal_predicates = frozenset(normalization.auxiliary_predicates)
        self._rules: tuple[TGD, ...] = tuple(rules)
        self._rule_index = RuleIndex(self._rules)
        # Memo state shared across every rewrite() call of this engine.
        # Rules are keyed by their position in the (immutable) rule tuple;
        # id() is safe as the tuple keeps every rule alive.
        self._rule_keys = {id(rule): position for position, rule in enumerate(self._rules)}
        self._rename_cache = RenameApartCache() if use_memoisation else None
        self._applicability_memo = ApplicabilityMemo() if use_memoisation else None
        # Auxiliary predicates introduced by the internal normalisation are
        # not part of the caller's schema: no database ever stores facts for
        # them, so rewritten CQs mentioning them are dropped from the output.
        self._internal_predicates = internal_predicates
        self._max_queries = max_queries
        self._negative_constraints = tuple(negative_constraints)
        from ..scheduling import create_strategy

        self._strategy = create_strategy(strategy)
        self._pruner = (
            NegativeConstraintPruner(self._negative_constraints)
            if use_nc_pruning and self._negative_constraints
            else None
        )
        self._eliminator: QueryEliminator | None = None
        if use_elimination:
            if not is_linear(self._rules):
                raise ValueError(
                    "query elimination (TGD-rewrite*) requires linear TGDs"
                )
            self._eliminator = QueryEliminator(self._rules)

    # -- public API ------------------------------------------------------------------

    @property
    def rules(self) -> tuple[TGD, ...]:
        """The (normalised) TGDs used for rewriting."""
        return self._rules

    @property
    def rule_index(self) -> RuleIndex:
        """The head-predicate index over the (normalised) TGDs."""
        return self._rule_index

    @property
    def uses_elimination(self) -> bool:
        """``True`` iff the query-elimination optimisation is active."""
        return self._eliminator is not None

    @property
    def uses_memoisation(self) -> bool:
        """``True`` iff the rename-apart pool and applicability memo are active."""
        return self._applicability_memo is not None

    @property
    def negative_constraints(self) -> tuple[NegativeConstraint, ...]:
        """The negative constraints available for pruning."""
        return self._negative_constraints

    @property
    def uses_nc_pruning(self) -> bool:
        """``True`` iff negative-constraint pruning is active."""
        return self._pruner is not None

    @property
    def max_queries(self) -> int:
        """The budget on the number of distinct CQs generated."""
        return self._max_queries

    @property
    def strategy(self) -> "SchedulingStrategy":
        """The engine's default scheduling strategy for frontier generations."""
        return self._strategy

    def specification(self) -> tuple:
        """What a worker process needs to rebuild an equivalent engine.

        The (already normalised) rules, the negative constraints and the
        resolved options — everything :meth:`expand` depends on.  A replica
        built by :meth:`from_specification` expands every query to exactly
        the same candidates as this engine (expansion is a pure function
        and the rename-apart pool mints deterministically), which is what
        lets :class:`repro.scheduling.ChunkedProcessStrategy` spread one
        frontier generation across processes without changing a byte.
        """
        return (
            self._rules,
            self._negative_constraints,
            self._eliminator is not None,
            self._pruner is not None,
            self._max_queries,
            self._applicability_memo is not None,
        )

    @classmethod
    def from_specification(cls, specification: tuple) -> "TGDRewriter":
        """Rebuild an expansion-equivalent engine from :meth:`specification`."""
        rules, constraints, elimination, pruning, max_queries, memoisation = (
            specification
        )
        return cls(
            rules,
            negative_constraints=constraints,
            use_elimination=elimination,
            use_nc_pruning=pruning,
            max_queries=max_queries,
            use_memoisation=memoisation,
        )

    def rewrite(
        self,
        query: ConjunctiveQuery,
        strategy: "SchedulingStrategy | None" = None,
        checkpoint: "FrontierCheckpoint | None" = None,
    ) -> RewritingResult:
        """Compute the perfect rewriting of *query* w.r.t. the rewriter's rules.

        The result is a pure function of ``(rules, options, query)``: the
        rename-apart pool mints deterministically and per-expansion fresh
        variables never leak across queries, so a warmed-up engine produces
        the same bytes as a fresh one — the invariant that lets
        :func:`repro.parallel.compile_workloads` fan queries out to worker
        processes without changing what gets stored.

        *strategy* overrides the engine's scheduling strategy for this run;
        the output is byte-identical either way.  *checkpoint* persists the
        kernel state between frontier generations, so a killed run can be
        resumed from the last completed generation (the checkpoint file is
        removed once the rewriting completes).
        """
        start = time.perf_counter()
        scheduling = strategy if strategy is not None else self._strategy
        memo_snapshot = self._memo_counters()

        state: KernelState | None = None
        if checkpoint is not None:
            state = checkpoint.load(self, query)
        if state is None:
            statistics = RewritingStatistics()
            initial = self._reduce(query, statistics)
            if self._pruner is not None and self._pruner.is_unsatisfiable(initial):
                # The input query itself violates a negative constraint: it
                # can never be entailed by a consistent database (§5.1).
                statistics.pruned_by_constraints += 1
                self._record_memo_counters(statistics, memo_snapshot)
                statistics.elapsed_seconds = time.perf_counter() - start
                return RewritingResult(
                    query=query,
                    rules=self._rules,
                    ucq=UnionOfConjunctiveQueries([]),
                    statistics=statistics,
                )
            state = KernelState.initial(initial, statistics)
        statistics = state.statistics

        # The kernel loop: drain a generation, expand it through the
        # strategy, merge in frontier order — the single point where
        # candidates are interned, labelled and scheduled.
        scheduling.begin_run(self, query, state.frontier.generation)
        while state.frontier:
            batch = state.frontier.take_generation()
            for expansion in scheduling.expand_generation(self, batch):
                merge_expansion(state, expansion, self._max_queries)
            if checkpoint is not None and checkpoint.due(state.frontier.generation):
                checkpoint.save(self, query, state)

        store, labels = state.store, state.labels
        final = [
            stored
            for stored in store
            if labels[stored] == LABEL_REWRITING and not self._mentions_internal(stored)
        ]
        auxiliary = tuple(
            stored
            for stored in store
            if labels[stored] == LABEL_FACTORIZATION or self._mentions_internal(stored)
        )
        self._finalize_statistics(statistics, store)
        self._record_memo_counters(statistics, memo_snapshot)
        statistics.elapsed_seconds = time.perf_counter() - start
        if checkpoint is not None:
            checkpoint.clear()
        return RewritingResult(
            query=query,
            rules=self._rules,
            ucq=UnionOfConjunctiveQueries(final),
            auxiliary_queries=auxiliary,
            statistics=statistics,
        )

    @staticmethod
    def _finalize_statistics(
        statistics: RewritingStatistics, store: QuerySet
    ) -> None:
        """Copy the interning counters of the run's store into *statistics*."""
        interning = store.statistics
        statistics.interned_queries = len(store)
        statistics.canonical_buckets = store.bucket_count
        statistics.canonical_collisions = interning.collisions
        statistics.variant_lookups = interning.lookups
        statistics.variant_cache_hits = interning.hits
        statistics.variant_exact_hits = interning.exact_hits
        statistics.variant_confirmations = interning.confirmations

    def _memo_counters(self) -> tuple[int, int, int, int]:
        """Current absolute counters of the engine-lifetime memo tables."""
        if self._applicability_memo is None:
            return (0, 0, 0, 0)
        return (
            self._rename_cache.hits,
            self._rename_cache.misses,
            self._applicability_memo.hits,
            self._applicability_memo.misses,
        )

    def _record_memo_counters(
        self, statistics: RewritingStatistics, snapshot: tuple[int, int, int, int]
    ) -> None:
        """Store this run's memo-counter deltas into *statistics*.

        The memo tables live for the whole engine, so a run's share is the
        difference against the snapshot taken when the run started.
        """
        after = self._memo_counters()
        statistics.rename_cache_hits = after[0] - snapshot[0]
        statistics.rename_cache_misses = after[1] - snapshot[1]
        statistics.unification_memo_hits = after[2] - snapshot[2]
        statistics.unification_memo_misses = after[3] - snapshot[3]

    def _rename_apart(
        self, rule: TGD, query: ConjunctiveQuery, fresh: VariableFactory
    ) -> TGD:
        """A copy of *rule* with variables disjoint from *query*'s (memoised).

        *fresh* is the expansion-local factory used on the unmemoised
        path; keeping it per expansion (instead of per run) makes the
        drawn names a function of the query alone, so expansions stay pure
        under every scheduling strategy.
        """
        if self._rename_cache is None:
            return rule.rename_apart(query.variables, fresh)
        return self._rename_cache.rename(
            self._rule_keys[id(rule)], rule, query.variables, fresh
        )

    def _mentions_internal(self, query: ConjunctiveQuery) -> bool:
        """``True`` iff the query uses an auxiliary predicate of the normalisation."""
        if not self._internal_predicates:
            return False
        return any(atom.predicate in self._internal_predicates for atom in query.body)

    # -- the pure step function of the frontier kernel ---------------------------------

    def expand(self, query: ConjunctiveQuery) -> Expansion:
        """All candidates one application of Algorithm 1's steps yields on *query*.

        The pure step function of the frontier kernel: factorization
        candidates first (Definition 2 — the rule is *not* renamed apart,
        it only contributes its head predicate and existential position,
        both invariant under renaming), then rewriting candidates
        (Definition 1), each in rule-index order.  Candidates come back
        reduced (query elimination) and marked if a negative constraint
        prunes them; nothing is interned and no kernel state is touched,
        so expansions of one generation can run concurrently — on threads
        sharing this engine, or in worker processes holding a replica —
        without changing a byte of the merged result.
        """
        candidate_rules = self._rule_index.candidate_rules(query)
        candidates: list[CandidateQuery] = []
        # Expansion-local fresh variables (unmemoised rename path only):
        # the names drawn for one query never depend on other expansions.
        fresh = VariableFactory(prefix="W")

        for rule in candidate_rules:
            for factorizable in factorizable_sets(rule, query):
                candidates.append(
                    self._candidate(query.apply(factorizable.unifier), LABEL_FACTORIZATION)
                )

        for rule in candidate_rules:
            renamed = self._rename_apart(rule, query, fresh)
            for atom_set in applicable_atom_sets(
                renamed,
                query,
                memo=self._applicability_memo,
                rule_key=self._rule_keys[id(rule)],
            ):
                resolved = self._resolve(query, renamed, atom_set)
                if resolved is None:
                    continue
                candidates.append(self._candidate(resolved, LABEL_REWRITING))

        return Expansion(
            source=query,
            candidates=tuple(candidates),
            rules_considered=len(candidate_rules),
            rules_skipped=len(self._rules) - len(candidate_rules),
        )

    def _candidate(self, query: ConjunctiveQuery, label: int) -> CandidateQuery:
        """Reduce and prune-check one raw candidate (pure, per candidate)."""
        eliminated = 0
        if self._eliminator is not None:
            result = self._eliminator.eliminate_atoms(query)
            eliminated = result.removed_count
            query = result.reduced
        pruned = self._pruner is not None and self._pruner.is_unsatisfiable(query)
        return CandidateQuery(
            query=query, label=label, pruned=pruned, eliminated_atoms=eliminated
        )

    def _resolve(
        self,
        query: ConjunctiveQuery,
        rule: TGD,
        atom_set: Sequence[Atom],
    ) -> ConjunctiveQuery | None:
        """``γ_{A ∪ {head(σ)}}(q[A / body(σ)])`` — the rewriting-step query.

        The unifier is applied while the new body is assembled (rather than
        building the intermediate query ``q[A / body(σ)]`` first) because the
        intermediate query may temporarily lose an answer variable that the
        unifier immediately reintroduces through the rule's frontier.
        """
        head_atom = rule.head[0]
        unifier = mgu(list(atom_set) + [head_atom])
        if unifier is None:  # pragma: no cover - applicability already checked
            return None
        removed = set(atom_set)
        new_body = [unifier.apply_atom(a) for a in query.body if a not in removed]
        new_body.extend(unifier.apply_atom(a) for a in rule.body)
        new_answer = tuple(unifier.apply_term(t) for t in query.answer_terms)
        return ConjunctiveQuery(new_body, new_answer, query.head_name)

    def _reduce(
        self, query: ConjunctiveQuery, statistics: RewritingStatistics
    ) -> ConjunctiveQuery:
        """Apply query elimination when enabled (``TGD-rewrite*``)."""
        if self._eliminator is None:
            return query
        result = self._eliminator.eliminate_atoms(query)
        statistics.eliminated_atoms += result.removed_count
        return result.reduced


def rewrite(
    query: ConjunctiveQuery,
    rules: Sequence[TGD] | OntologyTheory,
    negative_constraints: Iterable[NegativeConstraint] = (),
    use_elimination: bool = False,
    use_nc_pruning: bool = False,
    max_queries: int = 200_000,
) -> RewritingResult:
    """One-shot perfect rewriting (``TGD-rewrite`` or, with elimination, ``TGD-rewrite*``)."""
    rewriter = TGDRewriter(
        rules,
        negative_constraints=negative_constraints,
        use_elimination=use_elimination,
        use_nc_pruning=use_nc_pruning,
        max_queries=max_queries,
    )
    return rewriter.rewrite(query)
