"""Atom coverage (Definition 5) — the heart of query elimination.

An atom ``a`` of a query *covers* another atom ``b`` (``a ≺ b``) when ``b``
is logically implied by ``a`` with respect to the given set of **linear**
TGDs, as witnessed by

* condition (i): every shared variable / constant of ``b`` also occurs in
  ``a`` (so dropping ``b`` loses no constant and no join except the one with
  ``a``), and
* condition (ii): a chain of TGDs ``σ1, ..., σk−1`` whose equality types
  propagate (``eq(body(σ1)) ⊆ eq(a)`` and
  ``eq(body(σj+1)) ⊆ eq(head(σj))``) and whose dependency-graph paths carry
  every shared term of ``b`` from its positions in ``a`` to its positions in
  ``b``.

**Reading of the definition.**  The paper's Definition 5 literally places the
existential quantifier over the chain *inside* the universal quantifier over
the shared terms of ``b`` ("for each i ∈ [n]: ... there exists k and TGDs
..."), i.e. each shared term may use its own chain.  That reading is unsound:
with ``σA : p(X,Y) → ∃W r(X,W)`` and ``σB : p(X,Y) → ∃W r(W,Y)`` it would
let ``p(A,B)`` cover ``r(A,B)``, although ``chase({p(a,b)})`` contains no atom
``r(a,b)``.  We therefore require a *single common chain* for all shared
terms of ``b`` (which also makes the final atom of the chain an atom of
``pred(b)`` carrying all of them, exactly what the proof of Lemma 8 needs),
and — when ``b`` has no shared terms at all — we still require *some* chain
from ``pred(a)`` to ``pred(b)``, since otherwise the definition would be
vacuously true and eliminate atoms of unrelated predicates.  Both choices are
documented in DESIGN.md and covered by unit tests.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..logic.atoms import Atom, Position
from ..logic.terms import Term, is_constant
from ..dependencies.tgd import TGD
from ..dependencies.classifiers import is_linear
from ..queries.conjunctive_query import ConjunctiveQuery
from .dependency_graph import DependencyGraph
from .equality_types import eq_subset, equality_type


@dataclass(frozen=True)
class CoverageWitness:
    """A chain of TGDs witnessing ``a ≺ b``."""

    source: Atom
    target: Atom
    chain: tuple[TGD, ...]


class CoverageChecker:
    """Decides the coverage relation ``≺`` for a fixed set of linear TGDs.

    The dependency graph and per-rule equality types are computed once; each
    ``covers(a, b, query)`` call then performs a breadth-first search over
    chain states, which is polynomial for a fixed rule set (the paper treats
    the rule set as fixed and calls the per-pair check constant-time).
    """

    def __init__(self, rules: Sequence[TGD], max_states: int = 100_000) -> None:
        rules = list(rules)
        if not is_linear(rules):
            raise ValueError(
                "query elimination (atom coverage) is only sound for linear TGDs"
            )
        for rule in rules:
            if not rule.is_normalized:
                raise ValueError(f"rule {rule!r} must be normalised first")
        self._rules = tuple(rules)
        self._graph = DependencyGraph(rules)
        self._max_states = max_states

    @property
    def graph(self) -> DependencyGraph:
        """The dependency graph of the rule set."""
        return self._graph

    @property
    def rules(self) -> tuple[TGD, ...]:
        """The rule set."""
        return self._rules

    # -- the coverage relation ---------------------------------------------------

    def covers(
        self, source: Atom, target: Atom, query: ConjunctiveQuery
    ) -> CoverageWitness | None:
        """Return a witness for ``source ≺ target`` w.r.t. *query*, or ``None``.

        *source* and *target* must be distinct atoms of ``body(query)``.
        """
        if source == target:
            return None
        shared_terms = self._relevant_terms(target, query)
        # Condition (i): every shared term of the target occurs in the source.
        source_terms = set(source.terms)
        for term in shared_terms:
            if term not in source_terms:
                return None
        chain = self._find_chain(source, target, shared_terms)
        if chain is None:
            return None
        return CoverageWitness(source, target, chain)

    def cover_set(
        self, target: Atom, query: ConjunctiveQuery
    ) -> frozenset[Atom]:
        """``cover(target)``: the body atoms of *query* that cover *target*."""
        return frozenset(
            atom
            for atom in query.body
            if atom != target and self.covers(atom, target, query) is not None
        )

    def cover_sets(self, query: ConjunctiveQuery) -> dict[Atom, frozenset[Atom]]:
        """The cover set of every body atom of *query*."""
        return {atom: self.cover_set(atom, query) for atom in query.body}

    # -- internals -------------------------------------------------------------------

    def _relevant_terms(
        self, target: Atom, query: ConjunctiveQuery
    ) -> tuple[Term, ...]:
        """Shared variables and constants of *target* (the ``t1, ..., tn`` of Def. 5)."""
        relevant: list[Term] = []
        for term in target.terms:
            if term in relevant:
                continue
            if is_constant(term) or query.is_shared(term):
                relevant.append(term)
        return tuple(relevant)

    def _find_chain(
        self, source: Atom, target: Atom, shared_terms: Sequence[Term]
    ) -> tuple[TGD, ...] | None:
        """Breadth-first search for a common TGD chain witnessing condition (ii)."""
        target_positions: dict[Term, frozenset[Position]] = {
            term: target.positions_of(term) for term in shared_terms
        }
        start_positions: dict[Term, frozenset[Position]] = {
            term: source.positions_of(term) for term in shared_terms
        }
        source_eq = equality_type(source)

        def accepts(last_rule: TGD, reachable: dict[Term, frozenset[Position]]) -> bool:
            head_atom = last_rule.head[0]
            if head_atom.predicate != target.predicate:
                return False
            return all(
                target_positions[term] <= reachable[term] for term in shared_terms
            )

        # Initial expansion: chains of length one.
        queue: deque[tuple[TGD, dict[Term, frozenset[Position]], tuple[TGD, ...]]] = deque()
        visited: set[tuple[TGD, tuple[frozenset[Position], ...]]] = set()
        explored = 0
        for rule in self._rules:
            body_atom = rule.body[0]
            if body_atom.predicate != source.predicate:
                continue
            if not equality_type(body_atom).is_subset_of(source_eq):
                continue
            reachable = {
                term: self._graph.successors(start_positions[term], rule)
                for term in shared_terms
            }
            state_key = (rule, tuple(reachable[t] for t in shared_terms))
            if state_key in visited:
                continue
            visited.add(state_key)
            chain = (rule,)
            if accepts(rule, reachable):
                return chain
            queue.append((rule, reachable, chain))

        while queue:
            last_rule, reachable, chain = queue.popleft()
            explored += 1
            if explored > self._max_states:
                return None
            head_atom = last_rule.head[0]
            for rule in self._rules:
                body_atom = rule.body[0]
                if body_atom.predicate != head_atom.predicate:
                    continue
                if not eq_subset(body_atom, head_atom):
                    continue
                next_reachable = {
                    term: self._graph.successors(reachable[term], rule)
                    for term in shared_terms
                }
                if shared_terms and any(not next_reachable[t] for t in shared_terms):
                    # Some shared term cannot be propagated any further, so no
                    # extension of this chain can ever reach its target
                    # positions; the chain is dead.
                    continue
                state_key = (rule, tuple(next_reachable[t] for t in shared_terms))
                if state_key in visited:
                    continue
                visited.add(state_key)
                next_chain = chain + (rule,)
                if accepts(rule, next_reachable):
                    return next_chain
                queue.append((rule, next_reachable, next_chain))
        return None


def covers(
    source: Atom,
    target: Atom,
    query: ConjunctiveQuery,
    rules: Iterable[TGD],
) -> bool:
    """One-shot convenience wrapper around :class:`CoverageChecker`."""
    checker = CoverageChecker(list(rules))
    return checker.covers(source, target, query) is not None
