"""The dependency graph of a set of TGDs (Definition 3, Figure 2).

The dependency graph is a labelled directed multigraph whose nodes are the
*positions* of the schema and which has an edge ``(πb, πh)`` labelled ``σ``
whenever the same variable occurs at position ``πb`` in ``body(σ)`` and at
position ``πh`` in ``head(σ)``.  A path therefore describes a *possible* way
of propagating a term between positions during the chase; combined with the
equality-type conditions it becomes a *guaranteed* propagation, which is what
atom coverage (Definition 5) exploits.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from ..logic.atoms import Position
from ..logic.terms import is_variable
from ..dependencies.tgd import TGD, schema_positions


@dataclass(frozen=True)
class DependencyEdge:
    """A labelled edge ``source --rule--> target`` of the dependency graph."""

    source: Position
    target: Position
    rule: TGD

    def __repr__(self) -> str:
        label = self.rule.label or "σ"
        return f"{self.source!r} -[{label}]-> {self.target!r}"


class DependencyGraph:
    """Labelled directed multigraph over the positions of a schema."""

    def __init__(self, rules: Sequence[TGD]) -> None:
        self._rules = tuple(rules)
        self._edges: list[DependencyEdge] = []
        self._by_source: dict[Position, list[DependencyEdge]] = defaultdict(list)
        self._by_rule: dict[TGD, list[DependencyEdge]] = defaultdict(list)
        self._nodes: set[Position] = set(schema_positions(rules))
        self._build()

    def _build(self) -> None:
        for rule in self._rules:
            body_positions: dict = defaultdict(set)
            for atom in rule.body:
                for index, term in enumerate(atom.terms, start=1):
                    if is_variable(term):
                        body_positions[term].add(Position(atom.predicate, index))
            for head_atom in rule.head:
                for index, term in enumerate(head_atom.terms, start=1):
                    if not is_variable(term) or term not in body_positions:
                        continue
                    target = Position(head_atom.predicate, index)
                    for source in body_positions[term]:
                        edge = DependencyEdge(source, target, rule)
                        self._edges.append(edge)
                        self._by_source[source].append(edge)
                        self._by_rule[rule].append(edge)
                        self._nodes.add(source)
                        self._nodes.add(target)

    # -- accessors -------------------------------------------------------------

    @property
    def nodes(self) -> frozenset[Position]:
        """All positions known to the graph."""
        return frozenset(self._nodes)

    @property
    def edges(self) -> tuple[DependencyEdge, ...]:
        """All labelled edges."""
        return tuple(self._edges)

    @property
    def rules(self) -> tuple[TGD, ...]:
        """The TGDs the graph was built from."""
        return self._rules

    def edges_from(self, source: Position) -> tuple[DependencyEdge, ...]:
        """Edges leaving *source*."""
        return tuple(self._by_source.get(source, ()))

    def edges_labelled(self, rule: TGD) -> tuple[DependencyEdge, ...]:
        """Edges labelled by *rule*."""
        return tuple(self._by_rule.get(rule, ()))

    def successors(
        self, sources: Iterable[Position], rule: TGD
    ) -> frozenset[Position]:
        """Positions reachable from *sources* via a single edge labelled *rule*."""
        sources = set(sources)
        return frozenset(
            edge.target
            for source in sources
            for edge in self._by_source.get(source, ())
            if edge.rule == rule
        )

    def has_edge(self, source: Position, target: Position, rule: TGD) -> bool:
        """``True`` iff the labelled edge exists."""
        return any(
            edge.target == target and edge.rule == rule
            for edge in self._by_source.get(source, ())
        )

    def walk(
        self, start: Position, labels: Sequence[TGD]
    ) -> Iterator[tuple[Position, ...]]:
        """Enumerate the paths starting at *start* whose edge labels are *labels*."""
        def extend(path: tuple[Position, ...], remaining: Sequence[TGD]):
            if not remaining:
                yield path
                return
            rule, rest = remaining[0], remaining[1:]
            for edge in self._by_source.get(path[-1], ()):  # noqa: B905
                if edge.rule == rule:
                    yield from extend(path + (edge.target,), rest)

        yield from extend((start,), labels)

    def to_dot(self) -> str:
        """Render the graph in Graphviz DOT format (Figure 2 of the paper)."""
        lines = ["digraph dependency_graph {"]
        for node in sorted(self._nodes, key=repr):
            lines.append(f'  "{node!r}";')
        for edge in self._edges:
            label = edge.rule.label or "σ"
            lines.append(f'  "{edge.source!r}" -> "{edge.target!r}" [label="{label}"];')
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"DependencyGraph({len(self._nodes)} positions, {len(self._edges)} edges, "
            f"{len(self._rules)} rules)"
        )
