"""Applicability and factorizability (Definitions 1 and 2 of the paper).

These two notions drive the rewriting algorithm of Section 5:

* **Applicability** (Definition 1) tells when a TGD ``σ`` may be used as a
  rewriting rule on a set ``A`` of body atoms of a query ``q``:
  ``A ∪ {head(σ)}`` must unify, and no atom of ``A`` may hold a constant or a
  *shared* variable of ``q`` at the existential position ``πσ`` of the head.
  Dropping the condition makes the rewriting unsound (Example 3).

* **Factorizability** (Definition 2) identifies sets of atoms whose shared
  existential variable necessarily comes from one and the same chase atom, so
  they can be unified without loss of information.  The restricted
  factorisation step is what keeps the rewriting complete (Example 4) without
  the exhaustive factorisations of QuOnto-style algorithms.

Both are stated for a *normalised* TGD: single head atom, at most one
existential variable occurring once, so ``πσ`` is well defined.

Because the rewriter re-asks the same applicability questions for hundreds
of structurally similar CQs, this module also houses the engine's two memo
layers (shared across every query of a workload run):

* :class:`RuleIndex` — the head-predicate index that keeps non-candidate
  TGDs off the hot path entirely;
* :class:`RenameApartCache` — a per-rule pool of freshly renamed rule
  copies, so renaming a TGD apart from a query is a disjointness probe
  instead of a substitution walk;
* :class:`ApplicabilityMemo` — a per-``(rule, atom-set shape)`` outcome
  table that makes repeated Definition 1 checks (including their MGU
  attempts) a single dictionary lookup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from ..logic.atoms import Atom, Predicate, atoms_predicates
from ..logic.substitution import Substitution
from ..logic.terms import Variable, is_constant, is_variable
from ..logic.unification import UnificationMemo, atom_sequence_profile, mgu
from ..dependencies.tgd import TGD
from ..queries.conjunctive_query import ConjunctiveQuery


class RuleIndex:
    """Head-predicate index over a normalised TGD set.

    Both steps of Algorithm 1 only ever use a TGD ``σ`` on a query ``q`` when
    some body atom of ``q`` carries the predicate of ``head(σ)`` — otherwise
    neither an applicable set (Definition 1) nor a factorizable set
    (Definition 2) can exist.  Indexing the rules by head predicate lets the
    rewriter touch only candidate rules per query instead of scanning Σ,
    which for ontologies with dozens of TGDs (Table 1) removes most
    rename-apart and unification work from the hot path.
    """

    __slots__ = ("_rules", "_by_head")

    def __init__(self, rules: Iterable[TGD]) -> None:
        self._rules: tuple[TGD, ...] = tuple(rules)
        by_head: dict[Predicate, list[tuple[int, TGD]]] = {}
        for position, rule in enumerate(self._rules):
            if not rule.is_single_head:
                raise ValueError(f"{rule!r} must be normalised (single head atom)")
            by_head.setdefault(rule.head[0].predicate, []).append((position, rule))
        self._by_head: dict[Predicate, tuple[tuple[int, TGD], ...]] = {
            predicate: tuple(entries) for predicate, entries in by_head.items()
        }

    @property
    def rules(self) -> tuple[TGD, ...]:
        """All indexed rules, in insertion order."""
        return self._rules

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[TGD]:
        return iter(self._rules)

    @property
    def head_predicates(self) -> frozenset[Predicate]:
        """The predicates produced by some rule head."""
        return frozenset(self._by_head)

    def rules_for(self, predicate: Predicate) -> tuple[TGD, ...]:
        """The rules whose head predicate is *predicate*, in rule order."""
        return tuple(rule for _, rule in self._by_head.get(predicate, ()))

    def candidate_rules(self, query: ConjunctiveQuery) -> list[TGD]:
        """The rules whose head predicate occurs in ``body(query)``.

        The result preserves the global rule order, so swapping a linear scan
        of Σ for this lookup leaves the rewriting exploration deterministic.
        """
        entries: list[tuple[int, TGD]] = []
        for predicate in atoms_predicates(query.body):
            entries.extend(self._by_head.get(predicate, ()))
        entries.sort(key=lambda entry: entry[0])
        return [rule for _, rule in entries]

    def fan_out(self, query: ConjunctiveQuery) -> int:
        """How many rule applications *query* can trigger per rewriting step.

        The count of ``(body predicate, rule)`` pairs with matching head
        predicate — the work one frontier member represents, which the
        ``auto`` scheduling strategy uses to size a generation's CPU cost
        without expanding anything.
        """
        by_head = self._by_head
        return sum(
            len(by_head.get(predicate, ()))
            for predicate in atoms_predicates(query.body)
        )


class RenameApartCache:
    """A per-rule pool of variable-refreshed TGD copies, minted deterministically.

    The rewriting and factorisation steps must use a rule whose variables
    are disjoint from the query's.  Renaming on every (query, rule) pair
    rebuilds the same substituted atoms thousands of times; instead the
    cache keeps, per rule, a pool of fully refreshed copies and serves the
    first one whose variable set is disjoint from the query's — a
    frozenset probe.

    The ``k``-th copy of rule ``rule_key`` always carries the variables
    ``W<rule_key>_<k>_1, W<rule_key>_<k>_2, …``: minting depends only on
    the rule and the copy's position in the pool, never on how many
    copies other rules (or earlier queries on the same engine) consumed.
    Together with the in-order disjointness probe this makes the served
    copy a pure function of ``(rule, query variables)``, so a rewriting
    computed on a warmed-up engine is *byte-identical* to one computed on
    a fresh engine — the invariant the parallel compilation path relies
    on to keep worker output equal to the sequential path.

    Any copy whose variables avoid the query is interchangeable with the
    output of :meth:`TGD.rename_apart` — the rewriting only ever uses the
    renamed rule up to α-equivalence, and generated queries are interned
    modulo variable renaming anyway.

    The cache is shared by every expansion of an engine, including
    concurrent ones under :class:`repro.scheduling.ThreadedStrategy`; a
    lock around the probe-and-mint keeps pool growth consistent, so the
    served copy stays the same pure function of ``(rule, query
    variables)`` no matter how many threads expand at once.
    """

    __slots__ = ("_pools", "_pool_size", "_lock", "hits", "misses")

    def __init__(self, pool_size: int = 8) -> None:
        import threading

        # ``pool_size`` is kept for API compatibility; pools now grow on
        # demand (they stay tiny in practice: one copy per nesting level of
        # the same rule in a derivation).
        self._pools: dict[object, list[tuple[TGD, frozenset[Variable]]]] = {}
        self._pool_size = pool_size
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _mint(rule_key: object, rule: TGD, position: int) -> TGD:
        """Deterministically refresh *rule* into its *position*-th pooled copy."""
        from ..logic.terms import VariableFactory

        return rule.refresh(VariableFactory(prefix=f"W{rule_key}_{position}_"))

    def rename(
        self, rule_key: object, rule: TGD, avoid: frozenset[Variable], factory=None
    ) -> TGD:
        """A copy of *rule* whose variables are disjoint from *avoid*.

        *rule_key* must identify the rule stably across calls (the rule's
        position in the rewriter's rule tuple).  *factory* is accepted for
        backwards compatibility and ignored: copies are minted from the
        deterministic per-``(rule_key, position)`` namespace instead, so the
        returned copy does not depend on the engine's history.
        """
        with self._lock:
            pool = self._pools.setdefault(rule_key, [])
            for copy, copy_variables in pool:
                if copy_variables.isdisjoint(avoid):
                    self.hits += 1
                    return copy
            self.misses += 1
            while True:
                refreshed = self._mint(rule_key, rule, len(pool))
                variables = refreshed.body_variables | refreshed.head_variables
                pool.append((refreshed, variables))
                if variables.isdisjoint(avoid):
                    return refreshed


class ApplicabilityMemo:
    """Memoised Definition 1 checks, keyed by ``(rule, atom-set shape)``.

    The outcome of :func:`is_applicable` depends only on the rule (up to
    renaming) and on the *shape* of the candidate atom set: its
    predicates, its variable-equality pattern, its constants, and which of
    its variables are shared in the surrounding query.  All of that is
    captured by :func:`repro.logic.unification.atom_sequence_profile` with
    the query's shared variables as the marked set — so the boolean can be
    cached across every query of a run, and the MGU attempt inside the
    check runs once per shape instead of once per query.
    """

    __slots__ = ("_memo",)

    def __init__(self) -> None:
        self._memo = UnificationMemo()

    def __len__(self) -> int:
        return len(self._memo)

    @property
    def hits(self) -> int:
        """Number of checks answered from the table."""
        return self._memo.hits

    @property
    def misses(self) -> int:
        """Number of checks actually computed (and then stored)."""
        return self._memo.misses

    def is_applicable(
        self,
        rule_key: object,
        rule: TGD,
        atoms: Sequence[Atom],
        query: ConjunctiveQuery,
    ) -> bool:
        """Memoised :func:`is_applicable`.

        *rule_key* must stably identify *rule* up to variable renaming:
        every call passing the same key must pass an α-equivalent rule
        (the rewriter passes the rule's position in its rule tuple and a
        copy from the :class:`RenameApartCache`).
        """
        profile = atom_sequence_profile(atoms, marked=query.shared_variables)
        return self._memo.lookup(
            (rule_key, profile), lambda: is_applicable(rule, atoms, query)
        )


def is_applicable(
    rule: TGD, atoms: Sequence[Atom], query: ConjunctiveQuery
) -> bool:
    """Definition 1: is *rule* applicable to the set *atoms* ⊆ body(*query*)?

    Assumes the rule is normalised and its variables are disjoint from the
    query's (callers rename the rule apart first).
    """
    if not rule.is_single_head:
        raise ValueError(f"{rule!r} must be normalised (single head atom)")
    atoms = list(atoms)
    if not atoms:
        return False
    head_atom = rule.head[0]
    if any(atom.predicate != head_atom.predicate for atom in atoms):
        return False
    # Condition (i): A ∪ {head(σ)} unifies.
    if mgu(atoms + [head_atom]) is None:
        return False
    # Condition (ii): no constant / shared variable of q sits at πσ.
    existential_position = rule.existential_position
    if existential_position is None:
        return True
    index = existential_position.index
    for atom in atoms:
        term = atom[index]
        if is_constant(term) or query.is_shared(term):
            return False
    return True


def applicable_atom_sets(
    rule: TGD,
    query: ConjunctiveQuery,
    memo: ApplicabilityMemo | None = None,
    rule_key: object = None,
) -> Iterator[tuple[Atom, ...]]:
    """Enumerate the subsets ``A ⊆ body(q)`` to which *rule* is applicable.

    Only atoms whose predicate matches the rule's head predicate can belong
    to such a set, so the enumeration is over the non-empty subsets of those
    candidate atoms (singletons first, then growing, in a deterministic
    order).  In the vast majority of cases this is a handful of atoms.

    When *memo* (and its *rule_key*) is given, each Definition 1 check is
    answered through the :class:`ApplicabilityMemo` instead of being
    recomputed.
    """
    if not rule.is_single_head:
        raise ValueError(f"{rule!r} must be normalised (single head atom)")
    head_predicate = rule.head[0].predicate
    candidates = [atom for atom in query.body if atom.predicate == head_predicate]
    if not candidates:
        return
    total = len(candidates)
    # Enumerate subsets ordered by size (stable order within a size).
    for size in range(1, total + 1):
        for subset in _combinations(candidates, size):
            if memo is None:
                applicable = is_applicable(rule, subset, query)
            else:
                applicable = memo.is_applicable(rule_key, rule, subset, query)
            if applicable:
                yield tuple(subset)


def _combinations(items: Sequence[Atom], size: int) -> Iterator[tuple[Atom, ...]]:
    """Deterministic k-subsets of *items* preserving input order."""
    from itertools import combinations

    yield from combinations(items, size)


@dataclass(frozen=True)
class FactorizableSet:
    """A factorizable set ``S`` together with its witnessing variable and MGU."""

    atoms: tuple[Atom, ...]
    variable: Variable
    unifier: Substitution


def factorizable_sets(
    rule: TGD, query: ConjunctiveQuery
) -> Iterator[FactorizableSet]:
    """Enumerate the sets ``S ⊆ body(q)`` factorizable w.r.t. *rule* (Definition 2).

    For a normalised rule with existential position ``πσ``, a set ``S`` is
    factorizable iff there is a variable ``V`` occurring in every atom of
    ``S`` *only at position* ``πσ`` and nowhere else in the query (body
    outside ``S``, nor in the head for non-Boolean queries).  Consequently
    ``S`` is exactly the set of body atoms containing ``V``, which makes the
    enumeration linear in the number of query variables.
    """
    if not rule.is_single_head:
        raise ValueError(f"{rule!r} must be normalised (single head atom)")
    existential_position = rule.existential_position
    if existential_position is None:
        return
    head_predicate = rule.head[0].predicate
    index = existential_position.index

    atoms_with_variable: dict[Variable, list[Atom]] = {}
    for atom in query.body:
        for term in set(atom.terms):
            if is_variable(term):
                atoms_with_variable.setdefault(term, []).append(atom)

    for variable in sorted(atoms_with_variable, key=str):
        atoms = atoms_with_variable[variable]
        if len(atoms) < 2:
            continue
        if variable in query.answer_variables:
            # For non-Boolean CQs the witnessing variable must not occur in
            # the head, otherwise unifying would lose an answer binding.
            continue
        if any(atom.predicate != head_predicate for atom in atoms):
            continue
        # V must occur only at πσ in every atom of S.
        occurs_elsewhere = False
        for atom in atoms:
            for position, term in enumerate(atom.terms, start=1):
                if term == variable and position != index:
                    occurs_elsewhere = True
                    break
            if occurs_elsewhere:
                break
        if occurs_elsewhere:
            continue
        unifier = mgu(atoms)
        if unifier is None:
            continue
        yield FactorizableSet(tuple(atoms), variable, unifier)


def is_factorizable(
    rule: TGD, atoms: Sequence[Atom], query: ConjunctiveQuery
) -> bool:
    """Definition 2 membership test for an explicit candidate set *atoms*."""
    atom_set = set(atoms)
    if len(atom_set) < 2:
        return False
    for candidate in factorizable_sets(rule, query):
        if set(candidate.atoms) == atom_set:
            return True
    return False
