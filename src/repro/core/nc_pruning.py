"""Pruning the rewriting with negative constraints (Section 5.1).

Under the standing assumption that the theory ``D ∪ Σ ∪ Σ⊥`` is consistent,
any CQ generated during the rewriting whose body embeds the body of a
negative constraint can never be entailed by ``chase(D, Σ)`` — evaluating it
would witness a violation of the constraint.  Such queries (and everything
that would be generated from them) can therefore be dropped from the
rewriting without affecting completeness, further shrinking the output.

If the *input* query itself embeds a constraint body, the rewriting is the
empty UCQ: the query is unsatisfiable w.r.t. every consistent database.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..logic.homomorphism import has_homomorphism
from ..dependencies.constraints import NegativeConstraint
from ..queries.conjunctive_query import ConjunctiveQuery


class NegativeConstraintPruner:
    """Checks queries against a set of negative constraints."""

    def __init__(self, constraints: Iterable[NegativeConstraint]) -> None:
        self._constraints = tuple(constraints)

    @property
    def constraints(self) -> tuple[NegativeConstraint, ...]:
        """The negative constraints used for pruning."""
        return self._constraints

    def violated_by(self, query: ConjunctiveQuery) -> NegativeConstraint | None:
        """Return a constraint whose body maps into ``body(query)``, if any.

        The query's terms are frozen (its variables act as constants of the
        canonical database), so the check is exactly "does the BCQ of the
        constraint answer positively on the canonical database of the query".
        """
        frozen_body, _ = query.freeze()
        for constraint in self._constraints:
            if has_homomorphism(constraint.body, frozen_body):
                return constraint
        return None

    def is_unsatisfiable(self, query: ConjunctiveQuery) -> bool:
        """``True`` iff the query can be pruned (it embeds some constraint body)."""
        return self.violated_by(query) is not None


def prune_unsatisfiable(
    queries: Sequence[ConjunctiveQuery],
    constraints: Iterable[NegativeConstraint],
) -> list[ConjunctiveQuery]:
    """Filter out the queries that embed the body of some negative constraint."""
    pruner = NegativeConstraintPruner(constraints)
    return [query for query in queries if not pruner.is_unsatisfiable(query)]
