"""Equality types of atoms (Definition 4).

The equality type ``eq(a)`` of an atom ``a = r(t1, ..., tn)`` records which
positions of ``a`` carry the same (non-constant) term and which positions
carry which constant:

``eq(a) = {r[i] = r[j] | ti, tj ∉ Δc and ti = tj} ∪ {r[i] = c | ti = c ∈ Δc}``

Equality types describe when the atom produced by firing a TGD during the
chase is guaranteed to trigger the next TGD of a chain:
``eq(body(σ')) ⊆ eq(head(σ))`` ensures a substitution maps ``body(σ')`` onto
``head(σ)``, hence the chain propagates (Section 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering

from ..logic.atoms import Atom
from ..logic.terms import is_constant


@dataclass(frozen=True)
@total_ordering
class PositionEquality:
    """``r[i] = r[j]``: the same non-constant term occurs at positions *i* and *j*."""

    left: int
    right: int

    def __post_init__(self) -> None:
        if self.left >= self.right:
            raise ValueError("PositionEquality expects left < right")

    def __lt__(self, other: object) -> bool:
        if isinstance(other, PositionEquality):
            return (self.left, self.right) < (other.left, other.right)
        return NotImplemented  # pragma: no cover

    def __repr__(self) -> str:
        return f"[{self.left}]=[{self.right}]"


@dataclass(frozen=True)
class ConstantEquality:
    """``r[i] = c``: the constant *c* occurs at position *i*."""

    position: int
    constant: object

    def __repr__(self) -> str:
        return f"[{self.position}]={self.constant}"


@dataclass(frozen=True)
class EqualityType:
    """The equality type of an atom: its predicate plus the equalities it satisfies.

    The predicate is kept so that subset comparisons between equality types of
    atoms over *different* predicates are rejected (a chain condition such as
    ``eq(body(σ')) ⊆ eq(head(σ))`` only makes sense when the two atoms share
    the predicate, which is implicit in the paper's path construction).
    """

    predicate_name: str
    arity: int
    equalities: frozenset

    def is_subset_of(self, other: "EqualityType") -> bool:
        """``True`` iff both atoms share the predicate and the equalities are included."""
        return (
            self.predicate_name == other.predicate_name
            and self.arity == other.arity
            and self.equalities <= other.equalities
        )

    def __le__(self, other: "EqualityType") -> bool:
        return self.is_subset_of(other)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{self.predicate_name}{e!r}" for e in sorted(self.equalities, key=repr)
        )
        return "{" + inner + "}"


def equality_type(atom: Atom) -> EqualityType:
    """Compute ``eq(atom)`` per Definition 4."""
    equalities: set = set()
    for i in range(1, atom.arity + 1):
        term_i = atom[i]
        if is_constant(term_i):
            equalities.add(ConstantEquality(i, term_i.value))
            continue
        for j in range(i + 1, atom.arity + 1):
            term_j = atom[j]
            if not is_constant(term_j) and term_i == term_j:
                equalities.add(PositionEquality(i, j))
    return EqualityType(atom.name, atom.arity, frozenset(equalities))


def eq_subset(inner: Atom, outer: Atom) -> bool:
    """``eq(inner) ⊆ eq(outer)`` — the chain-propagation condition of Section 6."""
    return equality_type(inner).is_subset_of(equality_type(outer))
