"""The paper's contribution: TGD-rewrite, query elimination and their building blocks."""

from .applicability import (
    FactorizableSet,
    RuleIndex,
    applicable_atom_sets,
    factorizable_sets,
    is_applicable,
    is_factorizable,
)
from .coverage import CoverageChecker, CoverageWitness, covers
from .dependency_graph import DependencyEdge, DependencyGraph
from .elimination import EliminationResult, QueryEliminator, eliminate
from .frontier import (
    CandidateQuery,
    Expansion,
    KernelState,
    RewriteFrontier,
    merge_expansion,
)
from .equality_types import (
    ConstantEquality,
    EqualityType,
    PositionEquality,
    eq_subset,
    equality_type,
)
from .nc_pruning import NegativeConstraintPruner, prune_unsatisfiable
from .rewriter import (
    RewritingBudgetExceeded,
    RewritingResult,
    RewritingStatistics,
    TGDRewriter,
    rewrite,
)

__all__ = [
    "CandidateQuery",
    "ConstantEquality",
    "CoverageChecker",
    "CoverageWitness",
    "DependencyEdge",
    "DependencyGraph",
    "EliminationResult",
    "EqualityType",
    "Expansion",
    "FactorizableSet",
    "KernelState",
    "RewriteFrontier",
    "merge_expansion",
    "NegativeConstraintPruner",
    "PositionEquality",
    "QueryEliminator",
    "RewritingBudgetExceeded",
    "RewritingResult",
    "RewritingStatistics",
    "RuleIndex",
    "TGDRewriter",
    "applicable_atom_sets",
    "covers",
    "eliminate",
    "eq_subset",
    "equality_type",
    "factorizable_sets",
    "is_applicable",
    "is_factorizable",
    "prune_unsatisfiable",
    "rewrite",
]
