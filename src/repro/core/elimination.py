"""Query elimination (Section 6): dropping TGD-implied atoms from a query.

Given a BCQ/CQ ``q`` and a set Σ of linear TGDs, an atom ``b`` of ``body(q)``
that is *covered* (Definition 5) by another atom ``a`` of the same body is
logically implied by ``a`` w.r.t. Σ (Lemma 8) and can therefore be dropped
without changing the answers of ``q`` on any instance satisfying Σ.  Dropping
atoms early — after every factorisation and rewriting step — prevents the
rewriting algorithm from ever expanding them, which is where the dramatic
reductions of Table 1 come from.

The elimination procedure follows the paper verbatim: walk the body atoms in
the order given by an *elimination strategy* (any permutation — Lemma 9 shows
the number of eliminated atoms does not depend on the order); an atom with a
non-empty cover set is eliminated and removed from the cover sets of the
remaining atoms (so two atoms that only cover each other are never both
dropped).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..logic.atoms import Atom
from ..dependencies.tgd import TGD
from ..queries.conjunctive_query import ConjunctiveQuery
from .coverage import CoverageChecker


@dataclass(frozen=True)
class EliminationResult:
    """Outcome of query elimination on a single query."""

    original: ConjunctiveQuery
    reduced: ConjunctiveQuery
    eliminated: tuple[Atom, ...]
    strategy: tuple[Atom, ...]

    @property
    def removed_count(self) -> int:
        """Number of atoms dropped."""
        return len(self.eliminated)


class QueryEliminator:
    """Applies query elimination for a fixed set of linear TGDs."""

    def __init__(self, rules: Sequence[TGD], checker: CoverageChecker | None = None) -> None:
        self._checker = checker if checker is not None else CoverageChecker(list(rules))

    @property
    def checker(self) -> CoverageChecker:
        """The underlying coverage checker (shared dependency graph)."""
        return self._checker

    def eliminate_atoms(
        self,
        query: ConjunctiveQuery,
        strategy: Sequence[Atom] | None = None,
    ) -> EliminationResult:
        """Compute ``eliminate(q, S, Σ)`` for the given strategy.

        When *strategy* is ``None`` the body order of the query is used; by
        Lemma 9 every strategy removes the same number of atoms.
        """
        order = tuple(strategy) if strategy is not None else tuple(query.body)
        if set(order) != set(query.body):
            raise ValueError("the elimination strategy must be a permutation of the body")
        cover = {
            atom: set(self._checker.cover_set(atom, query)) for atom in query.body
        }
        eliminated: list[Atom] = []
        for atom in order:
            if cover[atom]:
                eliminated.append(atom)
                for other in query.body:
                    if other not in eliminated:
                        cover[other].discard(atom)
        reduced = query.drop_atoms(eliminated)
        return EliminationResult(
            original=query,
            reduced=reduced,
            eliminated=tuple(eliminated),
            strategy=order,
        )

    def eliminate(self, query: ConjunctiveQuery) -> ConjunctiveQuery:
        """The reduced query ``eliminate(q, Σ)`` (default strategy)."""
        return self.eliminate_atoms(query).reduced


def eliminate(query: ConjunctiveQuery, rules: Sequence[TGD]) -> ConjunctiveQuery:
    """One-shot convenience wrapper around :class:`QueryEliminator`."""
    return QueryEliminator(rules).eliminate(query)
