"""The frontier kernel behind ``TGD-rewrite``: explicit state, pure steps.

Algorithm 1 is a worklist fixpoint: take an unexplored CQ, apply every
factorisation (Definition 2) and rewriting (Definition 1) step it admits,
keep whatever is new, repeat.  The crucial structural fact — the one
QuOnto/Requiem-style rewriters exploit for parallelism — is that the two
steps only ever *read* the query being expanded: which candidates a CQ
produces depends on the CQ and the (immutable) rule set alone, never on
what else has been generated.  This module makes that explicit by
splitting the loop into three pieces:

* :class:`RewriteFrontier` — the pending CQs of the current *generation*
  plus a generation counter.  A generation is drained atomically
  (:meth:`~RewriteFrontier.take_generation`); its members can be expanded
  in any order, or all at once, because expansion is pure.
* **expansion** — :meth:`repro.core.rewriter.TGDRewriter.expand` turns one
  CQ into an :class:`Expansion`: the ordered tuple of
  :class:`CandidateQuery` results of every factorisation and rewriting
  step, each already reduced (query elimination) and marked if pruned by a
  negative constraint.  No interning, no labels, no shared mutation.
* **merge** — :func:`merge_expansion` folds one expansion into the
  :class:`KernelState` (interning store, labels, next frontier,
  statistics).  The merge is the *only* place results are deduplicated and
  labelled, and it always runs single-threaded in expansion order, which
  is what keeps the final rewriting byte-identical under every
  :class:`~repro.scheduling.SchedulingStrategy`.

The kernel iterates generations breadth-first: generation ``n + 1`` is the
merge of the expansions of generation ``n``, in frontier order.  The set
of CQs reached — and therefore every pinned Table 1 size — is independent
of the exploration order (the steps of Algorithm 1 commute), and the
generation discipline additionally fixes the *representatives* and their
insertion order, so sequential, threaded and process-chunked schedules all
write the same bytes.

A :class:`KernelState` is also the unit of checkpointing: between
generations it fully describes the run, so
:class:`repro.cache.checkpoint.FrontierCheckpoint` can persist it and a
killed compilation can resume from the last completed generation instead
of restarting (the resumed run finishes with an identical result).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..queries.conjunctive_query import ConjunctiveQuery
from ..queries.ucq import QuerySet

#: Labels of Algorithm 1: rewriting-step results are part of the final
#: rewriting, factorisation-step results only enable further steps.
LABEL_REWRITING = 1
LABEL_FACTORIZATION = 0


@dataclass(frozen=True)
class CandidateQuery:
    """One candidate CQ produced by expanding a query.

    The candidate is already *reduced* (query elimination applied, when the
    engine runs ``TGD-rewrite*``) and carries everything the merge point
    needs to account for it without re-deriving anything:

    ``label``
        :data:`LABEL_REWRITING` for rewriting-step results (they belong to
        the final rewriting), :data:`LABEL_FACTORIZATION` for
        factorisation-step results (kept only to enable further steps).
    ``pruned``
        ``True`` when a negative constraint proves the candidate can never
        be entailed by a consistent database (Section 5.1); the merge
        counts it and drops it.
    ``eliminated_atoms``
        How many atoms query elimination removed while reducing the
        candidate (0 when elimination is off).
    """

    query: ConjunctiveQuery
    label: int
    pruned: bool = False
    eliminated_atoms: int = 0


@dataclass(frozen=True)
class Expansion:
    """The complete, ordered result of expanding one query.

    ``candidates`` preserves the order Algorithm 1 generates them in —
    every factorisation step first, then every rewriting step, each in
    rule-index order — because the merge point replays them in this order
    to keep interning deterministic.  ``rules_considered`` /
    ``rules_skipped`` record how the head-predicate rule index behaved for
    this query (they feed the run statistics at merge time, so expansion
    stays free of shared mutation).
    """

    source: ConjunctiveQuery
    candidates: tuple[CandidateQuery, ...]
    rules_considered: int = 0
    rules_skipped: int = 0


class RewriteFrontier:
    """The pending CQs of the current generation, plus a generation counter.

    Queries join the frontier when the merge point interns them as new;
    :meth:`take_generation` drains the pending list atomically and bumps
    the counter.  Draining whole generations (instead of popping one query
    at a time) is what gives scheduling strategies a batch to spread over
    threads or worker processes.
    """

    __slots__ = ("_pending", "_generation")

    def __init__(
        self,
        pending: Iterator[ConjunctiveQuery] | list[ConjunctiveQuery] = (),
        generation: int = 0,
    ) -> None:
        self._pending: list[ConjunctiveQuery] = list(pending)
        self._generation = generation

    @property
    def generation(self) -> int:
        """Number of generations already drained."""
        return self._generation

    @property
    def pending(self) -> tuple[ConjunctiveQuery, ...]:
        """The queries awaiting expansion, in arrival order."""
        return tuple(self._pending)

    def __len__(self) -> int:
        return len(self._pending)

    def __bool__(self) -> bool:
        return bool(self._pending)

    def add(self, query: ConjunctiveQuery) -> None:
        """Schedule *query* for expansion in the next generation."""
        self._pending.append(query)

    def take_generation(self) -> list[ConjunctiveQuery]:
        """Drain and return the current generation, advancing the counter."""
        batch = self._pending
        self._pending = []
        self._generation += 1
        return batch


@dataclass
class KernelState:
    """Everything the frontier kernel mutates between generations.

    ``store`` interns every CQ generated so far (modulo varianthood),
    ``labels`` carries the Algorithm 1 label of each representative,
    ``frontier`` holds the CQs not yet expanded, and ``statistics`` the
    deterministic run counters.  Between generations this tuple is the
    complete run state — which is exactly what
    :class:`repro.cache.checkpoint.FrontierCheckpoint` serialises.
    """

    store: QuerySet
    labels: dict[ConjunctiveQuery, int]
    frontier: RewriteFrontier
    statistics: "RewritingStatistics"  # noqa: F821 - import cycle (rewriter imports us)

    @classmethod
    def initial(cls, query: ConjunctiveQuery, statistics) -> "KernelState":
        """The state before the first generation: one pending label-1 query."""
        store = QuerySet()
        store.add(query)
        frontier = RewriteFrontier()
        frontier.add(query)
        return cls(
            store=store,
            labels={query: LABEL_REWRITING},
            frontier=frontier,
            statistics=statistics,
        )


def merge_expansion(state: KernelState, expansion: Expansion, max_queries: int) -> None:
    """Fold one expansion into the kernel state — the single merge point.

    Candidates are interned in expansion order; new representatives join
    the next generation's frontier, re-derivations of factorisation-only
    queries by a rewriting step are upgraded to label 1 (they become part
    of the final rewriting), and every statistics counter that the stored
    result depends on is accounted here, deterministically.  Raises
    :class:`repro.core.rewriter.RewritingBudgetExceeded` when the interned
    population passes *max_queries*.
    """
    from .rewriter import RewritingBudgetExceeded

    statistics = state.statistics
    statistics.processed_queries += 1
    statistics.rules_considered += expansion.rules_considered
    statistics.rules_skipped_by_index += expansion.rules_skipped
    for candidate in expansion.candidates:
        statistics.eliminated_atoms += candidate.eliminated_atoms
        if candidate.pruned:
            statistics.pruned_by_constraints += 1
            continue
        stored, inserted = state.store.intern(candidate.query)
        if candidate.label == LABEL_FACTORIZATION:
            if not inserted:
                continue
            state.labels[stored] = LABEL_FACTORIZATION
            state.frontier.add(stored)
            statistics.generated_by_factorization += 1
        else:
            if not inserted:
                if state.labels.get(stored) != LABEL_REWRITING:
                    # A factorization-only query re-derived by the
                    # rewriting step becomes part of the final rewriting.
                    state.labels[stored] = LABEL_REWRITING
                    statistics.generated_by_rewriting += 1
                continue
            state.labels[stored] = LABEL_REWRITING
            state.frontier.add(stored)
            statistics.generated_by_rewriting += 1
    if len(state.store) > max_queries:
        raise RewritingBudgetExceeded(
            f"rewriting exceeded the budget of {max_queries} queries; "
            "the rule set is probably not FO-rewritable"
        )
