"""Pluggable execution backends for compiled rewritings.

The serving layer's answering side: an :class:`ExecutionBackend` compiles a
UCQ rewriting into an :class:`ExecutionPlan` once, and the plan is executed
many times against the live database (see :mod:`repro.backends.base` for
the protocol and :meth:`repro.api.OBDASystem.prepare` for the lifecycle).

Backends are addressable by name::

    system.prepare(query, backend="sqlite")

``BACKENDS`` maps the registered names to their classes;
:func:`create_backend` resolves a name — or passes an already constructed
backend through.
"""

from __future__ import annotations

from .base import BackendError, ExecutionBackend, ExecutionPlan
from .memory import InMemoryBackend, InMemoryPlan
from .sqlite import SQLiteBackend, SQLitePlan

#: Registered backends by name, in default-preference order.
BACKENDS: dict[str, type[ExecutionBackend]] = {
    InMemoryBackend.name: InMemoryBackend,
    SQLiteBackend.name: SQLiteBackend,
}

#: The backend used when none is requested.
DEFAULT_BACKEND = InMemoryBackend.name


def create_backend(backend: str | ExecutionBackend | None = None) -> ExecutionBackend:
    """Resolve *backend* to an instance.

    ``None`` gives the default (in-memory) backend, a string is looked up
    in :data:`BACKENDS`, and an :class:`ExecutionBackend` instance is
    returned unchanged.
    """
    if backend is None:
        backend = DEFAULT_BACKEND
    if isinstance(backend, ExecutionBackend):
        return backend
    try:
        factory = BACKENDS[backend]
    except KeyError:
        known = ", ".join(sorted(BACKENDS))
        raise ValueError(f"unknown backend {backend!r}; known backends: {known}")
    return factory()


__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "BackendError",
    "ExecutionBackend",
    "ExecutionPlan",
    "InMemoryBackend",
    "InMemoryPlan",
    "SQLiteBackend",
    "SQLitePlan",
    "create_backend",
]
