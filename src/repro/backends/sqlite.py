"""The SQLite execution backend.

This is the repo's first *actually executed* SQL path: the UCQ rewriting is
rendered once with ``?`` placeholders for every constant
(:func:`repro.database.sql.ucq_to_parameterized_sql`) and run by SQLite, so
the paper's "hand the perfect rewriting to any relational engine" claim is
exercised end to end and differential-tested against the in-memory
evaluator.

Two modes:

* **snapshot mode** (default) — the backend owns a SQLite database
  (in-memory or at ``path``) and loads the :class:`RelationalInstance`
  into it on first execution; the loaded snapshot is keyed by the
  instance's epoch, so an unchanged database is never reloaded.  On an
  epoch bump the backend asks the instance for its change log
  (:meth:`RelationalInstance.changes_since`) and applies the *delta* —
  row inserts and deletes since the loaded epoch — instead of dropping
  and reloading every table; it falls back to a full reload when the log
  does not reach back to the loaded epoch or the delta is larger than
  the instance itself (``full_loads`` / ``incremental_loads`` count the
  split).
* **attached mode** (``attach=True``) — the backend executes against an
  existing SQLite file maintained outside this library; the instance is
  never loaded.  ``data_epoch`` then folds in SQLite's ``PRAGMA
  data_version`` so answer caches see commits made by other connections.

Value encoding: strings, ints, floats and booleans are stored natively
(SQLite's numeric comparisons match Python's ``1 == 1.0 == True``, so the
two backends agree on answers).  ``None`` and labelled nulls are encoded as
NUL-prefixed strings — SQL ``NULL`` never compares equal, which would break
joins the in-memory evaluator performs happily — and rows containing a
labelled null are filtered from answers (certain answers are constant
tuples only).  Other value types are rejected with :class:`BackendError`.

Tables are created without column types (BLOB affinity: no coercion) and
get one single-column index per attribute, mirroring the per-(position,
value) indexes of the in-memory instance.
"""

from __future__ import annotations

import sqlite3
import weakref
from typing import Hashable, Mapping, Sequence

from ..database.instance import RelationalInstance
from ..database.planning import CardinalityEstimator
from ..database.schema import RelationalSchema
from ..database.sql import ParameterizedSQL, ucq_to_parameterized_sql
from ..logic.atoms import Predicate, atoms_predicates
from ..logic.terms import Constant, Null, Term, is_null
from ..queries.ucq import UnionOfConjunctiveQueries
from .base import BackendError, ExecutionBackend, ExecutionPlan

#: Prefix reserved for encoded values; real strings starting with NUL are
#: escaped with it too, so decoding is unambiguous.
_ESCAPE = "\x00"


def encode_term(term: Term) -> object:
    """Encode a ground term as a SQLite storage value."""
    if is_null(term):
        return f"{_ESCAPE}z:{term.label}"
    value = term.value  # type: ignore[union-attr]
    if value is None:
        return f"{_ESCAPE}n:"
    if isinstance(value, str):
        if value.startswith(_ESCAPE):
            return f"{_ESCAPE}s:{value}"
        return value
    if isinstance(value, (bool, int, float)):
        return value
    raise BackendError(
        f"SQLiteBackend cannot store constant value {value!r} of type "
        f"{type(value).__name__}; supported types are str, int, float, "
        "bool and None"
    )


def decode_value(value: object) -> Term:
    """Decode a SQLite storage value back into a term."""
    if isinstance(value, str) and value.startswith(_ESCAPE):
        kind, _, rest = value[1:].partition(":")
        if kind == "z":
            return Null(int(rest))
        if kind == "n":
            return Constant(None)
        if kind == "s":
            return Constant(rest)
        raise BackendError(f"unreadable encoded value {value!r}")
    return Constant(value)


class SQLitePlan(ExecutionPlan):
    """The rewriting's parameterized SQL plus the relations it references.

    A rewriting with more disjuncts than SQLite's compound-SELECT limit
    (``SQLITE_LIMIT_COMPOUND_SELECT``, 500 by default) cannot run as one
    ``UNION`` statement, so the plan holds one statement per chunk of
    disjuncts and unions the chunk results in Python — answer sets are
    deduplicated there anyway.
    """

    def __init__(
        self,
        backend: "SQLiteBackend",
        statements: Sequence[ParameterizedSQL],
        referenced: frozenset[Predicate],
        arity: int,
        schema: RelationalSchema | None,
        queries: Sequence = (),
    ) -> None:
        self._backend = backend
        self._statements = tuple(statements)
        self._referenced = referenced
        self._arity = arity
        self._schema = schema
        # Per-disjunct execution: the member CQs, with their single-query
        # SQL rendered lazily on first use (most plans never need it).
        self._queries = tuple(queries)
        self._disjunct_statements: dict[int, ParameterizedSQL] = {}
        # Cost-ordered statements for the current database epoch (only
        # rendered when the cheapest-first order differs from the
        # rewriting's own order).
        self._ordered_key: object = None
        self._ordered_statements: tuple[ParameterizedSQL, ...] = ()
        self._last_order: tuple[int, ...] | None = None

    @property
    def sql(self) -> str:
        """The SQL text executed by this plan (``?`` placeholders).

        One statement in the common case; chunked plans render one
        statement per chunk, separated by ``;``.
        """
        return ";\n\n".join(statement.sql for statement in self._statements)

    @property
    def parameters(self) -> tuple[Constant, ...]:
        """The constants bound to the placeholders, in order."""
        return tuple(
            constant
            for statement in self._statements
            for constant in statement.parameters
        )

    @property
    def referenced_predicates(self) -> frozenset[Predicate]:
        """Relations the SQL reads (they must exist as tables)."""
        return self._referenced

    @property
    def description(self) -> str:
        return self.sql

    def _execution_statements(
        self, database: RelationalInstance
    ) -> tuple[ParameterizedSQL, ...]:
        """The statements to run, cheapest disjunct first where possible.

        In snapshot mode the :class:`RelationalInstance` *is* the data, so
        its statistics order the member CQs by estimated cost and the SQL
        is re-rendered in that order (cached per epoch).  Attached mode
        executes external tables the instance knows nothing about, so the
        pre-rendered statements run as-is.  Either way the answer set is
        identical — UNION results are deduplicated in Python.
        """
        if self._backend.attached or len(self._queries) <= 1:
            self._last_order = None
            return self._statements
        key = (id(database), database.epoch)
        if key == self._ordered_key:
            return self._ordered_statements
        estimator = CardinalityEstimator(database)
        order, _ = estimator.order_disjuncts(
            [query.body for query in self._queries]
        )
        self._last_order = order
        if order == tuple(range(len(order))):
            statements = self._statements
        else:
            reordered = [self._queries[index] for index in order]
            limit = self._backend._compound_select_limit()
            statements = tuple(
                ucq_to_parameterized_sql(
                    reordered[start : start + limit], schema=self._schema
                )
                for start in range(0, len(reordered), limit)
            )
        self._ordered_key = key
        self._ordered_statements = statements
        return statements

    def execute(
        self,
        database: RelationalInstance,
        bindings: Mapping[Constant, Constant] | None = None,
    ) -> frozenset[tuple]:
        statements = self._execution_statements(database)
        connection = self._backend.ensure_ready(
            database, self._referenced, self._schema
        )
        rows: list = []
        for statement in statements:
            parameters = [
                encode_term(
                    bindings.get(constant, constant) if bindings else constant
                )
                for constant in statement.parameters
            ]
            try:
                rows.extend(
                    connection.execute(statement.sql, parameters).fetchall()
                )
            except sqlite3.Error as error:
                raise BackendError(f"SQLite execution failed: {error}") from error
        if self._arity == 0:
            return frozenset({()}) if rows else frozenset()
        answers: set[tuple] = set()
        for row in rows:
            decoded = tuple(decode_value(value) for value in row)
            if any(is_null(term) for term in decoded):
                continue  # nulls witness joins but never appear in answers
            answers.add(decoded)
        return frozenset(answers)

    @property
    def disjunct_count(self) -> int | None:
        return len(self._queries) or None

    def execute_disjunct(
        self,
        database: RelationalInstance,
        index: int,
        bindings: Mapping[Constant, Constant] | None = None,
    ) -> frozenset[tuple]:
        """Run one member CQ of the union on its own, as SQL."""
        if not self._queries:
            raise BackendError(
                "this SQLitePlan was built without its member queries and "
                "cannot execute single disjuncts"
            )
        statement = self._disjunct_statements.get(index)
        if statement is None:
            # Raises IndexError for out-of-range indexes, like a sequence.
            query = self._queries[index]
            statement = ucq_to_parameterized_sql([query], schema=self._schema)
            self._disjunct_statements[index] = statement
        connection = self._backend.ensure_ready(
            database, self._referenced, self._schema
        )
        parameters = [
            encode_term(bindings.get(constant, constant) if bindings else constant)
            for constant in statement.parameters
        ]
        try:
            rows = connection.execute(statement.sql, parameters).fetchall()
        except sqlite3.Error as error:
            raise BackendError(f"SQLite execution failed: {error}") from error
        if self._arity == 0:
            return frozenset({()}) if rows else frozenset()
        answers: set[tuple] = set()
        for row in rows:
            decoded = tuple(decode_value(value) for value in row)
            if any(is_null(term) for term in decoded):
                continue
            answers.add(decoded)
        return frozenset(answers)

    def explain(self, database: RelationalInstance) -> str:
        lines = ["backend: sqlite"]
        if self._backend.attached:
            lines.append(
                "attached mode: executing external tables; instance "
                "statistics do not apply, disjuncts run in rewriting order"
            )
        elif len(self._queries) <= 1:
            lines.append("single disjunct: nothing to reorder")
        else:
            estimator = CardinalityEstimator(database)
            order, plans = estimator.order_disjuncts(
                [query.body for query in self._queries]
            )
            lines.append(
                f"disjunct order (cheapest estimated cost first): {list(order)}"
            )
            for index in order:
                plan = plans[index]
                join = " -> ".join(atom.name for atom in plan.order) or "<empty body>"
                lines.append(
                    f"disjunct {index}: cost ~{plan.cost:.1f} rows; join {join}"
                )
        lines.append("sql:")
        lines.append(self.sql)
        return "\n".join(lines)


class SQLiteBackend(ExecutionBackend):
    """Executes rewritings on SQLite (stdlib ``sqlite3``).

    Parameters
    ----------
    path:
        SQLite database path; the default ``":memory:"`` keeps the
        snapshot private to this backend instance.
    attach:
        ``True`` executes against the existing database at *path* as-is:
        the :class:`RelationalInstance` is **not** loaded, tables are
        expected to be maintained externally, and missing referenced
        tables raise unless *create_missing* is set.
    create_missing:
        In attached mode, create empty tables for referenced relations
        absent from the file (mutates the file!).  Snapshot mode always
        creates every referenced table.
    """

    name = "sqlite"

    def __init__(
        self,
        path: str = ":memory:",
        attach: bool = False,
        create_missing: bool = False,
    ) -> None:
        if attach and path == ":memory:":
            raise ValueError("attach=True needs the path of an existing database")
        self._path = str(path)
        self._attach = attach
        self._create_missing = create_missing
        self._connection: sqlite3.Connection | None = None
        # The instance (held weakly — a recycled id() must never pass for
        # the loaded one) and epoch of the currently loaded snapshot.
        self._loaded_instance: "weakref.ref[RelationalInstance] | None" = None
        self._loaded_epoch: int | None = None
        # Tables this backend created, by name (snapshot mode drops them
        # on reload; attached mode only ever adds empty missing ones).
        self._predicates_by_table: dict[str, Predicate] = {}
        #: How often the snapshot was rebuilt from scratch / patched in
        #: place from the instance's change log.
        self.full_loads = 0
        self.incremental_loads = 0

    # -- connection and loading -------------------------------------------

    @property
    def attached(self) -> bool:
        """``True`` when executing against an external file (attach mode)."""
        return self._attach

    @property
    def connection(self) -> sqlite3.Connection:
        """The lazily opened SQLite connection."""
        if self._connection is None:
            self._connection = sqlite3.connect(self._path)
        return self._connection

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None
            self._loaded_instance = None
            self._loaded_epoch = None
            self._predicates_by_table.clear()

    def data_epoch(self, database: RelationalInstance) -> Hashable:
        if not self._attach:
            return database.epoch
        # Attached files change under other connections; data_version moves
        # exactly when another connection commits.
        (version,) = self.connection.execute("PRAGMA data_version").fetchone()
        return (database.epoch, version)

    def ensure_ready(
        self,
        database: RelationalInstance,
        referenced: frozenset[Predicate],
        schema: RelationalSchema | None = None,
    ) -> sqlite3.Connection:
        """Make sure every referenced table exists and holds current data."""
        connection = self.connection
        if self._attach:
            self._check_attached_tables(connection, referenced, schema)
            return connection
        loaded = (
            self._loaded_instance() if self._loaded_instance is not None else None
        )
        if loaded is not database or self._loaded_epoch != database.epoch:
            delta = None
            if loaded is database and self._loaded_epoch is not None:
                delta = database.changes_since(self._loaded_epoch)
            # A delta larger than the instance means patching costs more
            # than rebuilding (e.g. the database was mostly replaced).
            if delta is not None and len(delta) <= len(database):
                self._apply_delta(connection, delta, schema)
                self.incremental_loads += 1
            else:
                self._load(connection, database, referenced, schema)
                self.full_loads += 1
            self._loaded_instance = weakref.ref(database)
            self._loaded_epoch = database.epoch
        known = set(self._predicates_by_table.values())
        missing = set(referenced) - known
        if missing:
            self._create_tables(connection, missing, schema)
        return connection

    def _check_attached_tables(
        self,
        connection: sqlite3.Connection,
        referenced: frozenset[Predicate],
        schema: RelationalSchema | None,
    ) -> None:
        existing = {
            name
            for (name,) in connection.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table'"
            )
        }
        missing = sorted(p.name for p in referenced if p.name not in existing)
        if not missing:
            return
        if not self._create_missing:
            raise BackendError(
                "attached database is missing tables referenced by the "
                f"rewriting: {', '.join(missing)} (pass create_missing=True "
                "to create them empty)"
            )
        self._create_tables(
            connection, {p for p in referenced if p.name in set(missing)}, schema
        )

    def _columns(self, predicate: Predicate, schema: RelationalSchema | None) -> list[str]:
        """Column names for a table: the schema's attributes, else ``argN``.

        Must agree with what :func:`repro.database.sql` renders for the
        same schema, or the generated SQL would reference missing columns.
        """
        if schema is not None:
            relation = schema.get(predicate.name)
            if relation is not None and relation.arity == predicate.arity:
                return list(relation.attributes)
        return [f"arg{i}" for i in range(1, predicate.arity + 1)]

    def _create_tables(
        self,
        connection: sqlite3.Connection,
        predicates: set[Predicate],
        schema: RelationalSchema | None,
    ) -> None:
        for predicate in sorted(predicates, key=lambda p: (p.name, p.arity)):
            known = self._predicates_by_table.get(predicate.name)
            if known is not None and known.arity != predicate.arity:
                # SQL tables are keyed by name alone, so two predicates
                # sharing a name with different arities cannot coexist
                # (the in-memory instance keeps them apart).
                raise BackendError(
                    f"relation name collision: {predicate.name!r} is used "
                    f"with arities {known.arity} and {predicate.arity}; "
                    "the SQLite backend cannot represent both"
                )
            columns = self._columns(predicate, schema)
            table = self._quoted(predicate.name)
            column_list = ", ".join(self._quoted(column) for column in columns)
            connection.execute(f"CREATE TABLE IF NOT EXISTS {table} ({column_list})")
            for i, column in enumerate(columns, start=1):
                index_name = self._quoted(f"idx_{predicate.name}_{i}")
                connection.execute(
                    f"CREATE INDEX IF NOT EXISTS {index_name} ON {table} "
                    f"({self._quoted(column)})"
                )
            self._predicates_by_table[predicate.name] = predicate
        connection.commit()

    def _load(
        self,
        connection: sqlite3.Connection,
        database: RelationalInstance,
        referenced: frozenset[Predicate],
        schema: RelationalSchema | None,
    ) -> None:
        """(Re)load the snapshot: drop every table, recreate, bulk-insert.

        Snapshot mode owns the whole database, so *all* existing tables
        are dropped — including ones left behind by a previous process
        when the snapshot lives in a file — or stale facts would be
        resurrected into answers.
        """
        stale = [
            name
            for (name,) in connection.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table'"
            )
        ]
        for table in sorted(stale):
            connection.execute(f"DROP TABLE IF EXISTS {self._quoted(table)}")
        self._predicates_by_table.clear()
        predicates = set(database.predicates()) | set(referenced)
        self._create_tables(connection, predicates, schema)
        for predicate in sorted(predicates, key=lambda p: (p.name, p.arity)):
            facts = database.relation(predicate)
            if not facts:
                continue
            placeholders = ", ".join("?" for _ in range(predicate.arity))
            statement = (
                f"INSERT INTO {self._quoted(predicate.name)} VALUES ({placeholders})"
            )
            connection.executemany(
                statement,
                [tuple(encode_term(term) for term in fact.terms) for fact in facts],
            )
        connection.commit()

    def _apply_delta(
        self,
        connection: sqlite3.Connection,
        delta: list[tuple[bool, "object"]],
        schema: RelationalSchema | None,
    ) -> None:
        """Patch the loaded snapshot with an instance change log slice.

        Applied in log order, so a fact removed and re-added nets out
        correctly.  Tables for predicates first seen in the delta are
        created on the fly; deletes match every column (encoded values
        are never SQL ``NULL``, so ``=`` comparisons are exact).
        """
        for added, fact in delta:
            predicate = fact.predicate
            known = self._predicates_by_table.get(predicate.name)
            if known is None or known.arity != predicate.arity:
                self._create_tables(connection, {predicate}, schema)
            table = self._quoted(predicate.name)
            values = tuple(encode_term(term) for term in fact.terms)
            if added:
                placeholders = ", ".join("?" for _ in range(predicate.arity))
                connection.execute(
                    f"INSERT INTO {table} VALUES ({placeholders})", values
                )
            else:
                columns = self._columns(predicate, schema)
                condition = " AND ".join(
                    f"{self._quoted(column)} = ?" for column in columns
                )
                connection.execute(f"DELETE FROM {table} WHERE {condition}", values)
        connection.commit()

    @staticmethod
    def _quoted(name: str) -> str:
        return '"' + name.replace('"', '""') + '"'

    # -- the backend protocol ----------------------------------------------

    def prepare(
        self,
        ucq: UnionOfConjunctiveQueries,
        schema: RelationalSchema | None = None,
    ) -> SQLitePlan:
        if len(ucq) == 0:
            raise BackendError("cannot prepare an empty rewriting for SQLite")
        queries = list(ucq)
        limit = self._compound_select_limit()
        statements = [
            ucq_to_parameterized_sql(queries[start : start + limit], schema=schema)
            for start in range(0, len(queries), limit)
        ]
        referenced = frozenset(
            predicate for query in ucq for predicate in atoms_predicates(query.body)
        )
        return SQLitePlan(self, statements, referenced, ucq.arity, schema, queries)

    def _compound_select_limit(self) -> int:
        """Max disjuncts per statement (SQLITE_LIMIT_COMPOUND_SELECT)."""
        try:
            limit = self.connection.getlimit(sqlite3.SQLITE_LIMIT_COMPOUND_SELECT)
        except AttributeError:  # pragma: no cover - Python < 3.11
            limit = 500
        return max(1, limit)
