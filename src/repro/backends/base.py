"""The execution-backend protocol of the serving layer.

The paper's central practical claim (Section 1) is that a perfect rewriting
is an ordinary relational query: once compilation is done, *any* relational
engine can answer it on the database alone.  This module pins that claim
down as an interface.  An :class:`ExecutionBackend` turns a compiled UCQ
rewriting into an :class:`ExecutionPlan` once (``prepare``); the plan is
then executed many times, against the current state of the database and
optionally under new bindings for the query's constants.

Two implementations ship with the library:

* :class:`repro.backends.memory.InMemoryBackend` — the built-in index
  nested-loop evaluator with a reusable join order;
* :class:`repro.backends.sqlite.SQLiteBackend` — loads the database into
  SQLite (or attaches an existing database file) and executes the
  rewriting's SQL form there.

Answer *caching* does not live here: :class:`repro.api.PreparedQuery`
caches answer sets keyed by the value returned from :meth:`data_epoch`, so
backends only need to say when the data may have changed.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Hashable, Mapping

from ..logic.terms import Constant

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..database.instance import RelationalInstance
    from ..database.schema import RelationalSchema
    from ..queries.ucq import UnionOfConjunctiveQueries


class BackendError(RuntimeError):
    """Raised when a backend cannot prepare or execute a plan."""


class ExecutionPlan(ABC):
    """A backend-compiled form of one UCQ rewriting.

    Plans are created by :meth:`ExecutionBackend.prepare` and owned by a
    :class:`repro.api.PreparedQuery`; they hold whatever the backend needs
    to re-execute cheaply (a SQL string and parameter order, a reusable
    join order, ...).
    """

    @abstractmethod
    def execute(
        self,
        database: "RelationalInstance",
        bindings: Mapping[Constant, Constant] | None = None,
    ) -> frozenset[tuple]:
        """Answers of the plan on *database*, as tuples of constants.

        *bindings* maps constants of the rewriting to replacement
        constants (parameter binding); soundness of rebinding is the
        caller's responsibility (:meth:`repro.api.PreparedQuery.execute`
        validates it against the theory).
        """

    @property
    @abstractmethod
    def description(self) -> str:
        """A human-readable account of the plan (SQL text, join order, ...)."""

    def explain(self, database: "RelationalInstance") -> str:
        """The plan as it would run on *database*: orders and cost estimates.

        Unlike :attr:`description` (static, database-independent) the
        explanation reflects the cost-aware choices the backend makes for
        the current database state — chosen join order per disjunct,
        disjunct execution order, estimated cardinalities.  The default
        falls back to the static description for backends without a
        planner.
        """
        return self.description

    @property
    def disjunct_count(self) -> int | None:
        """Number of individually executable disjuncts, or ``None``.

        ``None`` means the plan is opaque — it can only execute the whole
        union — and consumers needing per-disjunct answers (the
        incremental maintainer's full-refresh path) must evaluate the
        rewriting themselves.  Both shipped backends report a count.
        """
        return None

    def execute_disjunct(
        self,
        database: "RelationalInstance",
        index: int,
        bindings: Mapping[Constant, Constant] | None = None,
    ) -> frozenset[tuple]:
        """Answers of disjunct *index* alone, as tuples of constants.

        UCQ answering is a union over independent CQs, so a plan that can
        execute one disjunct at a time supports per-disjunct consumers:
        the incremental maintainer's support counts
        (:mod:`repro.incremental.maintain`) and, eventually, sharded
        scatter-gather answering.  The default raises — override together
        with :attr:`disjunct_count`.
        """
        raise BackendError(
            f"{type(self).__name__} does not support per-disjunct execution"
        )


class ExecutionBackend(ABC):
    """A pluggable engine that executes compiled rewritings.

    Backends are context managers; :meth:`close` releases whatever
    resources they hold (connections, loaded snapshots).
    """

    #: Registry name of the backend (``"memory"``, ``"sqlite"``).
    name: str = "?"

    @abstractmethod
    def prepare(
        self,
        ucq: "UnionOfConjunctiveQueries",
        schema: "RelationalSchema | None" = None,
    ) -> ExecutionPlan:
        """Compile *ucq* into a reusable :class:`ExecutionPlan`."""

    def data_epoch(self, database: "RelationalInstance") -> Hashable:
        """A value that changes whenever the visible data may have changed.

        The default is the instance's epoch counter; backends reading
        external state (an attached SQLite file) extend it with their own
        change signal.  :class:`repro.api.PreparedQuery` keys its answer
        cache on this value.
        """
        return database.epoch

    def close(self) -> None:
        """Release backend resources; the default backend holds none."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
