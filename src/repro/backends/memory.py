"""The in-memory execution backend.

Wraps :class:`repro.database.evaluator.QueryEvaluator` behind the
:class:`~repro.backends.base.ExecutionBackend` protocol.  What ``prepare``
buys over calling the evaluator directly is a *reusable plan*: the
cost-aware join order of each disjunct's body and the cheapest-first
execution order over the disjuncts (:mod:`repro.database.planning`) are
computed once per database epoch and replayed for every execution at that
epoch (both depend on relation statistics, so they are refreshed when the
data changes).  Constant bindings are applied atom-wise to the ordered
body, so a rebound execution reuses the same order — binding changes which
facts match, not the join structure.
"""

from __future__ import annotations

from typing import Hashable, Mapping

from ..database.evaluator import QueryEvaluator
from ..database.instance import RelationalInstance
from ..database.planning import CardinalityEstimator, JoinPlan
from ..database.schema import RelationalSchema
from ..logic.atoms import Atom
from ..logic.terms import Constant, Term, is_variable
from ..queries.ucq import UnionOfConjunctiveQueries
from .base import ExecutionBackend, ExecutionPlan


class InMemoryPlan(ExecutionPlan):
    """Per-disjunct bodies and answer terms, with plans cached by epoch."""

    def __init__(self, ucq: UnionOfConjunctiveQueries) -> None:
        self._disjuncts: tuple[tuple[tuple[Atom, ...], tuple[Term, ...]], ...] = tuple(
            (query.body, query.answer_terms) for query in ucq
        )
        # Plans of the most recent epoch only: plans serve one database at
        # a time, and older epochs can never come back.
        self._order_key: Hashable | None = None
        self._plans: tuple[JoinPlan, ...] = ()
        #: Disjunct execution order, cheapest estimated cost first.
        self._disjunct_order: tuple[int, ...] = ()

    def _plan(self, database: RelationalInstance) -> tuple[JoinPlan, ...]:
        key = (id(database), database.epoch)
        if key != self._order_key:
            estimator = CardinalityEstimator(database)
            self._disjunct_order, self._plans = estimator.order_disjuncts(
                [body for body, _ in self._disjuncts]
            )
            self._order_key = key
        return self._plans

    def execute(
        self,
        database: RelationalInstance,
        bindings: Mapping[Constant, Constant] | None = None,
    ) -> frozenset[tuple]:
        plans = self._plan(database)
        evaluator = QueryEvaluator(database)
        answers: set[tuple] = set()
        # Cheapest-first over the union: the answer set is order
        # independent, but small disjuncts populate the answer set (and
        # the caller's caches) before the expensive ones run.
        for index in self._disjunct_order:
            ordered: list[Atom] | tuple[Atom, ...] = plans[index].order
            _, answer_terms = self._disjuncts[index]
            if bindings:
                ordered = [atom.apply(bindings) for atom in ordered]
                answer_terms = tuple(
                    term if is_variable(term) else bindings.get(term, term)
                    for term in answer_terms
                )
            answers |= evaluator.answers_for_order(ordered, answer_terms)
        return frozenset(answers)

    @property
    def disjunct_count(self) -> int:
        return len(self._disjuncts)

    def execute_disjunct(
        self,
        database: RelationalInstance,
        index: int,
        bindings: Mapping[Constant, Constant] | None = None,
    ) -> frozenset[tuple]:
        """Answers of disjunct *index* alone, with the same cached join order.

        *index* is the disjunct's **original** position in the rewriting —
        the cheapest-first execution order is internal to :meth:`execute`,
        so per-disjunct consumers (the incremental maintainer's support
        counts) keep stable indexes.
        """
        ordered: list[Atom] | tuple[Atom, ...] = self._plan(database)[index].order
        _, answer_terms = self._disjuncts[index]
        if bindings:
            ordered = [atom.apply(bindings) for atom in ordered]
            answer_terms = tuple(
                term if is_variable(term) else bindings.get(term, term)
                for term in answer_terms
            )
        return QueryEvaluator(database).answers_for_order(ordered, answer_terms)

    @property
    def description(self) -> str:
        lines = []
        for index, (body, _) in enumerate(self._disjuncts):
            order = " -> ".join(atom.name for atom in body)
            lines.append(f"disjunct {index}: index nested-loop over {order}")
        return "\n".join(lines)

    def explain(self, database: RelationalInstance) -> str:
        plans = self._plan(database)
        lines = [
            "backend: memory (index nested-loop)",
            f"disjunct order (cheapest estimated cost first): "
            f"{list(self._disjunct_order)}",
        ]
        for index in self._disjunct_order:
            plan = plans[index]
            order = " -> ".join(atom.name for atom in plan.order) or "<empty body>"
            lines.append(
                f"disjunct {index}: cost ~{plan.cost:.1f} rows; join {order}"
            )
            for atom, rows, cumulative in zip(
                plan.order, plan.step_rows, plan.cumulative_rows
            ):
                lines.append(
                    f"  {atom!r}: ~{rows:.1f} matching rows, "
                    f"~{cumulative:.1f} cumulative"
                )
        return "\n".join(lines)


class InMemoryBackend(ExecutionBackend):
    """Executes rewritings with the built-in index nested-loop evaluator."""

    name = "memory"

    def prepare(
        self,
        ucq: UnionOfConjunctiveQueries,
        schema: RelationalSchema | None = None,
    ) -> InMemoryPlan:
        return InMemoryPlan(ucq)
