"""The in-memory execution backend.

Wraps :class:`repro.database.evaluator.QueryEvaluator` behind the
:class:`~repro.backends.base.ExecutionBackend` protocol.  What ``prepare``
buys over calling the evaluator directly is a *reusable join order*: the
greedy most-selective-first ordering of each disjunct's body is computed
once per database epoch and replayed for every execution at that epoch
(join orders depend on relation sizes, so they are refreshed when the data
changes).  Constant bindings are applied atom-wise to the ordered body, so
a rebound execution reuses the same order — binding changes which facts
match, not the join structure.
"""

from __future__ import annotations

from typing import Hashable, Mapping

from ..database.evaluator import QueryEvaluator
from ..database.instance import RelationalInstance
from ..database.schema import RelationalSchema
from ..logic.atoms import Atom
from ..logic.terms import Constant, Term, is_variable
from ..queries.ucq import UnionOfConjunctiveQueries
from .base import ExecutionBackend, ExecutionPlan


class InMemoryPlan(ExecutionPlan):
    """Per-disjunct bodies and answer terms, with join orders cached by epoch."""

    def __init__(self, ucq: UnionOfConjunctiveQueries) -> None:
        self._disjuncts: tuple[tuple[tuple[Atom, ...], tuple[Term, ...]], ...] = tuple(
            (query.body, query.answer_terms) for query in ucq
        )
        # Join orders of the most recent epoch only: plans serve one
        # database at a time, and older epochs can never come back.
        self._order_key: Hashable | None = None
        self._orders: list[list[Atom]] = []

    def _ordered(self, database: RelationalInstance) -> list[list[Atom]]:
        key = (id(database), database.epoch)
        if key != self._order_key:
            evaluator = QueryEvaluator(database)
            self._orders = [
                evaluator.join_order(body) for body, _ in self._disjuncts
            ]
            self._order_key = key
        return self._orders

    def execute(
        self,
        database: RelationalInstance,
        bindings: Mapping[Constant, Constant] | None = None,
    ) -> frozenset[tuple]:
        evaluator = QueryEvaluator(database)
        answers: set[tuple] = set()
        for ordered, (_, answer_terms) in zip(
            self._ordered(database), self._disjuncts
        ):
            if bindings:
                ordered = [atom.apply(bindings) for atom in ordered]
                answer_terms = tuple(
                    term if is_variable(term) else bindings.get(term, term)
                    for term in answer_terms
                )
            answers |= evaluator.answers_for_order(ordered, answer_terms)
        return frozenset(answers)

    @property
    def disjunct_count(self) -> int:
        return len(self._disjuncts)

    def execute_disjunct(
        self,
        database: RelationalInstance,
        index: int,
        bindings: Mapping[Constant, Constant] | None = None,
    ) -> frozenset[tuple]:
        """Answers of disjunct *index* alone, with the same cached join order."""
        ordered = self._ordered(database)[index]
        _, answer_terms = self._disjuncts[index]
        if bindings:
            ordered = [atom.apply(bindings) for atom in ordered]
            answer_terms = tuple(
                term if is_variable(term) else bindings.get(term, term)
                for term in answer_terms
            )
        return QueryEvaluator(database).answers_for_order(ordered, answer_terms)

    @property
    def description(self) -> str:
        lines = []
        for index, (body, _) in enumerate(self._disjuncts):
            order = " -> ".join(atom.name for atom in body)
            lines.append(f"disjunct {index}: index nested-loop over {order}")
        return "\n".join(lines)


class InMemoryBackend(ExecutionBackend):
    """Executes rewritings with the built-in index nested-loop evaluator."""

    name = "memory"

    def prepare(
        self,
        ucq: UnionOfConjunctiveQueries,
        schema: RelationalSchema | None = None,
    ) -> InMemoryPlan:
        return InMemoryPlan(ucq)
