"""Evaluation of CQs and UCQs over relational instances.

This is the "database side" of OBDA: once a query has been compiled into a
UCQ rewriting, the rewriting is a plain relational query and can be executed
directly on the database, with no further reasoning.  The evaluator performs
an index nested-loop join driven by a cost-aware greedy join ordering
(fewest estimated rows first, see :mod:`repro.database.planning`), using
the per-(position, value) indexes of
:class:`repro.database.instance.RelationalInstance`.

Answers follow the paper's semantics: the answer to a CQ of arity *n* over an
instance is the set of *n*-tuples of **constants** for which a homomorphism
from the body into the instance exists (labelled nulls may witness
existential variables but never appear in answers); a BCQ answers positively
iff the empty tuple is an answer.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from ..logic.atoms import Atom
from ..logic.terms import Term, is_constant, is_variable
from ..queries.conjunctive_query import ConjunctiveQuery
from ..queries.ucq import UnionOfConjunctiveQueries
from .instance import RelationalInstance
from .planning import CardinalityEstimator


class QueryEvaluator:
    """Evaluates conjunctive queries and unions thereof over an instance."""

    def __init__(self, instance: RelationalInstance) -> None:
        self._instance = instance

    # -- public API ----------------------------------------------------------------

    def evaluate(self, query: ConjunctiveQuery) -> frozenset[tuple[Term, ...]]:
        """All answers (tuples of constants) of *query* over the instance."""
        return self.answers_for_order(self.join_order(query.body), query.answer_terms)

    def answers_for_order(
        self, ordered_body: Sequence[Atom], answer_terms: Sequence[Term]
    ) -> frozenset[tuple[Term, ...]]:
        """Answers of a CQ whose join order has already been fixed.

        This is the execution half of :meth:`evaluate`, split out so a
        prepared plan (:class:`repro.backends.memory.InMemoryBackend`) can
        compute the join order once and replay it across executions.
        """
        answers: set[tuple[Term, ...]] = set()
        for binding in self._search(list(ordered_body), 0, {}):
            answer = tuple(
                binding.get(term, term) if is_variable(term) else term
                for term in answer_terms
            )
            if all(is_constant(value) for value in answer):
                answers.add(answer)
        return frozenset(answers)

    def evaluate_ucq(
        self, ucq: UnionOfConjunctiveQueries | Iterable[ConjunctiveQuery]
    ) -> frozenset[tuple[Term, ...]]:
        """Union of the answers of all member CQs."""
        answers: set[tuple[Term, ...]] = set()
        for query in ucq:
            answers |= self.evaluate(query)
        return frozenset(answers)

    def entails(self, query: ConjunctiveQuery) -> bool:
        """``True`` iff the (Boolean or non-Boolean) query has at least one answer.

        For a BCQ this is the ``I |= q`` check of the paper; for a CQ with
        answer variables it checks non-emptiness of the answer set.
        """
        for binding in self._bindings(query):
            answer = tuple(
                binding.get(term, term) if is_variable(term) else term
                for term in query.answer_terms
            )
            if all(is_constant(value) for value in answer):
                return True
        return False

    def entails_ucq(
        self, ucq: UnionOfConjunctiveQueries | Iterable[ConjunctiveQuery]
    ) -> bool:
        """``True`` iff some member CQ has an answer."""
        return any(self.entails(query) for query in ucq)

    # -- join machinery ----------------------------------------------------------------

    def _bindings(self, query: ConjunctiveQuery) -> Iterator[dict[Term, Term]]:
        """Enumerate variable bindings satisfying the query body."""
        atoms = self.join_order(query.body)
        yield from self._search(atoms, 0, {})

    def join_order(self, body: Sequence[Atom]) -> list[Atom]:
        """Cost-aware greedy join ordering (fewest estimated rows first).

        Delegates to :meth:`repro.database.planning.CardinalityEstimator.
        plan_body`, which estimates each candidate's output from the
        instance's relation sizes and per-position distinct counts; the
        previous structural heuristic (bound terms, relation size)
        survives as the tie-break.  The order affects evaluation cost
        only, never the answer set.
        """
        return list(CardinalityEstimator(self._instance).plan_body(body).order)

    def _search(
        self, atoms: list[Atom], index: int, binding: dict[Term, Term]
    ) -> Iterator[dict[Term, Term]]:
        if index == len(atoms):
            yield dict(binding)
            return
        atom = atoms[index]
        bound_positions: dict[int, Term] = {}
        for position, term in enumerate(atom.terms, start=1):
            if is_constant(term):
                bound_positions[position] = term
            elif term in binding:
                bound_positions[position] = binding[term]
        for fact in self._instance.matching(atom.predicate, bound_positions):
            extended = dict(binding)
            consistent = True
            for position, term in enumerate(atom.terms, start=1):
                value = fact[position]
                if is_constant(term):
                    if term != value:
                        consistent = False
                        break
                    continue
                bound = extended.get(term)
                if bound is None:
                    extended[term] = value
                elif bound != value:
                    consistent = False
                    break
            if consistent:
                yield from self._search(atoms, index + 1, extended)


def evaluate(
    query: ConjunctiveQuery, instance: RelationalInstance
) -> frozenset[tuple[Term, ...]]:
    """Evaluate a single CQ over *instance*."""
    return QueryEvaluator(instance).evaluate(query)


def evaluate_ucq(
    ucq: UnionOfConjunctiveQueries | Iterable[ConjunctiveQuery],
    instance: RelationalInstance,
) -> frozenset[tuple[Term, ...]]:
    """Evaluate a UCQ over *instance*."""
    return QueryEvaluator(instance).evaluate_ucq(ucq)
