"""SQL generation for CQs and UCQs.

First-order rewritability matters in practice because the perfect rewriting
can be handed to an ordinary RDBMS as SQL and optimised there (Section 1).
This module renders a CQ as a ``SELECT``–``FROM``–``WHERE`` block and a UCQ
as a ``UNION`` of such blocks, using the attribute names of a
:class:`repro.database.schema.RelationalSchema` when available.

The generated SQL is standard (tested syntactically; the in-memory evaluator
remains the executable reference implementation since no RDBMS is available
in this environment).
"""

from __future__ import annotations

from typing import Iterable

from ..logic.terms import Term, is_constant, is_variable
from ..queries.conjunctive_query import ConjunctiveQuery
from ..queries.ucq import UnionOfConjunctiveQueries
from .schema import RelationalSchema


def _literal(term: Term) -> str:
    """Render a constant as an SQL literal."""
    value = term.value  # type: ignore[union-attr]
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return str(value)
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"


def _attribute(schema: RelationalSchema | None, relation: str, position: int) -> str:
    """Attribute name for a 1-based position, falling back to ``argN``."""
    if schema is not None:
        stored = schema.get(relation)
        if stored is not None:
            return stored.attribute_of(position)
    return f"arg{position}"


def cq_to_sql(
    query: ConjunctiveQuery,
    schema: RelationalSchema | None = None,
    answer_names: Iterable[str] | None = None,
) -> str:
    """Translate a single CQ into a ``SELECT`` statement.

    Each body atom becomes an aliased relation in the ``FROM`` clause; shared
    variables become equality join predicates, constants become selection
    predicates, and the answer terms populate the ``SELECT`` list.
    """
    if not query.body:
        raise ValueError("cannot translate a query with an empty body to SQL")
    aliases: list[tuple[str, str]] = []  # (alias, relation name)
    variable_columns: dict[Term, str] = {}
    conditions: list[str] = []

    for index, atom in enumerate(query.body):
        alias = f"t{index}"
        aliases.append((alias, atom.name))
        for position, term in enumerate(atom.terms, start=1):
            column = f"{alias}.{_attribute(schema, atom.name, position)}"
            if is_constant(term):
                conditions.append(f"{column} = {_literal(term)}")
            elif is_variable(term):
                first = variable_columns.get(term)
                if first is None:
                    variable_columns[term] = column
                else:
                    conditions.append(f"{first} = {column}")

    names = list(answer_names) if answer_names is not None else [
        f"a{i}" for i in range(1, query.arity + 1)
    ]
    if len(names) != query.arity:
        raise ValueError("answer_names must match the query arity")

    select_items: list[str] = []
    for name, term in zip(names, query.answer_terms):
        if is_constant(term):
            select_items.append(f"{_literal(term)} AS {name}")
        else:
            column = variable_columns.get(term)
            if column is None:
                raise ValueError(f"answer variable {term!r} not bound in the body")
            select_items.append(f"{column} AS {name}")
    select_clause = ", ".join(select_items) if select_items else "1 AS answer"

    from_clause = ", ".join(f"{relation} AS {alias}" for alias, relation in aliases)
    sql = f"SELECT DISTINCT {select_clause} FROM {from_clause}"
    if conditions:
        sql += " WHERE " + " AND ".join(conditions)
    return sql


def ucq_to_sql(
    ucq: UnionOfConjunctiveQueries | Iterable[ConjunctiveQuery],
    schema: RelationalSchema | None = None,
    answer_names: Iterable[str] | None = None,
) -> str:
    """Translate a UCQ into a ``UNION`` of ``SELECT`` statements."""
    queries = list(ucq)
    if not queries:
        raise ValueError("cannot translate an empty UCQ to SQL")
    names = list(answer_names) if answer_names is not None else None
    blocks = [cq_to_sql(query, schema=schema, answer_names=names) for query in queries]
    return "\nUNION\n".join(blocks)
