"""SQL generation for CQs and UCQs.

First-order rewritability matters in practice because the perfect rewriting
can be handed to an ordinary RDBMS as SQL and optimised there (Section 1).
This module renders a CQ as a ``SELECT``–``FROM``–``WHERE`` block and a UCQ
as a ``UNION`` of such blocks, using the attribute names of a
:class:`repro.database.schema.RelationalSchema` when available.

Two forms are produced:

* :func:`cq_to_sql` / :func:`ucq_to_sql` — self-contained SQL text with
  constants inlined as literals, for export to an external RDBMS;
* :func:`ucq_to_parameterized_sql` — SQL with every constant replaced by a
  ``?`` placeholder plus the ordered parameter list, the form executed by
  :class:`repro.backends.sqlite.SQLiteBackend` (placeholders sidestep
  literal quoting entirely and let a prepared statement be re-executed
  under new constant bindings).

``ucq_to_sql`` emits set semantics exactly where it is needed: identical
disjunct blocks are deduplicated, a single surviving block is returned
without any ``UNION``, and multiple blocks are combined with ``UNION``
(never ``UNION ALL``) because distinct disjuncts of a perfect rewriting
routinely produce overlapping answers — ``UNION ALL`` would leak
duplicates to the consumer.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Iterable

from ..logic.terms import Constant, Term, is_constant, is_variable
from ..queries.conjunctive_query import ConjunctiveQuery
from ..queries.ucq import UnionOfConjunctiveQueries
from .schema import RelationalSchema

#: Identifiers that can be emitted bare; anything else is double-quoted.
_PLAIN_IDENTIFIER = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")

#: Reserved words that must be quoted even though they look plain.  Kept to
#: the words that plausibly clash with ontology predicate names.
_RESERVED = frozenset(
    w.upper()
    for w in (
        "all", "and", "as", "by", "case", "distinct", "exists", "from",
        "group", "in", "is", "join", "limit", "not", "null", "on", "or",
        "order", "select", "set", "table", "to", "union", "values", "where",
    )
)


def _identifier(name: str) -> str:
    """Render a relation / attribute name, quoting it when necessary.

    Ontology predicate names are not guaranteed to be plain SQL
    identifiers (URIs, hyphens, reserved words); quoting with doubled
    ``"`` keeps the generated SQL valid on any standard engine.
    """
    if _PLAIN_IDENTIFIER.match(name) and name.upper() not in _RESERVED:
        return name
    return '"' + name.replace('"', '""') + '"'


def _literal(term: Term) -> str:
    """Render a constant as an SQL literal.

    Booleans become ``1`` / ``0`` (matching how dynamically typed engines
    store them — and how Python equates ``True == 1``), ``None`` becomes
    ``NULL``, numbers are emitted bare and everything else is a
    single-quoted string with embedded ``'`` doubled.
    """
    value = term.value  # type: ignore[union-attr]
    if isinstance(value, bool):
        return "1" if value else "0"
    if value is None:
        return "NULL"
    if isinstance(value, (int, float)):
        return str(value)
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"


def _attribute(schema: RelationalSchema | None, relation: str, position: int) -> str:
    """Attribute name for a 1-based position, falling back to ``argN``."""
    if schema is not None:
        stored = schema.get(relation)
        if stored is not None:
            return _identifier(stored.attribute_of(position))
    return f"arg{position}"


def _render_cq(
    query: ConjunctiveQuery,
    schema: RelationalSchema | None,
    answer_names: Iterable[str] | None,
    render_constant: Callable[[Constant], str],
) -> str:
    """Shared SELECT-FROM-WHERE renderer behind both public forms.

    *render_constant* is called for every constant occurrence, in the
    deterministic left-to-right order of the query body followed by the
    answer terms — the parameterized form relies on that order to line up
    its ``?`` placeholders with the collected parameter list.
    """
    if not query.body:
        raise ValueError("cannot translate a query with an empty body to SQL")
    aliases: list[tuple[str, str]] = []  # (alias, relation name)
    variable_columns: dict[Term, str] = {}
    conditions: list[str] = []

    for index, atom in enumerate(query.body):
        alias = f"t{index}"
        aliases.append((alias, atom.name))
        for position, term in enumerate(atom.terms, start=1):
            column = f"{alias}.{_attribute(schema, atom.name, position)}"
            if is_constant(term):
                rendered = render_constant(term)
                if rendered == "NULL":
                    # SQL three-valued logic: `col = NULL` is never true;
                    # matching a None constant needs IS NULL.
                    conditions.append(f"{column} IS NULL")
                else:
                    conditions.append(f"{column} = {rendered}")
            elif is_variable(term):
                first = variable_columns.get(term)
                if first is None:
                    variable_columns[term] = column
                else:
                    conditions.append(f"{first} = {column}")

    names = list(answer_names) if answer_names is not None else [
        f"a{i}" for i in range(1, query.arity + 1)
    ]
    if len(names) != query.arity:
        raise ValueError("answer_names must match the query arity")

    select_items: list[str] = []
    for name, term in zip(names, query.answer_terms):
        if is_constant(term):
            select_items.append(f"{render_constant(term)} AS {_identifier(name)}")
        else:
            column = variable_columns.get(term)
            if column is None:
                raise ValueError(f"answer variable {term!r} not bound in the body")
            select_items.append(f"{column} AS {_identifier(name)}")
    select_clause = ", ".join(select_items) if select_items else "1 AS answer"

    from_clause = ", ".join(
        f"{_identifier(relation)} AS {alias}" for alias, relation in aliases
    )
    sql = f"SELECT DISTINCT {select_clause} FROM {from_clause}"
    if conditions:
        sql += " WHERE " + " AND ".join(conditions)
    return sql


def cq_to_sql(
    query: ConjunctiveQuery,
    schema: RelationalSchema | None = None,
    answer_names: Iterable[str] | None = None,
) -> str:
    """Translate a single CQ into a ``SELECT`` statement.

    Each body atom becomes an aliased relation in the ``FROM`` clause; shared
    variables become equality join predicates, constants become selection
    predicates, and the answer terms populate the ``SELECT`` list.
    """
    return _render_cq(query, schema, answer_names, _literal)


def ucq_to_sql(
    ucq: UnionOfConjunctiveQueries | Iterable[ConjunctiveQuery],
    schema: RelationalSchema | None = None,
    answer_names: Iterable[str] | None = None,
) -> str:
    """Translate a UCQ into SQL with set semantics where required.

    Disjuncts that render to identical SQL (e.g. variants that differ only
    in variable names) are emitted once; a single surviving block stands
    alone.  Multiple blocks are combined with ``UNION`` — not ``UNION
    ALL`` — because disjuncts of a rewriting may overlap on any given
    database, so cross-block deduplication is part of the query's set
    semantics.
    """
    queries = list(ucq)
    if not queries:
        raise ValueError("cannot translate an empty UCQ to SQL")
    names = list(answer_names) if answer_names is not None else None
    blocks: list[str] = []
    seen: set[str] = set()
    for query in queries:
        block = cq_to_sql(query, schema=schema, answer_names=names)
        if block not in seen:
            seen.add(block)
            blocks.append(block)
    return "\nUNION\n".join(blocks)


@dataclass(frozen=True)
class ParameterizedSQL:
    """A UCQ rendered with ``?`` placeholders plus its ordered parameters.

    ``parameters`` holds the original :class:`Constant` objects, in
    placeholder order; an executor encodes them to engine values — and may
    substitute *bound* replacements first — before running the statement.
    """

    sql: str
    parameters: tuple[Constant, ...]


def ucq_to_parameterized_sql(
    ucq: UnionOfConjunctiveQueries | Iterable[ConjunctiveQuery],
    schema: RelationalSchema | None = None,
    answer_names: Iterable[str] | None = None,
) -> ParameterizedSQL:
    """Render a UCQ with every constant as a ``?`` placeholder.

    This is the backend-facing form: quoting issues cannot arise, and the
    same prepared statement serves any rebinding of the constants.
    Deduplication keys on the *(block, parameters)* pair — two disjuncts
    that differ only in their constants render to the same placeholder SQL
    but must both survive.
    """
    queries = list(ucq)
    if not queries:
        raise ValueError("cannot translate an empty UCQ to SQL")
    names = list(answer_names) if answer_names is not None else None
    blocks: list[str] = []
    parameters: list[Constant] = []
    seen: set[tuple[str, tuple[Constant, ...]]] = set()
    for query in queries:
        collected: list[Constant] = []

        def placeholder(constant: Constant) -> str:
            collected.append(constant)
            return "?"

        block = _render_cq(query, schema, names, placeholder)
        key = (block, tuple(collected))
        if key not in seen:
            seen.add(key)
            blocks.append(block)
            parameters.extend(collected)
    return ParameterizedSQL("\nUNION\n".join(blocks), tuple(parameters))
