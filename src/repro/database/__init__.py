"""In-memory relational database: schema, instances, evaluation, SQL generation."""

from .evaluator import QueryEvaluator, evaluate, evaluate_ucq
from .generator import DatabaseGenerator, random_database
from .instance import RelationalInstance, database_from_tuples
from .schema import Relation, RelationalSchema
from .sql import ParameterizedSQL, cq_to_sql, ucq_to_parameterized_sql, ucq_to_sql

__all__ = [
    "DatabaseGenerator",
    "ParameterizedSQL",
    "QueryEvaluator",
    "Relation",
    "RelationalInstance",
    "RelationalSchema",
    "cq_to_sql",
    "ucq_to_parameterized_sql",
    "database_from_tuples",
    "evaluate",
    "evaluate_ucq",
    "random_database",
    "ucq_to_sql",
]
