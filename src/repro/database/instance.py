"""In-memory relational instances (ABoxes / databases).

A *database* is a finite set of facts ``r(c1, ..., cn)`` over constants; a
*relational instance* may additionally contain labelled nulls (e.g. the
result of a chase).  This module provides the storage layer used by the
OBDA pipeline: facts are indexed per predicate and per (position, value) so
that conjunctive queries can be evaluated with index nested-loop / hash
joins by :mod:`repro.database.evaluator`.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Iterable, Iterator, Sequence

from ..logic.atoms import Atom, Predicate
from ..logic.terms import Constant, Term, is_constant
from ..dependencies.constraints import KeyDependency
from .schema import RelationalSchema


class RelationalInstance:
    """A mutable set of ground atoms with per-predicate and per-value indexes.

    Every mutation that actually changes the stored fact set bumps the
    instance's :attr:`epoch` counter.  The epoch is what the serving layer
    (:class:`repro.api.PreparedQuery`, the execution backends) keys its
    answer caches and SQLite snapshots on: equal epochs guarantee an
    unchanged database, so cached answers can be served without touching
    the data.

    The instance additionally keeps a bounded *change log*: the last
    :data:`MAX_TRACKED_CHANGES` genuine mutations, one per epoch step.
    :meth:`changes_since` replays the exact delta between two epochs,
    which is what lets the SQLite backend apply incremental updates to a
    loaded snapshot instead of dropping and reloading every table; when
    the log no longer reaches back far enough, it reports so and the
    consumer falls back to a full reload — correctness never depends on
    the log.
    """

    #: Default bound on the change log; one entry per genuine mutation.
    #: Deltas across more than this many epochs report as unavailable.
    #: Overridable per instance via the ``max_tracked_changes`` argument.
    MAX_TRACKED_CHANGES = 10_000

    def __init__(
        self,
        facts: Iterable[Atom] = (),
        schema: RelationalSchema | None = None,
        max_tracked_changes: int | None = None,
    ) -> None:
        if max_tracked_changes is None:
            max_tracked_changes = self.MAX_TRACKED_CHANGES
        if max_tracked_changes < 0:
            raise ValueError(
                f"max_tracked_changes must be >= 0, got {max_tracked_changes}"
            )
        self.max_tracked_changes = max_tracked_changes
        self._schema = schema
        self._facts: set[Atom] = set()
        self._by_predicate: dict[Predicate, set[Atom]] = defaultdict(set)
        self._by_position_value: dict[tuple[Predicate, int, Term], set[Atom]] = defaultdict(set)
        self._epoch = 0
        # One (added?, fact) entry per epoch step, for epochs
        # (_change_floor, _epoch]; older entries are discarded.
        self._changes: deque[tuple[bool, Atom]] = deque(maxlen=max_tracked_changes)
        self._change_floor = 0
        # Per-relation distinct-value counts for the cost-aware planner,
        # computed lazily and valid for one epoch: (epoch, counts) entries.
        self._cardinality_cache: dict[Predicate, tuple[int, tuple[int, ...]]] = {}
        for fact in facts:
            self.add(fact)

    # -- mutation ---------------------------------------------------------------

    @property
    def epoch(self) -> int:
        """Monotone change counter: bumped whenever the fact set changes.

        Re-inserting an existing fact (or removing an absent one) leaves
        the epoch unchanged — the database is the same set of facts — so
        epoch equality is exactly "nothing to invalidate" for answer
        caches built on top.
        """
        return self._epoch

    def _log_change(self, added: bool, fact: Atom) -> None:
        """Record one genuine mutation, advancing the floor on overflow."""
        if len(self._changes) == self.max_tracked_changes:
            self._change_floor += 1
        self._changes.append((added, fact))

    def changes_since(self, epoch: int) -> list[tuple[bool, Atom]] | None:
        """The ``(added?, fact)`` delta from *epoch* to now, oldest first.

        Returns ``None`` when the change log no longer reaches back to
        *epoch* (too many mutations since, or *epoch* predates this
        instance) — the caller must then treat the whole instance as
        changed.  An up-to-date *epoch* returns the empty list.  Replaying
        the delta in order over a copy of the instance's state at *epoch*
        reproduces the current fact set exactly (a fact removed and
        re-added contributes both entries).
        """
        if epoch > self._epoch:
            return None
        if epoch < self._change_floor:
            return None
        return list(self._changes)[epoch - self._change_floor :]

    def add(self, fact: Atom) -> bool:
        """Insert a ground atom; returns ``True`` if it was new."""
        if not fact.is_ground():
            raise ValueError(f"cannot store non-ground atom {fact!r}")
        if self._schema is not None and fact.name not in self._schema:
            self._schema.add_predicate(fact.predicate)
        if fact in self._facts:
            return False
        self._facts.add(fact)
        self._by_predicate[fact.predicate].add(fact)
        for index, term in enumerate(fact.terms, start=1):
            self._by_position_value[(fact.predicate, index, term)].add(fact)
        self._epoch += 1
        self._log_change(True, fact)
        return True

    def remove(self, fact: Atom) -> bool:
        """Delete a ground atom; returns ``True`` if it was present."""
        if fact not in self._facts:
            return False
        self._facts.discard(fact)
        self._by_predicate[fact.predicate].discard(fact)
        for index, term in enumerate(fact.terms, start=1):
            self._by_position_value[(fact.predicate, index, term)].discard(fact)
        self._epoch += 1
        self._log_change(False, fact)
        return True

    def remove_tuple(self, relation_name: str, values: Sequence[object]) -> bool:
        """Delete a tuple of plain Python values from the named relation."""
        predicate = Predicate(relation_name, len(values))
        return self.remove(Atom(predicate, tuple(Constant(v) for v in values)))

    def add_all(self, facts: Iterable[Atom]) -> int:
        """Insert many atoms; returns the number of new atoms."""
        return sum(1 for fact in facts if self.add(fact))

    def add_tuple(self, relation_name: str, values: Sequence[object]) -> bool:
        """Insert a tuple of plain Python values into the named relation."""
        predicate = Predicate(relation_name, len(values))
        return self.add(Atom(predicate, tuple(Constant(v) for v in values)))

    # -- inspection ---------------------------------------------------------------

    def __contains__(self, fact: Atom) -> bool:
        return fact in self._facts

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._facts)

    def __len__(self) -> int:
        return len(self._facts)

    @property
    def facts(self) -> frozenset[Atom]:
        """All stored atoms."""
        return frozenset(self._facts)

    @property
    def schema(self) -> RelationalSchema | None:
        """The schema the instance was created with (if any)."""
        return self._schema

    def predicates(self) -> frozenset[Predicate]:
        """Predicates with at least one stored atom."""
        return frozenset(p for p, atoms in self._by_predicate.items() if atoms)

    def relation(self, predicate: Predicate) -> frozenset[Atom]:
        """All atoms of the given predicate."""
        return frozenset(self._by_predicate.get(predicate, ()))

    def relation_by_name(self, name: str, arity: int) -> frozenset[Atom]:
        """All atoms of the predicate ``name/arity``."""
        return self.relation(Predicate(name, arity))

    def relation_size(self, predicate: Predicate) -> int:
        """Number of stored atoms of *predicate* (no copy, unlike :meth:`relation`)."""
        return len(self._by_predicate.get(predicate, ()))

    def position_cardinalities(self, predicate: Predicate) -> tuple[int, ...]:
        """Distinct values stored at each position of *predicate* (0-based tuple).

        The statistic behind the cost-aware planner's selectivity
        estimates (:mod:`repro.database.planning`): a relation of size
        ``N`` probed with a bound value at position ``i`` is expected to
        yield ``N / cardinalities[i]`` rows.  Counts are computed lazily
        and cached until the next genuine mutation (epoch bump).
        """
        cached = self._cardinality_cache.get(predicate)
        if cached is not None and cached[0] == self._epoch:
            return cached[1]
        facts = self._by_predicate.get(predicate, ())
        counts = tuple(
            len({fact.terms[position] for fact in facts})
            for position in range(predicate.arity)
        )
        self._cardinality_cache[predicate] = (self._epoch, counts)
        return counts

    def matching(self, predicate: Predicate, bound: dict[int, Term]) -> frozenset[Atom]:
        """Atoms of *predicate* agreeing with the bound (1-based) positions.

        Uses the per-(position, value) index: the candidate set is the
        intersection of the index entries, starting from the smallest.
        """
        if not bound:
            return self.relation(predicate)
        candidate_sets = []
        for position, value in bound.items():
            candidates = self._by_position_value.get((predicate, position, value))
            if not candidates:
                return frozenset()
            candidate_sets.append(candidates)
        candidate_sets.sort(key=len)
        result = set(candidate_sets[0])
        for candidates in candidate_sets[1:]:
            result &= candidates
            if not result:
                break
        return frozenset(result)

    def constants(self) -> frozenset[Constant]:
        """The active domain of the instance (constants only)."""
        return frozenset(
            term for fact in self._facts for term in fact.terms if is_constant(term)
        )

    # -- integrity ------------------------------------------------------------------

    def satisfies_key(self, key: KeyDependency) -> bool:
        """``True`` iff the instance satisfies the key dependency.

        Two distinct tuples of the key's relation must not agree on all key
        positions (Section 4.2: the preliminary KD check performed before
        dropping the keys from the reasoning problem).
        """
        groups: dict[tuple[Term, ...], Atom] = {}
        for fact in self._by_predicate.get(key.predicate, ()):  # noqa: B905
            key_values = tuple(fact[i] for i in key.key_positions)
            other = groups.get(key_values)
            if other is not None and other != fact:
                return False
            groups.setdefault(key_values, fact)
        return True

    def satisfies_keys(self, keys: Iterable[KeyDependency]) -> bool:
        """``True`` iff all key dependencies hold."""
        return all(self.satisfies_key(key) for key in keys)

    def __repr__(self) -> str:
        return f"RelationalInstance({len(self._facts)} facts, {len(self.predicates())} relations)"


def database_from_tuples(
    tuples: Iterable[tuple[str, Sequence[object]]],
    schema: RelationalSchema | None = None,
) -> RelationalInstance:
    """Build an instance from ``[("stock", ("s1", "ACME", 12)), ...]`` pairs."""
    instance = RelationalInstance(schema=schema)
    for relation_name, values in tuples:
        instance.add_tuple(relation_name, values)
    return instance
