"""Relational schemas.

A relational schema is a set of predicate (relation) symbols with arities and
optional attribute names (Section 3.1).  Attribute names are only used for
readable SQL generation; the logical machinery works purely with positional
arguments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from ..logic.atoms import Position, Predicate


@dataclass(frozen=True)
class Relation:
    """A relation symbol with optional attribute names."""

    predicate: Predicate
    attributes: tuple[str, ...] = ()

    def __init__(self, predicate: Predicate, attributes: Sequence[str] = ()) -> None:
        attributes = tuple(attributes)
        if attributes and len(attributes) != predicate.arity:
            raise ValueError(
                f"{predicate!r} has arity {predicate.arity} but "
                f"{len(attributes)} attribute names were given"
            )
        if not attributes:
            attributes = tuple(f"arg{i}" for i in range(1, predicate.arity + 1))
        object.__setattr__(self, "predicate", predicate)
        object.__setattr__(self, "attributes", attributes)

    @property
    def name(self) -> str:
        """The relation name."""
        return self.predicate.name

    @property
    def arity(self) -> int:
        """The relation arity."""
        return self.predicate.arity

    def attribute_of(self, position: int) -> str:
        """Attribute name of the 1-based *position*."""
        return self.attributes[position - 1]

    def __repr__(self) -> str:
        return f"{self.name}({', '.join(self.attributes)})"


class RelationalSchema:
    """A collection of relations, addressable by name."""

    def __init__(self, relations: Iterable[Relation] = ()) -> None:
        self._relations: dict[str, Relation] = {}
        for relation in relations:
            self.add(relation)

    def add(self, relation: Relation) -> None:
        """Register a relation; re-adding the same relation is a no-op."""
        existing = self._relations.get(relation.name)
        if existing is not None and existing.predicate != relation.predicate:
            raise ValueError(
                f"relation {relation.name!r} already declared with arity "
                f"{existing.arity}, cannot redeclare with arity {relation.arity}"
            )
        self._relations.setdefault(relation.name, relation)

    def add_predicate(self, predicate: Predicate) -> None:
        """Register a predicate with default attribute names."""
        self.add(Relation(predicate))

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __getitem__(self, name: str) -> Relation:
        return self._relations[name]

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    def get(self, name: str) -> Relation | None:
        """The relation named *name*, or ``None``."""
        return self._relations.get(name)

    def predicates(self) -> frozenset[Predicate]:
        """All predicates of the schema."""
        return frozenset(r.predicate for r in self._relations.values())

    def positions(self) -> frozenset[Position]:
        """All positions of the schema."""
        return frozenset(
            Position(r.predicate, i)
            for r in self._relations.values()
            for i in range(1, r.arity + 1)
        )

    @staticmethod
    def from_spec(spec: Mapping[str, Sequence[str]]) -> "RelationalSchema":
        """Build a schema from ``{"stock": ["id", "name", "unit_price"], ...}``."""
        schema = RelationalSchema()
        for name, attributes in spec.items():
            schema.add(Relation(Predicate(name, len(attributes)), tuple(attributes)))
        return schema

    def __repr__(self) -> str:
        return "RelationalSchema(" + ", ".join(sorted(self._relations)) + ")"
