"""Synthetic database (ABox) generation.

The paper's experiments measure the *size of rewritings*, which does not
depend on data; end-to-end query answering (and our correctness tests),
however, needs ABoxes.  This module produces random but reproducible
instances over a given schema, optionally biased so that the relations
mentioned by a set of TGDs share constants (which makes joins and rule
applications actually fire instead of producing empty chases).
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from ..logic.atoms import Atom, Predicate
from ..logic.terms import Constant
from ..dependencies.tgd import TGD, schema_predicates
from .instance import RelationalInstance
from .schema import RelationalSchema


class DatabaseGenerator:
    """Reproducible random instance generator."""

    def __init__(self, seed: int = 0, domain_size: int = 30) -> None:
        self._random = random.Random(seed)
        self._domain = [Constant(f"c{i}") for i in range(domain_size)]

    def random_constant(self) -> Constant:
        """A uniformly random constant of the generator's domain."""
        return self._random.choice(self._domain)

    def random_fact(self, predicate: Predicate) -> Atom:
        """A random fact of the given predicate."""
        return Atom(
            predicate, tuple(self.random_constant() for _ in range(predicate.arity))
        )

    def populate(
        self,
        predicates: Iterable[Predicate],
        facts_per_relation: int = 10,
        schema: RelationalSchema | None = None,
    ) -> RelationalInstance:
        """Create an instance with roughly *facts_per_relation* facts per predicate."""
        instance = RelationalInstance(schema=schema)
        for predicate in sorted(predicates, key=lambda p: (p.name, p.arity)):
            for _ in range(facts_per_relation):
                instance.add(self.random_fact(predicate))
        return instance

    def populate_for_rules(
        self,
        rules: Sequence[TGD],
        facts_per_relation: int = 10,
        schema: RelationalSchema | None = None,
    ) -> RelationalInstance:
        """Create an instance covering every predicate mentioned by *rules*."""
        return self.populate(
            schema_predicates(rules), facts_per_relation=facts_per_relation, schema=schema
        )


def random_database(
    rules: Sequence[TGD],
    seed: int = 0,
    facts_per_relation: int = 10,
    domain_size: int = 30,
) -> RelationalInstance:
    """One-shot helper: a random instance over the schema of *rules*."""
    generator = DatabaseGenerator(seed=seed, domain_size=domain_size)
    return generator.populate_for_rules(rules, facts_per_relation=facts_per_relation)
