"""Cost-aware join and disjunct planning over relational instances.

The evaluator's original join ordering was purely structural (more bound
terms first, smaller relation as tie-break).  This module replaces the
heuristic with the textbook System-R style estimate actually derivable
from the instance: a relation of size ``N`` filtered on ``k`` bound
positions with ``d1, ..., dk`` distinct values at those positions is
expected to yield ``N / (d1 · ... · dk)`` rows (independence assumption,
uniform values).  Distinct counts come from
:meth:`repro.database.instance.RelationalInstance.position_cardinalities`,
which caches them per epoch — statistics are collected once per database
state, not once per query.

Two consumers:

* **join order** — :meth:`CardinalityEstimator.plan_body` orders one CQ
  body greedily by estimated output rows (ties broken by bound-term count,
  relation size, then original position, so planning is deterministic);
* **disjunct order** — :meth:`CardinalityEstimator.order_disjuncts` ranks
  a UCQ's member CQs by total estimated work (the sum of cumulative
  intermediate-result sizes along the join), so both backends execute
  cheap disjuncts first.

Ordering never changes *what* is answered — UCQ answers are a set union
and CQ answers are order-independent — which is why the existing
backend-agreement differential tests double as the safety net for this
module.
"""

from __future__ import annotations

from typing import NamedTuple, Sequence

from ..logic.atoms import Atom
from ..logic.terms import Term, is_constant, is_variable
from .instance import RelationalInstance

__all__ = ["CardinalityEstimator", "JoinPlan"]


class JoinPlan(NamedTuple):
    """A planned join order for one CQ body, with its cost estimates."""

    #: The body atoms in execution order.
    order: tuple[Atom, ...]
    #: Estimated rows produced by each join step, in execution order.
    step_rows: tuple[float, ...]
    #: Estimated size of the intermediate result after each step.
    cumulative_rows: tuple[float, ...]
    #: Total estimated work: the sum of the cumulative sizes.
    cost: float


class CardinalityEstimator:
    """Selectivity estimates for one :class:`RelationalInstance`.

    The estimator is cheap to construct (it holds only the instance); the
    expensive part — per-position distinct counts — is cached on the
    instance itself, keyed by its epoch.
    """

    def __init__(self, instance: RelationalInstance) -> None:
        self._instance = instance

    def relation_size(self, atom: Atom) -> int:
        """Stored tuples of the atom's relation."""
        return self._instance.relation_size(atom.predicate)

    def estimate_rows(self, atom: Atom, bound_variables: set[Term]) -> float:
        """Expected matches of *atom* given the already-bound variables.

        ``size / ∏ distinct(position)`` over the positions carrying a
        constant or a bound variable; a position whose distinct count is
        zero or one filters nothing and contributes no factor.
        """
        size = self._instance.relation_size(atom.predicate)
        if size == 0:
            return 0.0
        cardinalities = self._instance.position_cardinalities(atom.predicate)
        estimate = float(size)
        for position, term in enumerate(atom.terms):
            if is_constant(term) or term in bound_variables:
                distinct = cardinalities[position]
                if distinct > 1:
                    estimate /= distinct
        return estimate

    def plan_body(self, body: Sequence[Atom]) -> JoinPlan:
        """Greedy cost-ordered join plan for one CQ body.

        At each step the atom with the fewest estimated matches (under the
        bindings accumulated so far) is joined next; ties fall back to the
        structural heuristic the evaluator used before (more bound terms,
        smaller relation), then to the original body position, so the plan
        is a deterministic function of ``(body, database state)``.
        """
        atoms = list(body)
        if not atoms:
            return JoinPlan((), (), (), 0.0)
        remaining = list(range(len(atoms)))
        bound_variables: set[Term] = set()
        order: list[Atom] = []
        step_rows: list[float] = []
        cumulative: list[float] = []
        frontier = 1.0
        cost = 0.0
        while remaining:
            best_index = None
            best_key: tuple | None = None
            for index in remaining:
                atom = atoms[index]
                rows = self.estimate_rows(atom, bound_variables)
                bound_count = sum(
                    1
                    for term in atom.terms
                    if is_constant(term) or term in bound_variables
                )
                key = (rows, -bound_count, self.relation_size(atom), index)
                if best_key is None or key < best_key:
                    best_key, best_index = key, index
            assert best_index is not None and best_key is not None
            remaining.remove(best_index)
            atom = atoms[best_index]
            rows = best_key[0]
            frontier *= rows
            cost += frontier
            order.append(atom)
            step_rows.append(rows)
            cumulative.append(frontier)
            bound_variables.update(t for t in atom.terms if is_variable(t))
        return JoinPlan(tuple(order), tuple(step_rows), tuple(cumulative), cost)

    def order_disjuncts(
        self, bodies: Sequence[Sequence[Atom]]
    ) -> tuple[tuple[int, ...], tuple[JoinPlan, ...]]:
        """Cheapest-first execution order over a UCQ's member bodies.

        Returns ``(order, plans)`` where *order* lists original disjunct
        indexes sorted by estimated cost (stable: equal costs keep their
        original relative order) and *plans* is indexed by the original
        position, so callers can keep original-index semantics for
        per-disjunct consumers.
        """
        plans = tuple(self.plan_body(body) for body in bodies)
        order = tuple(
            sorted(range(len(plans)), key=lambda index: (plans[index].cost, index))
        )
        return order, plans
