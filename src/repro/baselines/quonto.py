"""QuOnto-style rewriting: single-atom resolution with exhaustive factorisation.

This is the comparison system ``QO`` of Table 1.  It reimplements the
PerfectRef-style algorithm of Calvanese et al. (JAR'07) in the generalised
TGD setting of Calì, Gottlob & Pieris (AMW'10) — the algorithm the paper's
``TGD-rewrite`` improves upon.  The two differences that make its output
larger are exactly the weaknesses discussed in Section 2:

* the **reduce step** (factorisation) is *exhaustive*: any two body atoms
  over the same predicate that unify are unified, and every query produced
  this way is kept **in the final rewriting** (TGD-rewrite instead restricts
  factorisation to Definition 2 and excludes factorised queries from the
  output);
* no redundancy elimination is performed: existential joins that the
  constraints render superfluous stay in every generated query, so whole
  families of redundant CQs are expanded.

The algorithm remains sound and complete (it explores a superset of the
queries explored by TGD-rewrite), which the integration tests verify against
the chase; it is simply wasteful — that waste is what Table 1 quantifies.
"""

from __future__ import annotations

import time
from itertools import combinations
from typing import Iterable, Sequence

from ..core.applicability import is_applicable
from ..core.rewriter import RewritingResult, RewritingStatistics
from ..dependencies.normalization import is_normalized, normalize
from ..dependencies.tgd import TGD
from ..dependencies.theory import OntologyTheory
from ..logic.terms import VariableFactory
from ..logic.unification import mgu
from ..queries.conjunctive_query import ConjunctiveQuery
from ..queries.ucq import QuerySet, UnionOfConjunctiveQueries


class QuOntoStyleRewriter:
    """Single-atom backward-chaining rewriter with exhaustive factorisation."""

    def __init__(
        self,
        rules: Sequence[TGD] | OntologyTheory,
        max_queries: int = 200_000,
    ) -> None:
        if isinstance(rules, OntologyTheory):
            rules = rules.tgds
        rules = list(rules)
        internal_predicates: frozenset = frozenset()
        if not is_normalized(rules):
            normalization = normalize(rules)
            rules = list(normalization.rules)
            internal_predicates = frozenset(normalization.auxiliary_predicates)
        self._rules: tuple[TGD, ...] = tuple(rules)
        # CQs over auxiliary predicates invented by the internal normalisation
        # can never match stored facts and are excluded from the output.
        self._internal_predicates = internal_predicates
        self._fresh = VariableFactory(prefix="QV")
        self._max_queries = max_queries

    @property
    def rules(self) -> tuple[TGD, ...]:
        """The (normalised) TGDs used for rewriting."""
        return self._rules

    def rewrite(self, query: ConjunctiveQuery) -> RewritingResult:
        """Compute the QuOnto-style perfect rewriting of *query*."""
        start = time.perf_counter()
        statistics = RewritingStatistics()
        store = QuerySet()
        store.add(query)
        worklist: list[ConjunctiveQuery] = [query]

        while worklist:
            current = worklist.pop()
            statistics.processed_queries += 1
            for candidate in self._rewriting_candidates(current):
                if store.add(candidate):
                    worklist.append(candidate)
                    statistics.generated_by_rewriting += 1
            for candidate in self._factorization_candidates(current):
                if store.add(candidate):
                    worklist.append(candidate)
                    statistics.generated_by_factorization += 1
            if len(store) > self._max_queries:
                raise RuntimeError(
                    f"QuOnto-style rewriting exceeded the budget of "
                    f"{self._max_queries} queries"
                )

        statistics.elapsed_seconds = time.perf_counter() - start
        visible = [
            stored
            for stored in store
            if not any(atom.predicate in self._internal_predicates for atom in stored.body)
        ]
        return RewritingResult(
            query=query,
            rules=self._rules,
            ucq=UnionOfConjunctiveQueries(visible),
            statistics=statistics,
        )

    # -- the two steps -------------------------------------------------------

    def _rewriting_candidates(
        self, query: ConjunctiveQuery
    ) -> Iterable[ConjunctiveQuery]:
        """Single-atom resolution against every applicable rule."""
        for rule in self._rules:
            renamed = rule.rename_apart(query.variables, self._fresh)
            head_atom = renamed.head[0]
            for atom in query.body:
                if atom.predicate != head_atom.predicate:
                    continue
                if not is_applicable(renamed, (atom,), query):
                    continue
                unifier = mgu([atom, head_atom])
                if unifier is None:  # pragma: no cover - applicability checked
                    continue
                # Assemble the resolved query in one go: the intermediate
                # query q[a / body(σ)] may temporarily drop an answer
                # variable that the unifier reintroduces via the frontier.
                new_body = [
                    unifier.apply_atom(other) for other in query.body if other != atom
                ]
                new_body.extend(unifier.apply_atom(other) for other in renamed.body)
                new_answer = tuple(
                    unifier.apply_term(term) for term in query.answer_terms
                )
                yield ConjunctiveQuery(new_body, new_answer, query.head_name)

    def _factorization_candidates(
        self, query: ConjunctiveQuery
    ) -> Iterable[ConjunctiveQuery]:
        """Exhaustive reduce step: unify every unifiable pair of body atoms."""
        for left, right in combinations(query.body, 2):
            if left.predicate != right.predicate:
                continue
            unifier = mgu([left, right])
            if unifier is None:
                continue
            # PerfectRef's reduce step applies the unifier to the whole query
            # (head included); answer variables may get renamed or merged,
            # which is harmless because head and body are substituted
            # consistently.
            yield query.apply(unifier)


def quonto_rewrite(
    query: ConjunctiveQuery,
    rules: Sequence[TGD] | OntologyTheory,
    max_queries: int = 200_000,
) -> RewritingResult:
    """One-shot QuOnto-style rewriting."""
    return QuOntoStyleRewriter(rules, max_queries=max_queries).rewrite(query)
