"""The Chase & Back-chase (C&B) reformulation algorithm (Deutsch, Popa & Tannen).

Section 2 of the paper discusses C&B as the reference *minimisation*
technique: given a CQ ``q`` and a set Σ of constraints, it finds **all the
minimal equivalent reformulations** of ``q`` under Σ.  The algorithm:

1. **Chase step** — freeze ``body(q)`` into a canonical database ``D_q`` and
   chase it with Σ; the atoms of ``chase(D_q, Σ)`` (viewed as a query again)
   form the *universal plan* ``q_u``.
2. **Back-chase step** — enumerate the subsets of ``body(q_u)`` by increasing
   size; a subset ``B`` is an equivalent reformulation when the original
   query folds into ``chase(freeze(B), Σ)`` while preserving the answer
   terms.  Supersets of an already-found reformulation are skipped, which is
   what guarantees minimality.

C&B subsumes the paper's query elimination (Example 8 shows an implication
that coverage misses but C&B finds) at the cost of chasing exponentially many
candidate databases.  The implementation below bounds the chase depth so it
can also be used with rule sets whose chase does not terminate (linear TGDs
may be cyclic); with a terminating chase the output is exact, otherwise it is
a sound under-approximation of the set of reformulations (every returned
query is equivalent to ``q`` — entailment established through a deeper chase
than the bound can simply be missed).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from itertools import combinations
from typing import Iterable, Sequence

from ..chase.chase import ChaseEngine
from ..dependencies.tgd import TGD
from ..dependencies.theory import OntologyTheory
from ..logic.atoms import Atom
from ..logic.homomorphism import find_homomorphism
from ..logic.terms import Constant, Term, is_variable
from ..queries.conjunctive_query import ConjunctiveQuery


@dataclass(frozen=True)
class BackchaseResult:
    """Outcome of a C&B run."""

    query: ConjunctiveQuery
    universal_plan: ConjunctiveQuery
    reformulations: tuple[ConjunctiveQuery, ...]
    chase_exhausted: bool
    elapsed_seconds: float

    @property
    def minimal_size(self) -> int:
        """Number of atoms of the smallest reformulation found."""
        if not self.reformulations:
            return len(self.query.body)
        return min(len(q.body) for q in self.reformulations)


class ChaseBackchase:
    """Chase & Back-chase minimiser for conjunctive queries under TGDs."""

    def __init__(
        self,
        rules: Sequence[TGD] | OntologyTheory,
        max_chase_depth: int | None = 6,
        max_chase_atoms: int | None = 2_000,
        max_plan_atoms: int = 18,
    ) -> None:
        if isinstance(rules, OntologyTheory):
            rules = rules.tgds
        self._rules = tuple(rules)
        self._max_chase_depth = max_chase_depth
        self._max_chase_atoms = max_chase_atoms
        self._max_plan_atoms = max_plan_atoms

    @property
    def rules(self) -> tuple[TGD, ...]:
        """The TGDs used for chasing."""
        return self._rules

    # -- public API ---------------------------------------------------------------

    def reformulate(self, query: ConjunctiveQuery) -> BackchaseResult:
        """Run C&B on *query* and return all minimal reformulations found."""
        start = time.perf_counter()
        frozen_body, freezing = query.freeze()
        unfreeze = {value: key for key, value in freezing.as_dict().items()}

        chase_result = self._chase(frozen_body)
        plan_atoms = self._universal_plan_atoms(chase_result.atoms, unfreeze)
        universal_plan = ConjunctiveQuery(
            plan_atoms, query.answer_terms, query.head_name
        )

        reformulations = tuple(self._backchase(query, plan_atoms))
        return BackchaseResult(
            query=query,
            universal_plan=universal_plan,
            reformulations=reformulations,
            chase_exhausted=chase_result.exhausted,
            elapsed_seconds=time.perf_counter() - start,
        )

    def minimize(self, query: ConjunctiveQuery) -> ConjunctiveQuery:
        """The smallest reformulation found (the query itself if none is smaller)."""
        result = self.reformulate(query)
        if not result.reformulations:
            return query
        return min(result.reformulations, key=lambda q: len(q.body))

    # -- the two phases --------------------------------------------------------------

    def _chase(self, frozen_body: Iterable[Atom]):
        """Chase the canonical database of the query."""
        engine = ChaseEngine(
            list(self._rules),
            variant="restricted",
            max_depth=self._max_chase_depth,
            max_atoms=self._max_chase_atoms,
        )
        return engine.run(frozen_body)

    def _universal_plan_atoms(
        self, chase_atoms: Iterable[Atom], unfreeze: dict[Term, Term]
    ) -> tuple[Atom, ...]:
        """Unfreeze the chase atoms back into query atoms (nulls become variables).

        Labelled nulls invented by the chase are turned into fresh variables so
        that candidate sub-queries can still be posed against ordinary
        databases.  The plan is truncated to ``max_plan_atoms`` atoms (smallest
        chase levels first) to keep the exponential back-chase tractable; the
        truncation is recorded implicitly because every reformulation is
        verified for equivalence before being returned.
        """
        atoms = sorted(chase_atoms, key=repr)
        translated: list[Atom] = []
        null_names: dict[Term, Term] = {}
        for atom in atoms:
            new_terms: list[Term] = []
            for term in atom.terms:
                if term in unfreeze:
                    new_terms.append(unfreeze[term])
                elif isinstance(term, Constant):
                    new_terms.append(term)
                else:
                    fresh = null_names.setdefault(
                        term, _null_variable(len(null_names))
                    )
                    new_terms.append(fresh)
            translated.append(Atom(atom.predicate, tuple(new_terms)))
        translated = list(dict.fromkeys(translated))
        return tuple(translated[: self._max_plan_atoms])

    def _backchase(
        self, query: ConjunctiveQuery, plan_atoms: Sequence[Atom]
    ) -> Iterable[ConjunctiveQuery]:
        """Enumerate minimal equivalent sub-queries of the universal plan."""
        found_bodies: list[frozenset[Atom]] = []
        answer_variables = {t for t in query.answer_terms if is_variable(t)}
        for size in range(1, len(plan_atoms) + 1):
            for subset in combinations(plan_atoms, size):
                body = frozenset(subset)
                if any(previous <= body for previous in found_bodies):
                    continue  # supersets of a reformulation are redundant
                subset_variables = {
                    t for atom in subset for t in atom.terms if is_variable(t)
                }
                if not answer_variables <= subset_variables:
                    continue
                candidate = ConjunctiveQuery(subset, query.answer_terms, query.head_name)
                if self._equivalent(query, candidate):
                    found_bodies.append(body)
                    yield candidate

    def _equivalent(
        self, query: ConjunctiveQuery, candidate: ConjunctiveQuery
    ) -> bool:
        """Σ-equivalence check: both containments via the chase of the frozen bodies.

        ``candidate ⊑Σ query`` holds because the candidate's atoms come from
        the chase of the frozen query, so only ``query ⊑Σ candidate`` needs an
        explicit check: freeze the candidate, chase it, and look for a
        containment mapping from the original query.
        """
        frozen_body, freezing = candidate.freeze()
        chase_result = self._chase(frozen_body)
        partial = {
            term: freezing.apply_term(term)
            for term in query.answer_terms
            if is_variable(term)
        }
        return (
            find_homomorphism(query.body, chase_result.atoms, partial=partial)
            is not None
        )


def _null_variable(index: int):
    """A fresh variable standing for a chase null inside the universal plan."""
    from ..logic.terms import Variable

    return Variable(f"N{index}")


def backchase_minimize(
    query: ConjunctiveQuery,
    rules: Sequence[TGD] | OntologyTheory,
    max_chase_depth: int | None = 6,
) -> ConjunctiveQuery:
    """One-shot C&B minimisation returning the smallest reformulation found."""
    return ChaseBackchase(rules, max_chase_depth=max_chase_depth).minimize(query)
