"""Requiem-style rewriting: resolution with Skolem functional terms.

This is the comparison system ``RQ`` of Table 1 (Pérez-Urbina, Motik &
Horrocks, "Efficient query answering for OWL 2").  Instead of handling
existential quantification through a dedicated factorisation step, the
algorithm *skolemises* the TGDs — every existential variable becomes a
functional term over the rule's frontier — and then saturates the query
clause by SLD-style unfolding against the skolemised rules:

1. each normalised TGD ``φ(X) → ∃Z r(X, Z)`` becomes the Horn clause
   ``r(X, f_σ(X)) ← φ(X)``;
2. the query becomes the clause ``q(answer) ← body``;
3. repeatedly, a body atom of a query clause is resolved against the head of
   a rule clause (after renaming apart), producing a new query clause; the
   functional terms make explicit factoring unnecessary, because atoms that
   originate from the same invented value carry the same ``f_σ(...)`` term
   and unify on their own;
4. at fixpoint, clauses still mentioning a function symbol cannot match any
   database fact and are discarded; the remaining clauses form the UCQ
   rewriting (optionally pruned of subsumed members, as Requiem's ``RQ``
   variant does).

Unification here must cope with nested functional terms (occurs check and
decomposition), so the module carries its own small term/unification layer
rather than reusing :mod:`repro.logic.unification`, which is deliberately
restricted to the function-free setting of the paper's algorithms.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence, Union

from ..core.rewriter import RewritingResult, RewritingStatistics
from ..dependencies.normalization import is_normalized, normalize
from ..dependencies.tgd import TGD
from ..dependencies.theory import OntologyTheory
from ..logic.atoms import Atom, Predicate
from ..logic.terms import Constant, Term, Variable, is_variable
from ..queries.conjunctive_query import ConjunctiveQuery
from ..queries.ucq import QuerySet, UnionOfConjunctiveQueries


# ---------------------------------------------------------------------------
# Terms with Skolem functions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FunctionalTerm:
    """A Skolem term ``f(t1, ..., tn)`` standing for an invented value."""

    function: str
    arguments: tuple["SkolemTerm", ...]

    def __repr__(self) -> str:
        args = ", ".join(str(a) for a in self.arguments)
        return f"{self.function}({args})"


SkolemTerm = Union[Variable, Constant, FunctionalTerm]


def term_depth(term: SkolemTerm) -> int:
    """Nesting depth of functional terms (variables and constants have depth 0)."""
    if isinstance(term, FunctionalTerm):
        return 1 + max((term_depth(a) for a in term.arguments), default=0)
    return 0


def term_variables(term: SkolemTerm) -> frozenset[Variable]:
    """Variables occurring (at any depth) in a term."""
    if isinstance(term, Variable):
        return frozenset({term})
    if isinstance(term, FunctionalTerm):
        found: set[Variable] = set()
        for argument in term.arguments:
            found |= term_variables(argument)
        return frozenset(found)
    return frozenset()


def contains_function(term: SkolemTerm) -> bool:
    """``True`` iff the term is or contains a functional term."""
    return isinstance(term, FunctionalTerm)


def substitute_term(term: SkolemTerm, mapping: Mapping[Variable, SkolemTerm]) -> SkolemTerm:
    """Apply a variable substitution inside a (possibly functional) term."""
    if isinstance(term, Variable):
        return mapping.get(term, term)
    if isinstance(term, FunctionalTerm):
        return FunctionalTerm(
            term.function, tuple(substitute_term(a, mapping) for a in term.arguments)
        )
    return term


# ---------------------------------------------------------------------------
# Literals and clauses
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Literal:
    """An atom whose arguments may be Skolem terms."""

    predicate: Predicate
    terms: tuple[SkolemTerm, ...]

    @staticmethod
    def from_atom(atom: Atom) -> "Literal":
        """Lift a function-free atom into a literal."""
        return Literal(atom.predicate, tuple(atom.terms))

    def to_atom(self) -> Atom:
        """Lower a function-free literal back to an atom (raises otherwise)."""
        if self.has_functions():
            raise ValueError(f"{self!r} contains functional terms")
        return Atom(self.predicate, self.terms)

    def has_functions(self) -> bool:
        """``True`` iff some argument contains a functional term."""
        return any(contains_function(t) for t in self.terms)

    def variables(self) -> frozenset[Variable]:
        """All variables occurring in the literal."""
        found: set[Variable] = set()
        for term in self.terms:
            found |= term_variables(term)
        return frozenset(found)

    def depth(self) -> int:
        """Maximum functional nesting depth over the arguments."""
        return max((term_depth(t) for t in self.terms), default=0)

    def apply(self, mapping: Mapping[Variable, SkolemTerm]) -> "Literal":
        """Apply a substitution to all arguments."""
        return Literal(self.predicate, tuple(substitute_term(t, mapping) for t in self.terms))

    def __repr__(self) -> str:
        args = ", ".join(str(t) for t in self.terms)
        return f"{self.predicate.name}({args})"


@dataclass(frozen=True)
class HornClause:
    """A Horn clause ``head ← body`` over literals."""

    head: Literal
    body: tuple[Literal, ...]

    def variables(self) -> frozenset[Variable]:
        """All variables of the clause."""
        found = set(self.head.variables())
        for literal in self.body:
            found |= literal.variables()
        return frozenset(found)

    def depth(self) -> int:
        """Maximum functional nesting depth across all literals."""
        depths = [self.head.depth()] + [literal.depth() for literal in self.body]
        return max(depths)

    def has_functions(self) -> bool:
        """``True`` iff any literal carries a functional term."""
        return self.head.has_functions() or any(l.has_functions() for l in self.body)

    def apply(self, mapping: Mapping[Variable, SkolemTerm]) -> "HornClause":
        """Apply a substitution to head and body."""
        return HornClause(self.head.apply(mapping), tuple(l.apply(mapping) for l in self.body))

    def rename(self, suffix: str) -> "HornClause":
        """Rename every variable of the clause by appending *suffix*."""
        mapping = {v: Variable(f"{v.name}_{suffix}") for v in self.variables()}
        return self.apply(mapping)

    def __repr__(self) -> str:
        body = ", ".join(repr(l) for l in self.body)
        return f"{self.head!r} <- {body}"


# ---------------------------------------------------------------------------
# Unification over Skolem terms
# ---------------------------------------------------------------------------


def unify_skolem_terms(
    left: SkolemTerm, right: SkolemTerm, mapping: dict[Variable, SkolemTerm]
) -> dict[Variable, SkolemTerm] | None:
    """Extend *mapping* so that the two terms become equal, or return ``None``."""
    left = _resolve(left, mapping)
    right = _resolve(right, mapping)
    if left == right:
        return mapping
    if isinstance(left, Variable):
        if left in term_variables(right):
            return None  # occurs check
        mapping[left] = right
        return mapping
    if isinstance(right, Variable):
        if right in term_variables(left):
            return None
        mapping[right] = left
        return mapping
    if isinstance(left, FunctionalTerm) and isinstance(right, FunctionalTerm):
        if left.function != right.function or len(left.arguments) != len(right.arguments):
            return None
        for l_arg, r_arg in zip(left.arguments, right.arguments):
            if unify_skolem_terms(l_arg, r_arg, mapping) is None:
                return None
        return mapping
    return None  # constant vs constant / constant vs function mismatch


def _resolve(term: SkolemTerm, mapping: Mapping[Variable, SkolemTerm]) -> SkolemTerm:
    """Chase variable bindings (and rewrite below function symbols)."""
    while isinstance(term, Variable) and term in mapping:
        term = mapping[term]
    if isinstance(term, FunctionalTerm):
        return FunctionalTerm(term.function, tuple(_resolve(a, mapping) for a in term.arguments))
    return term


def unify_literals(left: Literal, right: Literal) -> dict[Variable, SkolemTerm] | None:
    """MGU of two literals, or ``None`` if they do not unify."""
    if left.predicate != right.predicate:
        return None
    mapping: dict[Variable, SkolemTerm] = {}
    for l_term, r_term in zip(left.terms, right.terms):
        if unify_skolem_terms(l_term, r_term, mapping) is None:
            return None
    # Normalise: fully resolve every binding so application is idempotent.
    return {variable: _resolve(value, mapping) for variable, value in mapping.items()}


# ---------------------------------------------------------------------------
# The rewriter
# ---------------------------------------------------------------------------


class ResolutionRewriter:
    """Requiem-style resolution/unfolding rewriter.

    Parameters
    ----------
    rules:
        The TGDs Σ (normalised automatically).
    prune_subsumed:
        When ``True`` (Requiem's ``RQ`` mode) subsumed CQs are removed from
        the final UCQ; when ``False`` (the ``RQr`` mode) only variants are
        deduplicated.
    max_depth:
        Bound on the nesting depth of Skolem terms in intermediate clauses; a
        clause exceeding it is discarded.  Linear and DL-Lite rule sets never
        need depth beyond the number of rules, so the default is generous.
    max_clauses:
        Safety budget on the number of generated clauses.
    """

    def __init__(
        self,
        rules: Sequence[TGD] | OntologyTheory,
        prune_subsumed: bool = True,
        max_depth: int = 10,
        max_clauses: int = 200_000,
    ) -> None:
        if isinstance(rules, OntologyTheory):
            rules = rules.tgds
        rules = list(rules)
        internal_predicates: frozenset = frozenset()
        if not is_normalized(rules):
            normalization = normalize(rules)
            rules = list(normalization.rules)
            internal_predicates = frozenset(normalization.auxiliary_predicates)
        self._rules: tuple[TGD, ...] = tuple(rules)
        # Clauses over auxiliary predicates invented by the internal
        # normalisation can never match stored facts; they are dropped from
        # the harvested UCQ.
        self._internal_predicates = internal_predicates
        self._prune_subsumed = prune_subsumed
        self._max_depth = max_depth
        self._max_clauses = max_clauses
        self._rule_clauses: tuple[HornClause, ...] = tuple(
            self._skolemize(rule, index) for index, rule in enumerate(rules)
        )
        self._clauses_by_head: dict[Predicate, list[HornClause]] = {}
        for clause in self._rule_clauses:
            self._clauses_by_head.setdefault(clause.head.predicate, []).append(clause)

    @property
    def rules(self) -> tuple[TGD, ...]:
        """The (normalised) TGDs used for rewriting."""
        return self._rules

    @property
    def rule_clauses(self) -> tuple[HornClause, ...]:
        """The skolemised Horn clauses of the rule set."""
        return self._rule_clauses

    # -- skolemisation ---------------------------------------------------------

    @staticmethod
    def _skolemize(rule: TGD, index: int) -> HornClause:
        """Turn a normalised TGD into a Horn clause with Skolem functions."""
        head_atom = rule.head[0]
        frontier = tuple(sorted(rule.frontier, key=str))
        replacements: dict[Variable, SkolemTerm] = {
            variable: FunctionalTerm(f"f{index}_{variable.name}", frontier)
            for variable in rule.existential_variables
        }
        head = Literal.from_atom(head_atom).apply(replacements)
        body = tuple(Literal.from_atom(atom) for atom in rule.body)
        return HornClause(head, body)

    # -- rewriting --------------------------------------------------------------

    def rewrite(self, query: ConjunctiveQuery) -> RewritingResult:
        """Compute the resolution-based perfect rewriting of *query*."""
        start = time.perf_counter()
        statistics = RewritingStatistics()

        head = Literal(
            Predicate(query.head_name, query.arity), tuple(query.answer_terms)
        )
        initial = HornClause(head, tuple(Literal.from_atom(a) for a in query.body))

        seen: list[HornClause] = []
        seen_keys: set[tuple] = set()
        worklist: list[HornClause] = [initial]
        counter = itertools.count(1)

        def register(clause: HornClause) -> bool:
            key = _clause_key(clause)
            if key in seen_keys:
                return False
            seen_keys.add(key)
            seen.append(clause)
            return True

        register(initial)
        while worklist:
            clause = worklist.pop()
            statistics.processed_queries += 1
            for resolvent in self._resolvents(clause, next(counter)):
                if resolvent.depth() > self._max_depth:
                    continue
                if self._is_dead(resolvent):
                    statistics.pruned_by_constraints += 1
                    continue
                if register(resolvent):
                    worklist.append(resolvent)
                    statistics.generated_by_rewriting += 1
            if len(seen) > self._max_clauses:
                raise RuntimeError(
                    f"resolution rewriting exceeded the budget of {self._max_clauses} clauses"
                )

        queries = self._harvest(seen, query)
        statistics.elapsed_seconds = time.perf_counter() - start
        return RewritingResult(
            query=query,
            rules=self._rules,
            ucq=queries,
            statistics=statistics,
        )

    def _resolvents(self, clause: HornClause, step: int) -> Iterator[HornClause]:
        """All clauses obtained by unfolding one body literal against one rule.

        Rule clauses are indexed by head predicate and renamed apart only when
        the predicates actually match, which keeps the saturation loop cheap.
        """
        for position, literal in enumerate(clause.body):
            candidates = self._clauses_by_head.get(literal.predicate, ())
            for rule_index, rule_clause in enumerate(candidates):
                renamed = rule_clause.rename(f"{step}_{rule_index}")
                unifier = unify_literals(literal, renamed.head)
                if unifier is None:
                    continue
                new_body = (
                    clause.body[:position] + renamed.body + clause.body[position + 1 :]
                )
                resolvent = HornClause(clause.head, new_body).apply(unifier)
                yield _dedupe_body(resolvent)

    def _is_dead(self, clause: HornClause) -> bool:
        """Sound pruning of clauses that can never yield a function-free CQ.

        * A functional term in the **head** can never be removed (resolution
          only rewrites body literals), and an answer containing an invented
          value is never a certain answer, so the clause is useless.
        * A **body** literal containing a functional term can never match a
          database fact; if additionally no rule clause head unifies with it,
          it can never be resolved away either, so the clause is dead.

        Both checks are cheap (predicate-indexed) and dramatically shrink the
        saturation space on hierarchy-heavy ontologies, where invented values
        would otherwise be pushed pointlessly down whole concept taxonomies.
        """
        if clause.head.has_functions():
            return True
        for literal in clause.body:
            if not literal.has_functions():
                continue
            candidates = self._clauses_by_head.get(literal.predicate, ())
            if not any(
                unify_literals(literal, candidate.rename("dead_check").head) is not None
                for candidate in candidates
            ):
                return True
        return False

    def _harvest(
        self, clauses: Sequence[HornClause], query: ConjunctiveQuery
    ) -> UnionOfConjunctiveQueries:
        """Keep function-free clauses, convert them to CQs and deduplicate."""
        store = QuerySet()
        for clause in clauses:
            if clause.has_functions():
                continue
            if any(
                literal.predicate in self._internal_predicates for literal in clause.body
            ):
                continue
            body = tuple(literal.to_atom() for literal in clause.body)
            answers = tuple(clause.head.terms)
            store.add(ConjunctiveQuery(body, answers, query.head_name))
        ucq = store.to_ucq()
        if self._prune_subsumed:
            ucq = ucq.remove_subsumed()
        return ucq


def _dedupe_body(clause: HornClause) -> HornClause:
    """Collapse duplicate body literals (a conjunction is a set of atoms)."""
    unique: list[Literal] = []
    seen: set[Literal] = set()
    for literal in clause.body:
        if literal not in seen:
            seen.add(literal)
            unique.append(literal)
    return HornClause(clause.head, tuple(unique))


def _structural_tag(term: SkolemTerm) -> tuple:
    """A renaming-invariant description of a term (every variable looks alike)."""
    if isinstance(term, Variable):
        return ("v",)
    if isinstance(term, FunctionalTerm):
        return ("f", term.function, tuple(_structural_tag(a) for a in term.arguments))
    return ("c", str(term))


def _literal_tag(literal: Literal) -> tuple:
    """A renaming-invariant sort key for body literals."""
    return (
        literal.predicate.name,
        literal.predicate.arity,
        tuple(_structural_tag(t) for t in literal.terms),
    )


def _clause_key(clause: HornClause) -> tuple:
    """A canonical key identifying a clause modulo variable renaming.

    Body literals are first sorted by a renaming-invariant structural tag,
    then variables are numbered in order of first occurrence (head first,
    body next).  Two clauses that differ only by a variable renaming almost
    always receive the same key (ties between structurally identical literals
    can, in rare cases, keep two variants apart — which only costs a little
    extra work, never correctness).
    """
    numbering: dict[Variable, int] = {}

    def canonical(term: SkolemTerm):
        if isinstance(term, Variable):
            if term not in numbering:
                numbering[term] = len(numbering)
            return ("v", numbering[term])
        if isinstance(term, FunctionalTerm):
            return ("f", term.function, tuple(canonical(a) for a in term.arguments))
        return ("c", str(term))

    head_key = (clause.head.predicate.name, tuple(canonical(t) for t in clause.head.terms))
    body_sorted = sorted(clause.body, key=_literal_tag)
    body_key = tuple(
        (literal.predicate.name, tuple(canonical(t) for t in literal.terms))
        for literal in body_sorted
    )
    return (head_key, body_key)


def requiem_rewrite(
    query: ConjunctiveQuery,
    rules: Sequence[TGD] | OntologyTheory,
    prune_subsumed: bool = True,
    max_depth: int = 10,
) -> RewritingResult:
    """One-shot Requiem-style rewriting."""
    rewriter = ResolutionRewriter(rules, prune_subsumed=prune_subsumed, max_depth=max_depth)
    return rewriter.rewrite(query)
