"""Baseline systems reproduced for the Table 1 comparison.

* :class:`QuOntoStyleRewriter` — ``QO``: single-atom resolution with
  exhaustive factorisation (Calvanese et al. / Calì–Gottlob–Pieris AMW'10);
* :class:`ResolutionRewriter` — ``RQ``: Requiem-style resolution over
  skolemised rules (Pérez-Urbina, Motik & Horrocks);
* :class:`ChaseBackchase` — the chase & back-chase minimiser (Deutsch, Popa &
  Tannen), discussed in Sections 2 and 6.
"""

from .chase_backchase import BackchaseResult, ChaseBackchase, backchase_minimize
from .quonto import QuOntoStyleRewriter, quonto_rewrite
from .resolution import (
    FunctionalTerm,
    HornClause,
    Literal,
    ResolutionRewriter,
    requiem_rewrite,
    unify_literals,
)

__all__ = [
    "BackchaseResult",
    "ChaseBackchase",
    "FunctionalTerm",
    "HornClause",
    "Literal",
    "QuOntoStyleRewriter",
    "ResolutionRewriter",
    "backchase_minimize",
    "quonto_rewrite",
    "requiem_rewrite",
    "unify_literals",
]
