"""Rewriting quality metrics: size, length and width (Table 1).

The paper argues that the number of CQs alone is not enough to judge a
rewriting and uses three structural metrics:

* **size** — the number of CQs in the perfect UCQ rewriting;
* **length** — the total number of atoms across all CQs of the rewriting;
* **width** — the total number of joins to be performed when the rewriting is
  executed.  For a single CQ we count, for every variable occurring more than
  once in the query (head included), one join per occurrence beyond the
  first; the width of a UCQ is the sum over its members.

These metrics are machine-independent, which is what makes the qualitative
comparison with the paper's Table 1 meaningful even though our ontologies are
reconstructions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from .logic.terms import is_variable
from .queries.conjunctive_query import ConjunctiveQuery
from .queries.ucq import UnionOfConjunctiveQueries


@dataclass(frozen=True)
class RewritingMetrics:
    """The (size, length, width) triple reported in Table 1."""

    size: int
    length: int
    width: int

    def as_row(self) -> tuple[int, int, int]:
        """The metrics as a plain tuple (size, length, width)."""
        return (self.size, self.length, self.width)

    def __repr__(self) -> str:
        return f"size={self.size} length={self.length} width={self.width}"


def query_length(query: ConjunctiveQuery) -> int:
    """Number of body atoms of a CQ."""
    return len(query.body)


def query_width(query: ConjunctiveQuery) -> int:
    """Number of joins performed when executing a CQ.

    Every variable occurring ``k > 1`` times in the **body** contributes
    ``k - 1`` joins: its body occurrences must be pairwise equated when the
    query is executed.  Head occurrences are projections, not joins, so a
    single-atom query such as ``q1(A) ← Location(A)`` has width 0 (as in
    Table 1 of the paper).
    """
    body_occurrences: dict = {}
    for atom in query.body:
        for term in atom.terms:
            if is_variable(term):
                body_occurrences[term] = body_occurrences.get(term, 0) + 1
    return sum(count - 1 for count in body_occurrences.values() if count > 1)


def ucq_metrics(
    ucq: UnionOfConjunctiveQueries | Iterable[ConjunctiveQuery],
) -> RewritingMetrics:
    """Compute (size, length, width) for a UCQ rewriting."""
    queries = list(ucq)
    return RewritingMetrics(
        size=len(queries),
        length=sum(query_length(q) for q in queries),
        width=sum(query_width(q) for q in queries),
    )


def metrics_table_row(
    label: str,
    rewritings: dict[str, UnionOfConjunctiveQueries | Iterable[ConjunctiveQuery]],
) -> dict[str, object]:
    """Build one row of a Table-1-style report.

    ``rewritings`` maps a system name (e.g. ``"QO"``, ``"RQ"``, ``"NY"``,
    ``"NY*"``) to its UCQ rewriting; the row contains, for every system, the
    three metrics, keyed ``"<system>_size"`` etc.
    """
    row: dict[str, object] = {"query": label}
    for system, rewriting in rewritings.items():
        metrics = ucq_metrics(rewriting)
        row[f"{system}_size"] = metrics.size
        row[f"{system}_length"] = metrics.length
        row[f"{system}_width"] = metrics.width
    return row


def format_table(rows: list[dict[str, object]], systems: list[str]) -> str:
    """Render Table-1-style rows as aligned plain text."""
    headers = ["query"]
    for metric in ("size", "length", "width"):
        for system in systems:
            headers.append(f"{system}_{metric}")
    widths = {h: max(len(h), *(len(str(r.get(h, ""))) for r in rows)) for h in headers}
    lines = ["  ".join(h.ljust(widths[h]) for h in headers)]
    for row in rows:
        lines.append(
            "  ".join(str(row.get(h, "")).ljust(widths[h]) for h in headers)
        )
    return "\n".join(lines)
