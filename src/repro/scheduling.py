"""Pluggable scheduling strategies for the frontier rewriting kernel.

The kernel of :class:`repro.core.rewriter.TGDRewriter` drains the
:class:`~repro.core.frontier.RewriteFrontier` one *generation* at a time
and merges the expansions in frontier order (see
:mod:`repro.core.frontier`).  Because expansion is a pure function of the
query and the rule set, *how* a generation's expansions are computed is a
free choice — that choice is a :class:`SchedulingStrategy`:

* :class:`SequentialStrategy` — expand one query at a time in the calling
  thread; the default, and the reference the others are held to.
* :class:`ThreadedStrategy` — expand a whole generation across a thread
  pool.  Under CPython's GIL this buys little wall-clock (expansion is
  pure Python CPU work), but it exercises the kernel's order-independence
  and is the cheap gate (``make strategy-smoke``) that the merge point
  really is the only synchronisation the algorithm needs; on GIL-free
  builds it parallelises for real.
* :class:`ChunkedProcessStrategy` — expand a generation in chunks across
  worker processes, each holding a deterministic replica of the engine
  built from the rewriter's pickled specification.  This is the strategy
  :func:`repro.parallel.compile_workloads` reuses to split one slow
  query's frontier across workers instead of idling behind it.
* :class:`AutoStrategy` — pick one of the above per generation from
  observable telemetry (worker count, frontier width, rule fan-out,
  generation depth), holding the invariant that it never loses to
  sequential by more than a fixed epsilon while producing the same bytes.

Every strategy must yield expansions **in batch order** — the merge point
replays them in that order, which (together with the determinism of the
engine: pooled rename-apart copies are a pure function of ``(rule, query
variables)``) makes the final rewriting byte-identical under every
strategy and worker/thread count.
"""

from __future__ import annotations

import math
import os
import sys
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from .core.frontier import Expansion
from .queries.conjunctive_query import ConjunctiveQuery

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .core.rewriter import TGDRewriter

__all__ = [
    "AutoStrategy",
    "ChunkedProcessStrategy",
    "SchedulingStrategy",
    "SequentialStrategy",
    "ThreadedStrategy",
    "create_strategy",
    "resolve_workers",
    "strategy_names",
]


def resolve_workers(workers: int | None) -> int:
    """Normalise a ``workers`` argument: ``None`` means one per usable CPU.

    "Usable" respects the process's CPU affinity mask where the platform
    exposes it (cgroup-limited containers often report the host's core
    count through ``os.cpu_count()`` while only a subset is schedulable).
    """
    if workers is None:
        try:
            workers = len(os.sched_getaffinity(0))
        except AttributeError:  # pragma: no cover - non-Linux platforms
            workers = os.cpu_count() or 1
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


class SchedulingStrategy(ABC):
    """How one frontier generation's expansions are computed.

    Implementations receive the rewriting engine and a generation batch
    and must yield one :class:`~repro.core.frontier.Expansion` per batch
    member, **in batch order**.  They never touch the kernel state: the
    merge point stays single-threaded in the caller.
    """

    #: Registry name (``"sequential"``, ``"threaded"``, ``"chunked"``,
    #: ``"auto"``).
    name: str = "?"

    @abstractmethod
    def expand_generation(
        self, engine: "TGDRewriter", batch: Sequence[ConjunctiveQuery]
    ) -> Iterable[Expansion]:
        """Expansions of *batch*, in batch order."""

    def begin_run(
        self, engine: "TGDRewriter", query: ConjunctiveQuery, generation: int = 0
    ) -> None:
        """Hook called once per :meth:`TGDRewriter.rewrite`, before the kernel loop.

        *generation* is the frontier generation the run starts from (non-zero
        when resuming a checkpoint).  The default does nothing; adaptive
        strategies use it to observe per-query telemetry (rule fan-out,
        resume depth) before the first batch arrives.  Wrappers must forward
        the call to their inner strategy.
        """

    def close(self) -> None:
        """Release pools or other resources; the default holds none."""

    def __enter__(self) -> "SchedulingStrategy":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SequentialStrategy(SchedulingStrategy):
    """Expand one query at a time in the calling thread (the default).

    Yields lazily, so the kernel merges each expansion before the next one
    is computed — the exact cadence of the pre-kernel closed loop, at zero
    overhead.  Every other strategy is pinned (``tests/integration/
    test_strategy_determinism.py``) to reproduce this strategy's output
    byte for byte.
    """

    name = "sequential"

    def expand_generation(
        self, engine: "TGDRewriter", batch: Sequence[ConjunctiveQuery]
    ) -> Iterator[Expansion]:
        return map(engine.expand, batch)


class ThreadedStrategy(SchedulingStrategy):
    """Expand a whole generation across a thread pool.

    Expansion is pure CPU work on small structures, so threads only help
    on GIL-free interpreters; the strategy's day job is differential
    testing — it shares the *same* engine (rule index, rename-apart pool,
    applicability memo) across threads, so any hidden order-dependence in
    the kernel would surface as a byte difference against
    :class:`SequentialStrategy`.  The engine's memo layers are safe to
    share: the rename-apart pool takes a lock around minting, and the
    applicability memo's entries are deterministic values keyed by
    renaming-invariant profiles (a racing double-compute stores the same
    outcome; only the volatile hit/miss counters can drift).

    The pool is created lazily and reused across generations; ``close()``
    shuts it down.
    """

    name = "threaded"

    def __init__(self, threads: int | None = None) -> None:
        self._threads = resolve_workers(threads)
        self._executor: ThreadPoolExecutor | None = None

    @property
    def threads(self) -> int:
        """Number of worker threads the pool uses."""
        return self._threads

    def expand_generation(
        self, engine: "TGDRewriter", batch: Sequence[ConjunctiveQuery]
    ) -> Iterator[Expansion]:
        if len(batch) <= 1 or self._threads <= 1:
            return map(engine.expand, batch)
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self._threads,
                thread_name_prefix="rewrite-expand",
            )
        # Executor.map yields results in input order regardless of
        # completion order — exactly the merge contract.
        return self._executor.map(engine.expand, batch)

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None


# -- process-chunked expansion ----------------------------------------------
#
# Worker processes hold one deterministic replica of the rewriting engine,
# rebuilt from the engine's pickled specification by the pool initializer.
# Replicas expand independently warmed memo layers, which cannot change a
# byte of output: pooled rename-apart copies are minted per (rule,
# position) and served as a pure function of (rule, query variables), so a
# replica's expansion equals the parent's regardless of what either has
# expanded before.

_EXPANSION_ENGINE = None


def _initialize_expansion_worker(specification: tuple) -> None:
    """Pool initializer: build this worker's engine replica once."""
    global _EXPANSION_ENGINE
    from .core.rewriter import TGDRewriter

    _EXPANSION_ENGINE = TGDRewriter.from_specification(specification)


def _expand_chunk(queries: list[ConjunctiveQuery]) -> list[Expansion]:
    """Expand one chunk of a generation in the worker's engine replica."""
    return [_EXPANSION_ENGINE.expand(query) for query in queries]


class ChunkedProcessStrategy(SchedulingStrategy):
    """Expand a generation in chunks across worker processes.

    This is the intra-query parallelism strategy: one slow query's
    frontier generations are split into chunks and expanded by a process
    pool, sidestepping the GIL.  The pool is created lazily on first use
    and bound to the engine's specification; expanding with a different
    engine rebinds (recreating the pool), so one strategy instance can be
    reused across the systems of a workload batch.

    Parameters
    ----------
    workers:
        Pool size (default: one per usable CPU).
    chunk_size:
        Queries per worker task.  The default splits each generation into
        about ``4 × workers`` chunks (at least :attr:`MIN_CHUNK` queries
        each) — small enough for dynamic balance, large enough that IPC
        does not dominate.
    min_batch:
        Generations smaller than this are expanded in the parent (the
        pickling round-trip would cost more than it buys).
    """

    name = "chunked"

    #: Smallest chunk worth shipping to a worker.
    MIN_CHUNK = 4

    def __init__(
        self,
        workers: int | None = None,
        chunk_size: int | None = None,
        min_batch: int | None = None,
    ) -> None:
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self._workers = resolve_workers(workers)
        self._chunk_size = chunk_size
        self._min_batch = (
            min_batch if min_batch is not None else max(2, 2 * self.MIN_CHUNK)
        )
        self._pool: ProcessPoolExecutor | None = None
        self._bound_specification: tuple | None = None

    @property
    def workers(self) -> int:
        """Number of worker processes the pool uses."""
        return self._workers

    def _ensure_pool(self, engine: "TGDRewriter") -> ProcessPoolExecutor:
        specification = engine.specification()
        if self._pool is not None and self._bound_specification != specification:
            self.close()
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self._workers,
                initializer=_initialize_expansion_worker,
                initargs=(specification,),
            )
            self._bound_specification = specification
        return self._pool

    def _chunks(
        self, batch: Sequence[ConjunctiveQuery]
    ) -> list[list[ConjunctiveQuery]]:
        size = self._chunk_size
        if size is None:
            size = max(self.MIN_CHUNK, math.ceil(len(batch) / (4 * self._workers)))
        return [list(batch[i : i + size]) for i in range(0, len(batch), size)]

    def expand_generation(
        self, engine: "TGDRewriter", batch: Sequence[ConjunctiveQuery]
    ) -> Iterator[Expansion]:
        if self._workers <= 1 or len(batch) < self._min_batch:
            yield from map(engine.expand, batch)
            return
        pool = self._ensure_pool(engine)
        futures = [pool.submit(_expand_chunk, chunk) for chunk in self._chunks(batch)]
        for future in futures:  # in submission order == batch order
            yield from future.result()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
            self._bound_specification = None


class AutoStrategy(SchedulingStrategy):
    """Pick sequential/threaded/chunked per generation from observable telemetry.

    The inputs are facts the kernel already has in hand — no trial runs, no
    timing feedback loops, so the choice (and therefore the byte-identical
    output guarantee) is deterministic for a given machine shape:

    * **workers** — the usable-CPU count (affinity-aware).  With one worker
      no parallel strategy can win, so auto degenerates to sequential.
    * **frontier width** — ``len(batch)``.  Generations below
      :attr:`SMALL_GENERATION` cannot amortise any dispatch overhead.
    * **rule fan-out** — :meth:`repro.core.applicability.RuleIndex.fan_out`
      of the query being rewritten, captured by :meth:`begin_run`: how many
      rule applications a frontier query can trigger, i.e. how much CPU one
      batch member represents.
    * **generation depth** — deep generations mean the run survived the
      early narrow frontier; combined with width it gates the expensive
      process pool, whose spin-up only pays off on wide, busy frontiers
      (``width × fan-out`` ≥ :attr:`CHUNK_WORK_THRESHOLD`).

    The hard invariant — auto never loses to sequential by more than
    :attr:`EPSILON` — holds by construction on the common shapes: every
    guard falls through to :class:`SequentialStrategy` (zero added overhead
    beyond one integer comparison per generation), threads are only used on
    GIL-free builds where they can actually win, and processes only when a
    generation carries enough work to cover the pool.  ``make perf-smoke``
    and ``benchmarks/bench_hotpaths.py`` measure the invariant rather than
    trusting it.

    :attr:`decisions` counts how many generations each inner strategy
    served, for telemetry and tests.
    """

    name = "auto"

    #: Auto may not lose to sequential by more than this fraction.
    EPSILON = 0.15
    #: Generations narrower than this always run sequentially.
    SMALL_GENERATION = 8
    #: Minimum ``width × fan-out`` before the process pool is worth it.
    CHUNK_WORK_THRESHOLD = 4096

    def __init__(self, workers: int | None = None) -> None:
        self._workers = resolve_workers(workers)
        self._sequential = SequentialStrategy()
        self._threaded: ThreadedStrategy | None = None
        self._chunked: ChunkedProcessStrategy | None = None
        self._fan_out = 0
        self._generation = 0
        self.decisions: dict[str, int] = {"sequential": 0, "threaded": 0, "chunked": 0}

    @property
    def workers(self) -> int:
        """Usable worker count the tuner plans against."""
        return self._workers

    def begin_run(
        self, engine: "TGDRewriter", query: ConjunctiveQuery, generation: int = 0
    ) -> None:
        self._fan_out = engine.rule_index.fan_out(query)
        self._generation = generation

    def _choose(self, width: int) -> SchedulingStrategy:
        if self._workers <= 1 or width < self.SMALL_GENERATION:
            return self._sequential
        if width * max(1, self._fan_out) >= self.CHUNK_WORK_THRESHOLD:
            if self._chunked is None:
                self._chunked = ChunkedProcessStrategy(self._workers)
            return self._chunked
        if not _gil_enabled():
            # Threads share the engine's warm memo layers at zero pickling
            # cost, but under the GIL they cannot beat sequential on pure
            # CPU expansion — so they are reserved for free-threaded builds.
            if self._threaded is None:
                self._threaded = ThreadedStrategy(self._workers)
            return self._threaded
        return self._sequential

    def expand_generation(
        self, engine: "TGDRewriter", batch: Sequence[ConjunctiveQuery]
    ) -> Iterable[Expansion]:
        inner = self._choose(len(batch))
        self.decisions[inner.name] += 1
        self._generation += 1
        return inner.expand_generation(engine, batch)

    def close(self) -> None:
        self._sequential.close()
        if self._threaded is not None:
            self._threaded.close()
            self._threaded = None
        if self._chunked is not None:
            self._chunked.close()
            self._chunked = None


def _gil_enabled() -> bool:
    """``True`` on interpreters where the GIL serialises pure-Python CPU work."""
    try:
        return sys._is_gil_enabled()
    except AttributeError:  # pragma: no cover - pre-3.13 interpreters
        return True


_STRATEGIES: dict[str, type[SchedulingStrategy]] = {
    SequentialStrategy.name: SequentialStrategy,
    ThreadedStrategy.name: ThreadedStrategy,
    ChunkedProcessStrategy.name: ChunkedProcessStrategy,
    AutoStrategy.name: AutoStrategy,
}


def strategy_names() -> tuple[str, ...]:
    """The registered strategy names, for CLI choices and error messages."""
    return tuple(_STRATEGIES)


def create_strategy(
    strategy: str | SchedulingStrategy | None,
    workers: int | None = None,
) -> SchedulingStrategy:
    """Resolve a strategy request to an instance.

    ``None`` and ``"sequential"`` build the default sequential strategy;
    other names build their registered class with *workers* (threads for
    ``"threaded"``, processes for ``"chunked"``, the planning budget for
    ``"auto"``).  Instances pass through unchanged (and *workers* is
    ignored — the instance was already configured).
    """
    if isinstance(strategy, SchedulingStrategy):
        return strategy
    if strategy is None:
        strategy = SequentialStrategy.name
    cls = _STRATEGIES.get(strategy)
    if cls is None:
        raise ValueError(
            f"unknown scheduling strategy {strategy!r} "
            f"(available: {', '.join(strategy_names())})"
        )
    if cls is SequentialStrategy:
        return SequentialStrategy()
    return cls(workers)
