"""Command-line interface: ``python -m repro <command>``.

Six small commands expose the library without writing Python:

``workloads``
    List the registered evaluation workloads and their sizes.

``table1 [WORKLOAD ...] [--systems QO RQ NY NY*] [--queries q1 ...]``
    Reproduce (blocks of) Table 1 and print size / length / width per system.

``rewrite --tbox FILE --query "q(A) :- Person(A)" [--no-elimination] [--sql]``
    Parse a DL-Lite_R TBox (textual syntax of :mod:`repro.ontology.parser`),
    rewrite one conjunctive query and print the resulting UCQ (optionally as
    SQL).  ``--strategy threaded|chunked`` expands frontier generations in
    parallel (identical output, different wall-clock); ``--checkpoint FILE``
    persists the frontier between generations and ``--resume`` continues a
    killed run from its last completed generation.

``compile (--tbox FILE | --workload NAME) [--queries FILE] [--cache DIR]``
    Batch-compile a whole query workload through one engine — optionally
    against a persistent rewriting cache, so a second invocation with the
    same ``--cache`` directory serves every rewriting from disk.
    ``--workers N`` compiles cold misses on a process pool (default: one
    worker per CPU; the stored bytes are identical under any worker
    count), and ``--strategy chunked`` switches the pool to intra-query
    granularity — each slow query's frontier generations are split across
    the workers.  With ``--fail-on-miss`` the command reports every query
    not served from the cache and exits non-zero (the warm-run assertion
    used in CI).

``cache compact --cache DIR --max-entries N``
    Bound a persistent rewriting cache to its N most-recently-served
    entries, rewriting the JSON-lines file atomically.

``answer (--workload NAME | --tbox FILE --data FILE) [--backend B]``
    Answer queries end-to-end through the prepare/execute serving
    lifecycle on a chosen execution backend (``memory``, ``sqlite``) —
    or on ``both``, in which case the two answer sets are compared and a
    disagreement exits non-zero, printing the minimal differing tuples
    (the differential gate behind ``make answer-smoke``).  ``--repeat N``
    re-executes each prepared query and reports the answer-cache hits the
    warm runs were served from.

``serve [--port P] [--cache DIR] [--max-tenants N] [--backend B]``
    Run the multi-tenant asyncio HTTP/JSON serving front end
    (:mod:`repro.serving`): tenants register ontologies over HTTP and
    issue prepared, coalesced, answer-cached queries.  ``--preload
    "NAME=WORKLOAD" ...`` registers tenants before the socket opens.
    With ``--cache DIR`` the service is restart-warm: rewritings are
    served from the persistent store and killed compiles resume from
    frontier checkpoints.  ``--compile-timeout`` / ``--answer-timeout``
    set the per-phase request budgets (0 disables),
    ``--max-inflight-compiles`` / ``--queue-depth`` the load-shedding
    bounds and ``--breaker-threshold`` the per-query circuit breaker.
    See ``docs/SERVING.md`` and ``docs/OPERATIONS.md``.

``chaos [--seed N] [--cases K] [--replay FILE]``
    Hold the serving tier's resilience contracts to seeded
    fault-injection (:mod:`repro.serving.chaos`): each case replays a
    generated workload against an app with injected executor stalls,
    mid-compile kills, backend errors and cache write failures, and
    asserts the invariants — deadlines honored, warm traffic never
    starved, post-recovery answers byte-identical to the undisturbed
    run.  Violations are written as replayable repro files.

``fuzz [--seed N] [--cases K] [--fragment F] [--shrink]``
    Generate seeded synthetic (theory, query, instance) triples per
    fragment and hold the whole stack to the three differential oracles
    of :mod:`repro.fuzzing` (chase agreement, backend agreement,
    strategy/store determinism).  Failing cases are written as replayable
    repro files (minimised first with ``--shrink``); ``--replay FILE``
    re-runs a repro file.  See ``docs/FUZZING.md``.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import Sequence

from .api import OBDASystem
from .core.rewriter import TGDRewriter
from .database.sql import ucq_to_sql
from .dependencies.theory import OntologyTheory
from .evaluation import SYSTEMS, Table1Evaluator, format_rows
from .metrics import ucq_metrics
from .ontology.parser import parse_ontology
from .ontology.translation import to_theory
from .queries.conjunctive_query import ConjunctiveQuery
from .queries.parser import parse_query
from .workloads import default_registry, get_workload


def _cmd_workloads(_: argparse.Namespace) -> int:
    """List every registered workload."""
    for workload in sorted(default_registry(), key=lambda w: w.name):
        print(
            f"{workload.name:4s} {len(workload.theory.tgds):3d} TGDs, "
            f"{len(workload.theory.negative_constraints):2d} NCs, "
            f"{len(workload.queries)} queries — {workload.description}"
        )
    return 0


def _cmd_table1(arguments: argparse.Namespace) -> int:
    """Reproduce Table 1 for the requested workloads."""
    names = arguments.workloads or ["V", "S", "U", "A", "P5"]
    for name in names:
        workload = get_workload(name)
        evaluator = Table1Evaluator(workload, systems=tuple(arguments.systems))
        rows = evaluator.rows(arguments.queries or None)
        print(f"=== {name} — {workload.description}")
        print(format_rows(rows, systems=tuple(arguments.systems)))
        print()
    return 0


def _cmd_rewrite(arguments: argparse.Namespace) -> int:
    """Rewrite a single query against a textual DL-Lite TBox."""
    from .cache.checkpoint import FrontierCheckpoint
    from .scheduling import create_strategy

    if arguments.resume and not arguments.checkpoint:
        print("error: --resume requires --checkpoint FILE", file=sys.stderr)
        return 2
    tbox_text = Path(arguments.tbox).read_text(encoding="utf-8")
    theory = to_theory(parse_ontology(tbox_text, name=Path(arguments.tbox).stem))
    query = parse_query(arguments.query)
    strategy = create_strategy(arguments.strategy, workers=arguments.workers)
    rewriter = TGDRewriter(
        theory,
        use_elimination=not arguments.no_elimination and theory.classification.linear,
        use_nc_pruning=bool(theory.negative_constraints),
        strategy=strategy,
    )
    checkpoint = None
    if arguments.checkpoint:
        checkpoint = FrontierCheckpoint(
            arguments.checkpoint, every=arguments.checkpoint_every
        )
        if not arguments.resume:
            # A leftover file from an unrelated run must not seed this one.
            checkpoint.clear()
    try:
        result = rewriter.rewrite(query, checkpoint=checkpoint)
    finally:
        strategy.close()
    metrics = ucq_metrics(result.ucq)
    print(f"# perfect rewriting: {metrics.size} CQs, {metrics.length} atoms, "
          f"{metrics.width} joins ({result.statistics.elapsed_seconds:.3f}s)")
    if checkpoint is not None and checkpoint.resumed_generation is not None:
        print(f"# resumed from checkpoint at generation {checkpoint.resumed_generation}")
    if arguments.stats:
        statistics = result.statistics
        total_rules = statistics.rules_considered + statistics.rules_skipped_by_index
        print(
            f"# rule index: {statistics.rules_considered}/{total_rules} "
            f"candidate rules considered "
            f"({statistics.rules_skipped_by_index} skipped by head-predicate index)"
        )
        print(
            f"# interning: {statistics.variant_lookups} lookups, "
            f"{statistics.variant_cache_hits} variant hits "
            f"({statistics.variant_exact_hits} by canonical key alone), "
            f"{statistics.variant_confirmations} confirmations, "
            f"{statistics.canonical_collisions} key collisions, "
            f"{statistics.interned_queries} queries in "
            f"{statistics.canonical_buckets} buckets"
        )
        print(
            f"# memoisation: {statistics.unification_memo_hits} applicability "
            f"hits / {statistics.unification_memo_misses} misses, "
            f"{statistics.rename_cache_hits} rename-apart hits / "
            f"{statistics.rename_cache_misses} misses"
        )
    if arguments.sql:
        print(ucq_to_sql(result.ucq))
    else:
        for cq in result.ucq:
            print(cq)
    return 0


def _load_theory_and_queries(
    arguments: argparse.Namespace,
) -> tuple[OntologyTheory, list[tuple[str, ConjunctiveQuery]]]:
    """Resolve the ``compile`` command's theory and named query list."""
    if arguments.workload:
        workload = get_workload(arguments.workload)
        theory = workload.theory
        named = [(name, workload.query(name)) for name in workload.query_names]
    else:
        tbox_text = Path(arguments.tbox).read_text(encoding="utf-8")
        theory = to_theory(parse_ontology(tbox_text, name=Path(arguments.tbox).stem))
        named = []
    if arguments.queries:
        named = []
        for number, line in enumerate(
            Path(arguments.queries).read_text(encoding="utf-8").splitlines(), start=1
        ):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            named.append((f"line {number}", parse_query(line)))
    if not named:
        raise SystemExit(
            "no queries to compile: pass --queries FILE (or --workload NAME, "
            "whose q1..q5 are used by default)"
        )
    return theory, named


def _cmd_compile(arguments: argparse.Namespace) -> int:
    """Batch-compile a query workload, optionally against a persistent cache."""
    if arguments.fail_on_miss and not arguments.cache:
        print(
            "error: --fail-on-miss requires --cache DIR (without a store every "
            "query is a miss by definition)",
            file=sys.stderr,
        )
        return 2
    if arguments.workers is not None and arguments.workers < 1:
        print(
            f"error: --workers must be >= 1, got {arguments.workers}",
            file=sys.stderr,
        )
        return 2
    theory, named = _load_theory_and_queries(arguments)
    system = OBDASystem(
        theory,
        use_elimination=not arguments.no_elimination,
        use_nc_pruning=bool(theory.negative_constraints),
        cache=arguments.cache,
    )
    results = system.compile_many(
        [query for _, query in named],
        workers=arguments.workers,
        strategy=arguments.strategy,
        checkpoint_dir=arguments.checkpoint_dir,
        checkpoint_every=arguments.checkpoint_every,
    )
    total_seconds = 0.0
    seen: set[int] = set()
    missed: list[str] = []
    for (name, _), result in zip(named, results):
        statistics = result.statistics
        if id(result) in seen:
            # compile_many returns the same result object for duplicated
            # inputs: served from memory, nothing recompiled.
            source = "in-process hit"
        elif statistics.persistent_cache_hits:
            source = "cache hit"
        elif statistics.persistent_cache_misses:
            source = f"compiled in {statistics.elapsed_seconds:.3f}s"
            total_seconds += statistics.elapsed_seconds
            missed.append(name)
        else:
            source = f"compiled in {statistics.elapsed_seconds:.3f}s (no cache)"
            total_seconds += statistics.elapsed_seconds
            missed.append(name)
        seen.add(id(result))
        print(f"{name}: {result.size} CQs — {source}")
    info = system.rewriting_cache_info()
    print(
        f"# compiled {len(results)} queries "
        f"({info.persistent_hits} persistent hits, "
        f"{info.persistent_misses} misses, "
        f"{info.persistent_size} entries in store), "
        f"{total_seconds:.3f}s rewriting"
    )
    if arguments.stats:
        totals = system.last_batch_statistics
        if totals is not None:
            print(
                f"# workload totals: {totals.generated_by_rewriting} CQs by "
                f"rewriting, {totals.generated_by_factorization} by "
                f"factorization, {totals.pruned_by_constraints} pruned, "
                f"{totals.eliminated_atoms} atoms eliminated, "
                f"{totals.processed_queries} queries processed, "
                f"{totals.variant_cache_hits} variant hits over "
                f"{totals.variant_lookups} lookups"
            )
        store = system.rewriting_store
        if store is not None:
            cache_statistics = store.statistics
            print(
                f"# store: {cache_statistics.exact_hits} exact-key hits, "
                f"{cache_statistics.confirmations} variant confirmations, "
                f"{cache_statistics.collisions} collisions, "
                f"{cache_statistics.stores} new entries, "
                f"{cache_statistics.skipped_records} skipped records"
            )
        print(f"# theory fingerprint: {system.theory_fingerprint}")
    if arguments.fail_on_miss and missed:
        # Report *every* miss before failing, so one CI run shows the
        # whole set of queries that needs (re)compiling.
        for name in missed:
            print(f"error: cache miss: {name}", file=sys.stderr)
        print(
            f"error: --fail-on-miss set but {len(missed)} "
            "queries were not served from the cache",
            file=sys.stderr,
        )
        return 1
    return 0


#: Fact lines accepted by ``repro answer --data``: ``relation(v1, v2, ...)``.
_FACT_LINE = re.compile(r"^(?P<name>[\w.:-]+)\s*\((?P<values>.*)\)\s*\.?$")


def _parse_fact_line(line: str) -> tuple[str, list[object]]:
    """Parse one ``relation(v1, v2)`` data line into (name, values).

    Unquoted numeric values become ints/floats; everything else is kept
    as a (possibly quoted) string.
    """
    match = _FACT_LINE.match(line)
    if match is None:
        raise ValueError(f"unreadable fact line: {line!r}")
    values: list[object] = []
    for raw in match.group("values").split(","):
        raw = raw.strip()
        if not raw:
            continue
        if raw.startswith(("'", '"')) and raw.endswith(raw[0]) and len(raw) >= 2:
            values.append(raw[1:-1])
            continue
        try:
            values.append(int(raw))
        except ValueError:
            try:
                values.append(float(raw))
            except ValueError:
                values.append(raw)
    return match.group("name"), values


def _cmd_answer(arguments: argparse.Namespace) -> int:
    """Answer queries end-to-end through prepare/execute on chosen backends."""
    from .evaluation import ANSWER_BACKENDS, AnsweringEvaluator

    backends = (
        list(ANSWER_BACKENDS) if arguments.backend == "both" else [arguments.backend]
    )
    if arguments.workload:
        workload = get_workload(arguments.workload)
        named = [(name, workload.query(name)) for name in workload.query_names]
        database = None
    else:
        if not arguments.data:
            print(
                "error: --tbox needs --data FILE (one relation(v1, v2) fact "
                "per line) to answer against",
                file=sys.stderr,
            )
            return 2
        theory, named = _load_theory_and_queries(arguments)
        from .database.instance import database_from_tuples
        from .workloads.registry import Workload

        facts = []
        for line in Path(arguments.data).read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            facts.append(_parse_fact_line(line))
        database = database_from_tuples(facts)
        workload = Workload(
            name=Path(arguments.tbox).stem,
            theory=theory,
            queries={name: query for name, query in named},
            description="ad-hoc TBox",
        )
    if arguments.queries_filter:
        named = [(name, query) for name, query in named if name in set(arguments.queries_filter)]
        if not named:
            print("error: no queries left after --queries", file=sys.stderr)
            return 2
    evaluator = AnsweringEvaluator(
        workload,
        backends=backends,
        seed=arguments.seed,
        facts_per_relation=arguments.facts_per_relation,
        use_nc_pruning=bool(workload.theory.negative_constraints),
        database=database,
    )
    print(
        f"# {workload.name}: {len(evaluator.system.database)} facts, "
        f"backends: {', '.join(backends)}"
    )
    disagreements = []
    for name, query in named:
        for backend in backends:
            measurement = evaluator.measure(name, backend)
            prepared = evaluator.system.prepare(query, backend)
            for _ in range(max(0, arguments.repeat - 1)):
                prepared.execute()
            info = prepared.execution_cache_info()
            print(
                f"{name} [{backend}]: {measurement.answers} answers — "
                f"prepare {measurement.prepare_seconds:.3f}s, "
                f"execute {measurement.cold_seconds:.4f}s, "
                f"warm {measurement.warm_seconds:.4f}s "
                f"({info.hits} cache hits)"
            )
            if arguments.show and backend == backends[0]:
                for row in sorted(map(repr, evaluator.answers(name, backend)))[: arguments.show]:
                    print(f"    {row}")
            if arguments.explain:
                for line in prepared.explain().splitlines():
                    print(f"    {line}")
        if len(backends) > 1 and not evaluator.agree(name):
            from .fuzzing.oracle import format_answer_diff

            disagreements.append(name)
            reference = evaluator.answers(name, backends[0])
            for other in backends[1:]:
                candidate = evaluator.answers(name, other)
                if candidate != reference:
                    print(
                        f"error: backends disagree on {name}: "
                        + format_answer_diff(
                            backends[0], reference, other, candidate
                        ),
                        file=sys.stderr,
                    )
    if arguments.sql:
        for name, query in named:
            prepared = evaluator.system.prepare(query, "sqlite")
            print(f"-- {name}\n{prepared.sql}")
    evaluator.close()
    if disagreements:
        print(
            f"error: {len(disagreements)} queries with backend disagreement: "
            f"{', '.join(disagreements)}",
            file=sys.stderr,
        )
        return 3
    return 0


def _cmd_fuzz(arguments: argparse.Namespace) -> int:
    """Differential fuzzing: generate triples, hold them to the three oracles."""
    from .fuzzing import (
        FRAGMENTS,
        DifferentialOracle,
        GeneratorConfig,
        WorkloadGenerator,
        load_repro,
        shrink_case,
        write_repro,
    )

    oracle = DifferentialOracle(
        strategies=tuple(arguments.strategies),
        backends=tuple(arguments.backends),
        max_queries=arguments.max_queries,
        max_chase_atoms=arguments.max_chase_atoms,
        mutation_steps=arguments.mutations,
    )

    if arguments.replay:
        case, recorded = load_repro(arguments.replay)
        if recorded:
            print(f"# recorded failure: [{recorded.get('oracle')}] {recorded.get('detail')}")
        verdict = oracle.check(case)
        print(verdict.summary())
        return 0 if verdict.ok else 1

    fragments = (
        list(FRAGMENTS) if arguments.fragment == "all" else [arguments.fragment]
    )
    repro_directory = Path(arguments.repro_dir)
    failed_cases = 0
    for fragment in fragments:
        config = GeneratorConfig(
            fragment=fragment,
            predicates=arguments.predicates,
            max_arity=arguments.max_arity,
            rules=arguments.rules,
            fan_out=arguments.fan_out,
            existential_density=arguments.existential_density,
            query_atoms=arguments.query_atoms,
            facts_per_relation=arguments.facts_per_relation,
            domain_size=arguments.domain_size,
        )
        generator = WorkloadGenerator(seed=arguments.seed, config=config)
        ok = skipped = 0
        for index in range(arguments.cases):
            case = generator.case(index)
            verdict = oracle.check(case)
            if verdict.skipped is not None:
                skipped += 1
                print(f"{fragment}[{index}] {verdict.summary()}")
                continue
            if verdict.ok:
                ok += 1
                if not arguments.quiet:
                    print(f"{fragment}[{index}] {verdict.summary()}")
                continue
            failed_cases += 1
            print(f"{fragment}[{index}] {verdict.summary()}", file=sys.stderr)
            failure = verdict.failures[0]
            if arguments.shrink:
                case = shrink_case(
                    case,
                    oracle.failure,
                    on_progress=lambda message: print(f"  {message}"),
                )
            path = write_repro(
                repro_directory
                / f"fuzz-{fragment}-seed{arguments.seed}-case{index}.json",
                case,
                failure,
            )
            print(f"  repro written: {path}", file=sys.stderr)
        print(
            f"# {fragment}: {arguments.cases} cases, {ok} ok, "
            f"{skipped} skipped, {arguments.cases - ok - skipped} failed "
            f"(seed {arguments.seed})"
        )
    if failed_cases:
        print(
            f"error: {failed_cases} fuzz cases failed; repro files in "
            f"{repro_directory}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_serve(arguments: argparse.Namespace) -> int:
    """Run the multi-tenant HTTP/JSON serving front end until interrupted."""
    import asyncio

    from .serving import ResilienceConfig, ServingApp, ServingServer

    preloads: list[tuple[str, str]] = []
    for spec in arguments.preload or []:
        name, separator, workload = spec.partition("=")
        if not separator or not name or not workload:
            print(
                f"error: --preload expects NAME=WORKLOAD, got {spec!r}",
                file=sys.stderr,
            )
            return 2
        preloads.append((name, workload))

    resilience = ResilienceConfig(
        compile_timeout=(
            arguments.compile_timeout if arguments.compile_timeout > 0 else None
        ),
        answer_timeout=(
            arguments.answer_timeout if arguments.answer_timeout > 0 else None
        ),
        max_inflight_compiles=arguments.max_inflight_compiles,
        queue_depth=arguments.queue_depth,
        breaker_threshold=arguments.breaker_threshold,
    )

    async def run() -> int:
        app = ServingApp(
            cache=arguments.cache,
            max_tenants=arguments.max_tenants,
            backend=arguments.backend,
            resilience=resilience,
            change_log=arguments.change_log,
        )
        for name, workload in preloads:
            response = await app.request(
                "POST", "/register-theory", {"tenant": name, "workload": workload}
            )
            if not response.ok:
                print(
                    f"error: preload {name}={workload} failed: "
                    f"{response.payload['error']['message']}",
                    file=sys.stderr,
                )
                await app.aclose()
                return 2
            print(f"# tenant {name}: workload {workload} registered")
        server = ServingServer(app, host=arguments.host, port=arguments.port)
        await server.start()
        cache_note = (
            f"cache {arguments.cache}" if arguments.cache else "memory-only"
        )
        print(f"# serving on http://{arguments.host}:{server.port} ({cache_note})")
        try:
            await server.serve_forever()
        except (KeyboardInterrupt, asyncio.CancelledError):
            pass
        finally:
            print("# shutting down")
            await server.stop()
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        return 0


def _cmd_chaos(arguments: argparse.Namespace) -> int:
    """Fault-injection gate: seeded chaos cases against the serving app."""
    from .serving.chaos import ChaosHarness

    harness = ChaosHarness(
        seed=arguments.seed,
        epsilon=arguments.epsilon,
        repro_directory=Path(arguments.repro_dir),
    )
    if arguments.replay:
        outcome = harness.replay(arguments.replay)
        print(outcome.summary())
        for violation in outcome.violations:
            print(f"  {violation}", file=sys.stderr)
        return 0 if outcome.ok else 1

    def on_case(outcome) -> None:
        if outcome.ok and arguments.quiet:
            return
        print(outcome.summary(), file=sys.stdout if outcome.ok else sys.stderr)
        for violation in outcome.violations:
            print(f"  {violation}", file=sys.stderr)

    report = harness.run(arguments.cases, on_case=on_case)
    print(report.summary())
    if not report.ok:
        print(
            f"error: {len(report.violations)} invariant violations; "
            f"repro files in {arguments.repro_dir}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_cache_compact(arguments: argparse.Namespace) -> int:
    """Bound a persistent rewriting cache to its N most recent entries."""
    from .cache.store import RewritingStore

    if arguments.max_entries < 1:
        print(
            f"error: --max-entries must be >= 1, got {arguments.max_entries}",
            file=sys.stderr,
        )
        return 2
    store = RewritingStore(arguments.cache)
    before = len(store)
    removed = store.compact(max_entries=arguments.max_entries)
    print(
        f"# compacted {store.path}: {before} -> {len(store)} entries "
        f"({removed} evicted, least recently served first)"
    )
    return 0


def _strategy_choices() -> tuple[str, ...]:
    from .scheduling import strategy_names

    return strategy_names()


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Ontological query rewriting and optimisation for Datalog±",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("workloads", help="list the evaluation workloads").set_defaults(
        handler=_cmd_workloads
    )

    table1 = commands.add_parser("table1", help="reproduce (blocks of) Table 1")
    table1.add_argument("workloads", nargs="*", help="workload names (default: V S U A P5)")
    table1.add_argument("--systems", nargs="+", default=list(SYSTEMS), choices=list(SYSTEMS))
    table1.add_argument("--queries", nargs="+", help="restrict to specific queries (q1 ... q5)")
    table1.set_defaults(handler=_cmd_table1)

    rewrite = commands.add_parser("rewrite", help="rewrite one query against a DL-Lite TBox")
    rewrite.add_argument("--tbox", required=True, help="path to a textual DL-Lite_R TBox")
    rewrite.add_argument("--query", required=True, help='e.g. "q(A) :- Person(A)"')
    rewrite.add_argument("--no-elimination", action="store_true",
                         help="disable query elimination (plain TGD-rewrite)")
    rewrite.add_argument("--sql", action="store_true", help="print the rewriting as SQL")
    rewrite.add_argument("--stats", action="store_true",
                         help="print canonical-interning and rule-index counters")
    rewrite.add_argument("--strategy", choices=list(_strategy_choices()),
                         default=None,
                         help="frontier scheduling strategy (default sequential; "
                         "all strategies produce identical rewritings)")
    rewrite.add_argument("--workers", type=int, default=None, metavar="N",
                         help="threads/processes for a parallel --strategy "
                         "(default: one per CPU)")
    rewrite.add_argument("--checkpoint", metavar="FILE",
                         help="checkpoint the frontier between generations so a "
                         "killed run can be resumed")
    rewrite.add_argument("--checkpoint-every", type=int, default=1, metavar="N",
                         help="generations between checkpoint saves (default 1)")
    rewrite.add_argument("--resume", action="store_true",
                         help="resume from --checkpoint FILE if it matches this "
                         "TBox and query (otherwise start fresh)")
    rewrite.set_defaults(handler=_cmd_rewrite)

    compile_ = commands.add_parser(
        "compile", help="batch-compile a query workload (persistent cache aware)"
    )
    source = compile_.add_mutually_exclusive_group(required=True)
    source.add_argument("--tbox", help="path to a textual DL-Lite_R TBox")
    source.add_argument("--workload", help="a registered workload name (e.g. S)")
    compile_.add_argument(
        "--queries",
        help="file with one query per line ('#' comments); defaults to the "
        "workload's q1..q5",
    )
    compile_.add_argument(
        "--cache", help="directory of the persistent rewriting cache"
    )
    compile_.add_argument("--no-elimination", action="store_true",
                          help="disable query elimination (plain TGD-rewrite)")
    compile_.add_argument("--workers", type=int, default=None, metavar="N",
                          help="worker processes for cold compilation "
                          "(default: one per CPU; 1 = sequential)")
    compile_.add_argument("--strategy", choices=list(_strategy_choices()),
                          default=None,
                          help="intra-query scheduling: split each query's "
                          "frontier across the pool instead of one query per "
                          "task (same stored bytes either way)")
    compile_.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                          help="make the batch resumable: per-query frontier "
                          "checkpoints plus a manifest in DIR, so a killed "
                          "compile rerun redoes only the interrupted query's "
                          "remaining generations")
    compile_.add_argument("--checkpoint-every", type=int, default=1, metavar="N",
                          help="checkpoint cadence in frontier generations "
                          "(default 1)")
    compile_.add_argument("--stats", action="store_true",
                          help="print workload totals, persistent-store counters "
                          "and the theory fingerprint")
    compile_.add_argument("--fail-on-miss", action="store_true",
                          help="exit 1 unless every query was served from the "
                          "cache (all misses are reported first)")
    compile_.set_defaults(handler=_cmd_compile)

    answer = commands.add_parser(
        "answer",
        help="answer queries end-to-end on an execution backend "
        "(prepare/execute lifecycle)",
    )
    answer_source = answer.add_mutually_exclusive_group(required=True)
    answer_source.add_argument("--workload", help="a registered workload name (e.g. S)")
    answer_source.add_argument("--tbox", help="path to a textual DL-Lite_R TBox")
    answer.add_argument(
        "--data",
        help="fact file for --tbox mode: one relation(v1, v2) per line "
        "('#' comments)",
    )
    answer.add_argument(
        "--queries",
        help="file with one query per line — --tbox mode only",
    )
    answer.add_argument(
        "--query", dest="queries_filter", nargs="+", metavar="NAME",
        help="restrict to specific workload queries (e.g. q1 q3)",
    )
    answer.add_argument(
        "--backend", choices=["memory", "sqlite", "both"], default="memory",
        help="execution backend; 'both' differential-tests the two and "
        "exits 3 on disagreement",
    )
    answer.add_argument(
        "--seed", type=int, default=0,
        help="ABox generator seed for workload mode (default 0)",
    )
    answer.add_argument(
        "--facts-per-relation", type=int, default=10, metavar="N",
        help="ABox size knob for workload mode (default 10)",
    )
    answer.add_argument(
        "--repeat", type=int, default=1, metavar="N",
        help="execute each prepared query N times (warm runs hit the "
        "answer cache)",
    )
    answer.add_argument(
        "--show", type=int, default=0, metavar="N",
        help="print up to N answer tuples per query",
    )
    answer.add_argument(
        "--sql", action="store_true",
        help="also print the SQL each query executes on the sqlite backend",
    )
    answer.add_argument(
        "--explain", action="store_true",
        help="print each backend's cost-aware plan: join order per "
        "disjunct, disjunct execution order, estimated cardinalities",
    )
    answer.set_defaults(handler=_cmd_answer)

    fuzz = commands.add_parser(
        "fuzz",
        help="differential fuzzing: generated triples against the chase, "
        "backend and determinism oracles",
    )
    fuzz.add_argument("--seed", type=int, default=0, help="base generator seed")
    fuzz.add_argument("--cases", type=int, default=20, metavar="K",
                      help="cases per fragment (default 20)")
    fuzz.add_argument("--fragment", default="all",
                      choices=["all", "linear", "sticky", "sticky-join"],
                      help="fragment to sweep (default: all three)")
    fuzz.add_argument("--shrink", action="store_true",
                      help="minimise failing cases (delete rules/atoms/facts "
                      "while the failure reproduces) before writing repro files")
    fuzz.add_argument("--repro-dir", default="repro-failures", metavar="DIR",
                      help="directory for replayable repro files of failing "
                      "cases (default: repro-failures)")
    fuzz.add_argument("--replay", metavar="FILE",
                      help="re-run one repro file instead of generating cases")
    fuzz.add_argument("--strategies", nargs="+", metavar="S",
                      default=["sequential", "threaded", "auto"],
                      choices=list(_strategy_choices()),
                      help="scheduling strategies the determinism oracle "
                      "compares (default: sequential threaded auto)")
    fuzz.add_argument("--backends", nargs="+", metavar="B",
                      default=["memory", "sqlite"],
                      choices=["memory", "sqlite"],
                      help="execution backends the agreement oracle compares")
    fuzz.add_argument("--predicates", type=int, default=6,
                      help="schema predicates per generated theory")
    fuzz.add_argument("--max-arity", type=int, default=3,
                      help="maximum predicate arity")
    fuzz.add_argument("--rules", type=int, default=8,
                      help="TGDs per generated theory")
    fuzz.add_argument("--fan-out", type=int, default=2,
                      help="maximum body atoms per non-linear rule")
    fuzz.add_argument("--existential-density", type=float, default=0.4,
                      help="probability a rule head invents an existential")
    fuzz.add_argument("--query-atoms", type=int, default=2,
                      help="maximum query body atoms")
    fuzz.add_argument("--facts-per-relation", type=int, default=12,
                      help="ABox facts per schema predicate")
    fuzz.add_argument("--domain-size", type=int, default=18,
                      help="distinct constants in the ABox domain")
    fuzz.add_argument("--max-queries", type=int, default=50_000,
                      help="rewriting budget; exceeding it skips the case")
    fuzz.add_argument("--mutations", type=int, default=6, metavar="STEPS",
                      help="per-case mutation-sequence length for the incremental-"
                           "maintenance oracle (delta-maintained answers vs full "
                           "re-execution after every insert/delete step; 0 disables)")
    fuzz.add_argument("--max-chase-atoms", type=int, default=20_000,
                      help="atom cap on the chase oracle (cap hit weakens "
                      "the check to chase ⊆ rewriting)")
    fuzz.add_argument("--quiet", action="store_true",
                      help="print only skips, failures and per-fragment summaries")
    fuzz.set_defaults(handler=_cmd_fuzz)

    serve = commands.add_parser(
        "serve",
        help="run the multi-tenant HTTP/JSON ontology-serving front end",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8080,
                       help="TCP port (0 = ephemeral; default 8080)")
    serve.add_argument("--cache", metavar="DIR",
                       help="persistent cache directory (rewriting store + "
                       "compile checkpoints); omit for a memory-only service")
    serve.add_argument("--max-tenants", type=int, default=None, metavar="N",
                       help="admission control: reject registrations beyond N "
                       "tenants with HTTP 429")
    serve.add_argument("--backend", choices=["memory", "sqlite"],
                       default="memory",
                       help="default execution backend for new tenants")
    serve.add_argument("--preload", nargs="+", metavar="NAME=WORKLOAD",
                       help="register tenants before the socket opens, e.g. "
                       "--preload acme=S beta=U")
    serve.add_argument("--compile-timeout", type=float, default=30.0,
                       metavar="SEC",
                       help="per-request compile budget in seconds; a timed-out "
                       "compile returns 504 with its progress checkpointed "
                       "(0 disables; default 30)")
    serve.add_argument("--answer-timeout", type=float, default=10.0,
                       metavar="SEC",
                       help="per-request execution budget in seconds "
                       "(0 disables; default 10)")
    serve.add_argument("--max-inflight-compiles", type=int, default=8,
                       metavar="N",
                       help="global bound on concurrently running compiles; "
                       "cold requests beyond it are shed with 503")
    serve.add_argument("--queue-depth", type=int, default=256, metavar="N",
                       help="per-tenant bound on queued cold requests")
    serve.add_argument("--change-log", type=int, default=None, metavar="N",
                       help="per-tenant database change-log bound (entries kept "
                            "for incremental answer maintenance; subscriptions "
                            "fall back to full recomputation when a poll reaches "
                            "further back; default 10000)")
    serve.add_argument("--breaker-threshold", type=int, default=3, metavar="N",
                       help="consecutive compile failures before the per-query "
                       "circuit breaker opens")
    serve.set_defaults(handler=_cmd_serve)

    chaos = commands.add_parser(
        "chaos",
        help="seeded fault injection against the serving tier's "
        "resilience invariants",
    )
    chaos.add_argument("--seed", type=int, default=0,
                       help="base seed of the deterministic case stream")
    chaos.add_argument("--cases", type=int, default=10,
                       help="number of chaos cases to run")
    chaos.add_argument("--epsilon", type=float, default=0.5, metavar="SEC",
                       help="scheduling slack allowed beyond each request's "
                       "deadline before it counts as a violation")
    chaos.add_argument("--repro-dir", default="chaos-repros", metavar="DIR",
                       help="directory failing cases are written to as "
                       "replayable repro files")
    chaos.add_argument("--replay", metavar="FILE",
                       help="re-run the exact case recorded in a repro file")
    chaos.add_argument("--quiet", action="store_true",
                       help="print only failures and the final summary")
    chaos.set_defaults(handler=_cmd_chaos)

    cache = commands.add_parser(
        "cache", help="manage a persistent rewriting cache directory"
    )
    cache_commands = cache.add_subparsers(dest="cache_command", required=True)
    compact = cache_commands.add_parser(
        "compact",
        help="evict least-recently-served entries down to a bound and "
        "rewrite the store file atomically",
    )
    compact.add_argument(
        "--cache", required=True, help="directory of the persistent rewriting cache"
    )
    compact.add_argument(
        "--max-entries", type=int, required=True, metavar="N",
        help="number of entries to keep (evicts beyond the N most recent)",
    )
    compact.set_defaults(handler=_cmd_cache_compact)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    arguments = build_parser().parse_args(argv)
    return arguments.handler(arguments)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
