"""Workload registry: ontology + query sets used by the evaluation (Section 7).

A :class:`Workload` bundles everything one of the Table 1 test cases needs:

* the ontological theory Σ (TGDs, NCs, KDs) — either translated from a
  DL-Lite_R TBox or written directly as Datalog± rules;
* the five conjunctive queries of Table 2 (``q1`` … ``q5``);
* an ABox generator for end-to-end query answering tests.

The ``*X`` variants of Table 1 (``UX``, ``AX``, ``P5X``) are the same
ontologies after normalisation (Lemmas 1 and 2) *with the auxiliary
predicates considered part of the schema*: CQs of the rewriting that mention
auxiliary predicates are then counted (they could match database facts),
whereas in the plain variants they can be discarded because the auxiliary
relations are internal and always empty in the stored database.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from ..database.generator import DatabaseGenerator
from ..database.instance import RelationalInstance
from ..dependencies.theory import OntologyTheory
from ..logic.atoms import Predicate
from ..queries.conjunctive_query import ConjunctiveQuery
from ..queries.ucq import UnionOfConjunctiveQueries


@dataclass
class Workload:
    """One evaluation scenario: a theory, its queries and an ABox generator."""

    name: str
    theory: OntologyTheory
    queries: dict[str, ConjunctiveQuery]
    description: str = ""
    auxiliary_public: bool = False
    abox_factory: Callable[[int, int], RelationalInstance] | None = None

    @property
    def query_names(self) -> tuple[str, ...]:
        """The query identifiers, in Table 2 order."""
        return tuple(sorted(self.queries))

    def query(self, name: str) -> ConjunctiveQuery:
        """The query registered under *name* (e.g. ``"q2"``)."""
        return self.queries[name]

    def abox(self, seed: int = 0, facts_per_relation: int = 10) -> RelationalInstance:
        """A synthetic ABox for end-to-end answering tests.

        Uses the workload-specific factory when one is registered, otherwise a
        generic random instance over the theory's schema.
        """
        if self.abox_factory is not None:
            return self.abox_factory(seed, facts_per_relation)
        generator = DatabaseGenerator(seed=seed)
        return generator.populate_for_rules(
            list(self.theory.tgds), facts_per_relation=facts_per_relation
        )

    def normalized_variant(self, suffix: str = "X") -> "Workload":
        """The ``*X`` variant: normalised rules with public auxiliary predicates."""
        normalized = self.theory.normalized(keep_auxiliary_in_schema=True)
        return Workload(
            name=f"{self.name}{suffix}",
            theory=normalized.theory,
            queries=dict(self.queries),
            description=(
                f"{self.description} (normalised; auxiliary predicates are part "
                "of the schema)"
            ),
            auxiliary_public=True,
            abox_factory=self.abox_factory,
        )

    def __repr__(self) -> str:
        return (
            f"Workload({self.name!r}: {len(self.theory.tgds)} TGDs, "
            f"{len(self.queries)} queries)"
        )


def restrict_to_schema(
    ucq: UnionOfConjunctiveQueries | Iterable[ConjunctiveQuery],
    schema_predicates: Iterable[Predicate],
) -> UnionOfConjunctiveQueries:
    """Drop CQs that mention predicates outside the public schema.

    Auxiliary predicates introduced by normalisation never hold facts in the
    stored database, so a CQ mentioning one can never produce answers and can
    be removed from the rewriting without changing its certain answers.  This
    is how the plain ``U``/``A``/``P5`` numbers of Table 1 are obtained from a
    rewriting computed over the normalised rules.
    """
    allowed = set(schema_predicates)
    kept = [
        query
        for query in ucq
        if all(atom.predicate in allowed for atom in query.body)
    ]
    return UnionOfConjunctiveQueries(kept)


@dataclass
class WorkloadRegistry:
    """A name-indexed collection of workloads."""

    _workloads: dict[str, Workload] = field(default_factory=dict)

    def register(self, workload: Workload) -> Workload:
        """Add a workload (overwriting any previous one with the same name)."""
        self._workloads[workload.name] = workload
        return workload

    def get(self, name: str) -> Workload:
        """The workload registered under *name*."""
        return self._workloads[name]

    def __contains__(self, name: str) -> bool:
        return name in self._workloads

    def __iter__(self):
        return iter(self._workloads.values())

    def __len__(self) -> int:
        return len(self._workloads)

    def names(self) -> tuple[str, ...]:
        """All registered workload names."""
        return tuple(sorted(self._workloads))

    def as_mapping(self) -> Mapping[str, Workload]:
        """A read-only view of the registry."""
        return dict(self._workloads)
