"""Evaluation workloads: the paper's running example, worked examples and Table 1 ontologies.

The module exposes the five Table 1 ontologies (``V``, ``S``, ``U``, ``A``,
``P5``), their normalised ``*X`` variants (``UX``, ``AX``, ``P5X``), the
Stock-Exchange running example of Section 1 and the small worked examples of
Sections 5 and 6, all keyed in a :class:`~repro.workloads.registry.WorkloadRegistry`.

>>> from repro.workloads import get_workload
>>> s = get_workload("S")
>>> sorted(s.queries)
['q1', 'q2', 'q3', 'q4', 'q5']
"""

from . import paper_examples, stock_exchange_example
from .adolena import workload as adolena_workload
from .path5 import path_query, workload as path5_workload
from .registry import Workload, WorkloadRegistry, restrict_to_schema
from .stockexchange import workload as stockexchange_workload
from .university import workload as university_workload
from .vicodi import workload as vicodi_workload

#: Names of the Table 1 workloads, in the order they appear in the table.
TABLE1_WORKLOADS = ("V", "S", "U", "A", "P5", "UX", "AX", "P5X")


def build_registry() -> WorkloadRegistry:
    """Construct a registry holding all Table 1 workloads (base and ``*X``)."""
    registry = WorkloadRegistry()
    base = {
        "V": vicodi_workload(),
        "S": stockexchange_workload(),
        "U": university_workload(),
        "A": adolena_workload(),
        "P5": path5_workload(),
    }
    for workload in base.values():
        registry.register(workload)
    for name in ("U", "A", "P5"):
        registry.register(base[name].normalized_variant())
    return registry


_REGISTRY: WorkloadRegistry | None = None


def default_registry() -> WorkloadRegistry:
    """A lazily-constructed shared registry of all workloads."""
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = build_registry()
    return _REGISTRY


def get_workload(name: str) -> Workload:
    """Fetch a workload (``"V"``, ``"S"``, ``"U"``, ``"A"``, ``"P5"``, ``"UX"``, ...)."""
    return default_registry().get(name)


def workload_names() -> tuple[str, ...]:
    """The names of every registered workload."""
    return default_registry().names()


__all__ = [
    "TABLE1_WORKLOADS",
    "Workload",
    "WorkloadRegistry",
    "adolena_workload",
    "build_registry",
    "default_registry",
    "get_workload",
    "paper_examples",
    "path5_workload",
    "path_query",
    "restrict_to_schema",
    "stock_exchange_example",
    "stockexchange_workload",
    "university_workload",
    "vicodi_workload",
    "workload_names",
]
