"""The Path5 (P5 / P5X) workload: a synthetic exponential-blow-up generator.

Path5 is the synthetic ontology of the Requiem evaluation: the data encodes a
directed graph through a single role ``edge`` and the test queries ask for
the start nodes of paths of length 1 … 5.  The TBox is deliberately built so
that

* the perfect rewriting of the length-*n* query grows **exponentially in
  n** — every ``edge`` atom can be independently replaced by each of its
  sub-roles (and, for the last atom of the path, produced by an existential
  axiom), so the number of CQs multiplies along the path;
* **query elimination brings no benefit**: no edge atom of the path is
  implied by another one (there is no axiom propagating terms from an
  ``edge`` position back into an ``edge`` position), so ``NY`` = ``NY*``,
  exactly the behaviour reported for P5 in Table 1;
* exhaustive factorisation is disastrous: adjacent ``edge`` atoms always
  unify, so a QuOnto-style rewriter additionally generates every "collapsed
  path" variant and expands each of them — the source of the huge ``QO``
  numbers.

The qualified existential axiom (every ``Start`` node reaches some ``Target``
node) is a multi-head TGD, so the normalised ``P5X`` variant introduces an
auxiliary predicate and differs from ``P5``.
"""

from __future__ import annotations

from ..database.instance import RelationalInstance
from ..dependencies.tgd import TGD, tgd
from ..dependencies.theory import OntologyTheory
from ..logic.atoms import Atom
from ..logic.terms import Variable
from ..queries.conjunctive_query import ConjunctiveQuery
from .registry import Workload

_X, _Y = Variable("X"), Variable("Y")

#: Maximum path length of the benchmark queries (q1 … q5).
MAX_PATH_LENGTH = 5


def rules() -> list[TGD]:
    """The Path5 TGDs."""
    return [
        # A sub-role of edge: every edge atom of a query can be rewritten into
        # it independently, which multiplies the rewriting size along the
        # path.
        tgd(Atom.of("rail", _X, _Y), Atom.of("edge", _X, _Y), "p5_rail_edge"),
        # A start node reaches some target node (qualified existential,
        # multi-head: this is what makes P5X differ from P5 after
        # normalisation).
        TGD(
            (Atom.of("Start", _X),),
            (Atom.of("edge", _X, _Y), Atom.of("Target", _Y)),
            label="p5_start_edge_target",
        ),
        # Targets of an edge are nodes; nodes are starts of nothing — the
        # taxonomy below only feeds the unary atoms, never the edge atoms, so
        # it cannot be used by query elimination.
        tgd(Atom.of("Hub", _X), Atom.of("Start", _X), "p5_hub_start"),
        tgd(Atom.of("Terminal", _X), Atom.of("Target", _X), "p5_terminal_target"),
    ]


def theory() -> OntologyTheory:
    """The Path5 theory (TGDs only, no constraints)."""
    return OntologyTheory(tgds=rules(), name="path5")


def path_query(length: int) -> ConjunctiveQuery:
    """The query ``q(A0) ← edge(A0, A1), ..., edge(A_{n-1}, A_n)``."""
    if length < 1:
        raise ValueError("a path query needs length >= 1")
    nodes = [Variable(f"A{i}") for i in range(length + 1)]
    body = [Atom.of("edge", nodes[i], nodes[i + 1]) for i in range(length)]
    return ConjunctiveQuery(body, (nodes[0],))


def queries() -> dict[str, ConjunctiveQuery]:
    """The five Path5 queries of Table 2 (paths of length 1 … 5)."""
    return {f"q{n}": path_query(n) for n in range(1, MAX_PATH_LENGTH + 1)}


def sample_abox(seed: int = 0, facts_per_relation: int = 10) -> RelationalInstance:
    """A chain graph long enough to answer every path query."""
    database = RelationalInstance()
    length = max(facts_per_relation, MAX_PATH_LENGTH + 1)
    for index in range(length):
        source, target = f"n{index}", f"n{index + 1}"
        relation = ("edge", "rail")[index % 2]
        database.add_tuple(relation, (source, target))
    database.add_tuple("Hub", ("n0",))
    database.add_tuple("Terminal", (f"n{length}",))
    return database


def workload() -> Workload:
    """The assembled Path5 workload (the plain ``P5`` variant)."""
    return Workload(
        name="P5",
        theory=theory(),
        queries=queries(),
        description="Path5: synthetic graph queries with exponential rewritings",
        abox_factory=sample_abox,
    )
