"""The small worked examples of the paper (Examples 1–8, Figure 2).

Tests and ablation benchmarks repeatedly need the little rule sets the paper
uses to illustrate factorisation (Example 1), the rewriting steps
(Example 2), loss of soundness / completeness (Examples 3 and 4), NC pruning
(Example 5), dependency graphs and equality types (Example 6 / Figure 2),
query elimination (Example 7) and the limits of atom coverage (Example 8).
Keeping them in one module guarantees every test exercises exactly the same
formulation as the paper.
"""

from __future__ import annotations

from ..dependencies.constraints import NegativeConstraint
from ..dependencies.tgd import TGD, tgd
from ..logic.atoms import Atom
from ..logic.terms import Constant, Variable
from ..queries.conjunctive_query import ConjunctiveQuery

_A, _B, _C, _E = Variable("A"), Variable("B"), Variable("C"), Variable("E")
_X, _Y, _Z, _V, _W = (Variable(n) for n in "XYZVW")


# ---------------------------------------------------------------------------
# Example 1 — factorizability
# ---------------------------------------------------------------------------


def example1_rule() -> TGD:
    """``σ : s(X), r(X, Y) → ∃Z t(X, Y, Z)`` of Example 1."""
    return TGD(
        (Atom.of("s", _X), Atom.of("r", _X, _Y)),
        (Atom.of("t", _X, _Y, _Z),),
        label="ex1_sigma",
    )


def example1_queries() -> dict[str, ConjunctiveQuery]:
    """The three BCQs q1, q2, q3 of Example 1 (S1 factorizable, S2/S3 not)."""
    q1 = ConjunctiveQuery([Atom.of("t", _A, _B, _C), Atom.of("t", _A, _E, _C)], ())
    q2 = ConjunctiveQuery(
        [Atom.of("s", _C), Atom.of("t", _A, _B, _C), Atom.of("t", _A, _E, _C)], ()
    )
    q3 = ConjunctiveQuery([Atom.of("t", _A, _B, _C), Atom.of("t", _A, _C, _C)], ())
    return {"q1": q1, "q2": q2, "q3": q3}


# ---------------------------------------------------------------------------
# Example 2 — the rewriting steps (and Example 3's soundness pitfalls)
# ---------------------------------------------------------------------------


def example2_rules() -> list[TGD]:
    """``σ1 : s(X) → ∃Z t(X, X, Z)`` and ``σ2 : t(X, Y, Z) → r(Y, Z)``."""
    return [
        tgd(Atom.of("s", _X), Atom.of("t", _X, _X, _Z), "ex2_sigma1"),
        tgd(Atom.of("t", _X, _Y, _Z), Atom.of("r", _Y, _Z), "ex2_sigma2"),
    ]


def example2_query() -> ConjunctiveQuery:
    """``q() ← t(A, B, C), r(B, C)`` of Example 2."""
    return ConjunctiveQuery([Atom.of("t", _A, _B, _C), Atom.of("r", _B, _C)], ())


def example3_queries() -> dict[str, ConjunctiveQuery]:
    """The two BCQs of Example 3 on which unguarded rewriting loses soundness."""
    constant_c = Constant("c")
    with_constant = ConjunctiveQuery([Atom.of("t", _A, _B, constant_c)], ())
    with_shared = ConjunctiveQuery([Atom.of("t", _A, _B, _B)], ())
    return {"constant": with_constant, "shared": with_shared}


# ---------------------------------------------------------------------------
# Example 4 — loss of completeness without factorisation
# ---------------------------------------------------------------------------


def example4_rules() -> list[TGD]:
    """``σ1 : p(X) → ∃Y t(X, Y)`` and ``σ2 : t(X, Y) → s(Y)``."""
    return [
        tgd(Atom.of("p", _X), Atom.of("t", _X, _Y), "ex4_sigma1"),
        tgd(Atom.of("t", _X, _Y), Atom.of("s", _Y), "ex4_sigma2"),
    ]


def example4_query() -> ConjunctiveQuery:
    """``q() ← t(A, B), s(B)`` of Example 4."""
    return ConjunctiveQuery([Atom.of("t", _A, _B), Atom.of("s", _B)], ())


def example4_completeness_witness() -> ConjunctiveQuery:
    """``q() ← p(A)``: the query that must appear in the rewriting (Example 4)."""
    return ConjunctiveQuery([Atom.of("p", _A)], ())


# ---------------------------------------------------------------------------
# Example 5 — pruning with negative constraints
# ---------------------------------------------------------------------------


def example5_rule() -> TGD:
    """``σ : t(X), s(Y) → ∃Z p(Y, Z)`` of Example 5."""
    return TGD(
        (Atom.of("t", _X), Atom.of("s", _Y)),
        (Atom.of("p", _Y, _Z),),
        label="ex5_sigma",
    )


def example5_constraint() -> NegativeConstraint:
    """``ν : r(X, Y), s(Y) → ⊥`` of Example 5."""
    return NegativeConstraint((Atom.of("r", _X, _Y), Atom.of("s", _Y)), label="ex5_nu")


def example5_query() -> ConjunctiveQuery:
    """``q() ← r(A, B), p(B, C)`` of Example 5."""
    return ConjunctiveQuery([Atom.of("r", _A, _B), Atom.of("p", _B, _C)], ())


# ---------------------------------------------------------------------------
# Example 6 / Figure 2 — dependency graph and equality types
# ---------------------------------------------------------------------------


def example6_rules() -> list[TGD]:
    """The three TGDs of Example 6 (whose dependency graph is Figure 2)."""
    constant_c = Constant("c")
    return [
        tgd(Atom.of("p", _X, _Y), Atom.of("r", _X, _Y, _Z), "ex6_sigma1"),
        tgd(Atom.of("r", _X, _Y, constant_c), Atom.of("s", _X, _Y, _Y), "ex6_sigma2"),
        tgd(Atom.of("s", _X, _X, _Y), Atom.of("p", _X, _Y), "ex6_sigma3"),
    ]


def example7_query() -> ConjunctiveQuery:
    """``q() ← p(A, B), r(A, B, C), s(A, A, D)`` of Example 7."""
    _D = Variable("D")
    return ConjunctiveQuery(
        [Atom.of("p", _A, _B), Atom.of("r", _A, _B, _C), Atom.of("s", _A, _A, _D)], ()
    )


def example8_query() -> ConjunctiveQuery:
    """``q() ← r(A, A, c), p(A, A)`` of Example 8 (implied but not covered)."""
    constant_c = Constant("c")
    return ConjunctiveQuery(
        [Atom.of("r", _A, _A, constant_c), Atom.of("p", _A, _A)], ()
    )
