"""The ADOLENA (A / AX) workload: abilities, disabilities and assistive devices.

ADOLENA (Abilities and Disabilities OntoLogy for ENhancing Accessibility) was
developed for the South African National Accessibility Portal.  Its DL-Lite_R
version combines

* broad hierarchies of devices, abilities and disabilities,
* domain/range axioms for ``assistsWith`` and ``affects``,
* mandatory participation axioms ("every device assists with some ability",
  "every disability affects some ability"), and
* qualified existential axioms linking specific disabilities to the specific
  abilities they affect (written as multi-head TGDs, hence the ``AX``
  variant after normalisation).

On this workload the rewritings stay large even after query elimination
(Table 1): the queries return devices, and the atom ``Device(A)`` — although
implied by ``assistsWith(A, B)`` — is replaced rather than removed, so the
hierarchy under ``Device`` keeps being expanded.  Elimination still helps,
just far less dramatically than on STOCKEXCHANGE or UNIVERSITY.
"""

from __future__ import annotations

from ..database.instance import RelationalInstance
from ..dependencies.tgd import TGD
from ..logic.atoms import Atom
from ..logic.terms import Variable
from ..ontology.dl_lite import DLLiteOntology
from ..ontology.translation import to_theory
from ..queries.conjunctive_query import ConjunctiveQuery
from .registry import Workload

_A, _B, _C = Variable("A"), Variable("B"), Variable("C")
_X, _Y = Variable("X"), Variable("Y")


#: Direct subclasses of ``Device``.
DEVICE_KINDS = (
    "HearingDevice",
    "MobilityDevice",
    "CommunicationDevice",
    "VisualDevice",
    "DailyLivingDevice",
)

#: Finer device kinds (child → parent).
DEVICE_SUBKINDS = {
    "HearingAid": "HearingDevice",
    "CochlearImplant": "HearingDevice",
    "Wheelchair": "MobilityDevice",
    "WalkingFrame": "MobilityDevice",
    "ScreenReader": "VisualDevice",
    "Braille": "CommunicationDevice",
}

#: Subclasses of ``PhysicalAbility``.
PHYSICAL_ABILITY_KINDS = ("UpperLimbMobility", "LowerLimbMobility", "Hear", "See", "Speak")

#: Subclasses of ``CognitiveAbility``.
COGNITIVE_ABILITY_KINDS = ("Memory", "Attention")

#: Subclasses of ``Disability``.
DISABILITY_KINDS = ("Autism", "Quadriplegia", "Paraplegia", "Deafness", "Blindness")


def build_tbox() -> DLLiteOntology:
    """The DL-Lite_R part of the ADOLENA TBox."""
    tbox = DLLiteOntology("adolena")
    for kind in DEVICE_KINDS:
        tbox.subclass(kind, "Device")
    for child, parent in DEVICE_SUBKINDS.items():
        tbox.subclass(child, parent)
    for kind in PHYSICAL_ABILITY_KINDS:
        tbox.subclass(kind, "PhysicalAbility")
    for kind in COGNITIVE_ABILITY_KINDS:
        tbox.subclass(kind, "CognitiveAbility")
    tbox.subclass("PhysicalAbility", "Ability")
    tbox.subclass("CognitiveAbility", "Ability")
    for kind in DISABILITY_KINDS:
        tbox.subclass(kind, "Disability")

    # Domain / range axioms.
    tbox.domain("assistsWith", "Device")
    tbox.range("assistsWith", "Ability")
    tbox.domain("affects", "Disability")
    tbox.range("affects", "Ability")

    # Mandatory participations.
    tbox.mandatory_participation("Device", "assistsWith")
    tbox.mandatory_participation("Disability", "affects")

    # Disjointness.
    tbox.disjoint_concepts("Device", "Ability")
    tbox.disjoint_concepts("Device", "Disability")
    return tbox


def qualified_existential_rules() -> list[TGD]:
    """Qualified existentials: specific devices/disabilities target specific abilities."""
    return [
        TGD(
            (Atom.of("HearingDevice", _X),),
            (Atom.of("assistsWith", _X, _Y), Atom.of("Hear", _Y)),
            label="a_hearing_device_assists_hear",
        ),
        TGD(
            (Atom.of("MobilityDevice", _X),),
            (Atom.of("assistsWith", _X, _Y), Atom.of("UpperLimbMobility", _Y)),
            label="a_mobility_device_assists_mobility",
        ),
        TGD(
            (Atom.of("Deafness", _X),),
            (Atom.of("affects", _X, _Y), Atom.of("Hear", _Y)),
            label="a_deafness_affects_hear",
        ),
        TGD(
            (Atom.of("Quadriplegia", _X),),
            (Atom.of("affects", _X, _Y), Atom.of("UpperLimbMobility", _Y)),
            label="a_quadriplegia_affects_mobility",
        ),
    ]


def queries() -> dict[str, ConjunctiveQuery]:
    """The five ADOLENA queries of Table 2."""
    return {
        "q1": ConjunctiveQuery(
            [Atom.of("Device", _A), Atom.of("assistsWith", _A, _B)], (_A,)
        ),
        "q2": ConjunctiveQuery(
            [
                Atom.of("Device", _A),
                Atom.of("assistsWith", _A, _B),
                Atom.of("UpperLimbMobility", _B),
            ],
            (_A,),
        ),
        "q3": ConjunctiveQuery(
            [
                Atom.of("Device", _A),
                Atom.of("assistsWith", _A, _B),
                Atom.of("Hear", _B),
                Atom.of("affects", _C, _B),
                Atom.of("Autism", _C),
            ],
            (_A,),
        ),
        "q4": ConjunctiveQuery(
            [
                Atom.of("Device", _A),
                Atom.of("assistsWith", _A, _B),
                Atom.of("PhysicalAbility", _B),
            ],
            (_A,),
        ),
        "q5": ConjunctiveQuery(
            [
                Atom.of("Device", _A),
                Atom.of("assistsWith", _A, _B),
                Atom.of("PhysicalAbility", _B),
                Atom.of("affects", _C, _B),
                Atom.of("Quadriplegia", _C),
            ],
            (_A,),
        ),
    }


def sample_abox(seed: int = 0, facts_per_relation: int = 10) -> RelationalInstance:
    """A small hand-crafted ABox giving the queries non-empty certain answers."""
    database = RelationalInstance()
    database.add_tuple("HearingAid", ("phonak_one",))
    database.add_tuple("Wheelchair", ("quickie_2",))
    database.add_tuple("ScreenReader", ("jaws",))
    database.add_tuple("assistsWith", ("jaws", "reading"))
    database.add_tuple("See", ("reading",))
    database.add_tuple("assistsWith", ("quickie_2", "arm_mobility"))
    database.add_tuple("UpperLimbMobility", ("arm_mobility",))
    database.add_tuple("affects", ("case_17", "arm_mobility"))
    database.add_tuple("Quadriplegia", ("case_17",))
    database.add_tuple("Autism", ("case_29",))
    database.add_tuple("affects", ("case_29", "listening"))
    database.add_tuple("Hear", ("listening",))
    database.add_tuple("assistsWith", ("phonak_one", "listening"))
    return database


def workload() -> Workload:
    """The assembled ADOLENA workload (the plain ``A`` variant)."""
    theory = to_theory(build_tbox())
    theory.extend(qualified_existential_rules())
    theory.name = "adolena"
    return Workload(
        name="A",
        theory=theory,
        queries=queries(),
        description="ADOLENA: abilities/disabilities/devices (elimination helps moderately)",
        abox_factory=sample_abox,
    )
