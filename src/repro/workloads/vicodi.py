"""The VICODI (V) workload: an ontology of European history.

VICODI was developed in the EU VICODI project to annotate historical
documents; its DL-Lite_R version is dominated by *taxonomies* — deep
subclass hierarchies of locations, events, roles and time-dependent
relations — with essentially no existential axioms over the predicates the
test queries use.  Two consequences visible in Table 1:

* the size of a rewriting is the product of the hierarchy sizes below the
  concepts mentioned by the query, and
* query elimination brings no benefit (``NY`` = ``NY*``), because no query
  atom is implied by another one: there are no domain/range axioms linking
  the query's roles to its concepts.

The ontology here is a faithful reconstruction of that *shape* (the original
OWL file is not shipped with the paper): the same predicates as the Table 2
queries, populated with hierarchies of comparable — though smaller — breadth
so the pure-Python rewriters stay fast.
"""

from __future__ import annotations

from ..logic.atoms import Atom
from ..logic.terms import Variable
from ..ontology.dl_lite import DLLiteOntology
from ..ontology.translation import to_theory
from ..queries.conjunctive_query import ConjunctiveQuery
from .registry import Workload

_A, _B, _C, _D = Variable("A"), Variable("B"), Variable("C"), Variable("D")


#: Subclasses of ``Location`` (14 of them, so ``q1`` has 15 rewritings).
LOCATION_KINDS = (
    "Country",
    "City",
    "Region",
    "Sea",
    "River",
    "Mountain",
    "Island",
    "Province",
    "Settlement",
    "Territory",
    "Continent",
    "Lake",
    "Harbour",
    "Castle",
)

#: Subclasses of ``Military-Person``.
MILITARY_PERSON_KINDS = ("Soldier", "General", "Admiral")

#: Subclasses of ``Time-Dependant-Relation``.
TIME_DEPENDANT_RELATION_KINDS = (
    "Reign",
    "Alliance",
    "Occupation",
    "Membership",
    "Marriage",
    "Appointment",
)

#: Subclasses of ``Event``.
EVENT_KINDS = ("Battle", "War", "Treaty", "Revolution", "Coronation")

#: Subclasses of ``Object``.
OBJECT_KINDS = (
    "Artifact",
    "Document",
    "Building",
    "Weapon",
    "Painting",
    "Manuscript",
    "Monument",
)

#: Subclasses of ``Symbol``.
SYMBOL_KINDS = ("Flag", "Emblem", "Seal", "CoatOfArms")

#: Subclasses of ``Role`` (the fillers of ``hasRole``).
ROLE_KINDS = ("Scientist", "Discoverer", "Inventor", "Monarch", "Artist", "Politician")

#: Subclasses of ``Individual``.
INDIVIDUAL_KINDS = ("Person", "Organisation")


def build_tbox() -> DLLiteOntology:
    """The VICODI TBox: pure concept/role taxonomies."""
    tbox = DLLiteOntology("vicodi")
    for kind in LOCATION_KINDS:
        tbox.subclass(kind, "Location")
    for kind in MILITARY_PERSON_KINDS:
        tbox.subclass(kind, "Military-Person")
    for kind in TIME_DEPENDANT_RELATION_KINDS:
        tbox.subclass(kind, "Time-Dependant-Relation")
    for kind in EVENT_KINDS:
        tbox.subclass(kind, "Event")
    for kind in OBJECT_KINDS:
        tbox.subclass(kind, "Object")
    for kind in SYMBOL_KINDS:
        tbox.subclass(kind, "Symbol")
    for kind in ROLE_KINDS:
        tbox.subclass(kind, "Role")
    for kind in INDIVIDUAL_KINDS:
        tbox.subclass(kind, "Individual")
    # Cross-hierarchy links mirroring the original modelling.
    tbox.subclass("Military-Person", "Person")
    tbox.subclass("Scientist", "Person")
    tbox.subclass("Symbol", "Object")
    tbox.subclass("Location", "Flexible-Time-Unit")
    # Role subsumptions between the relations used by the queries.
    tbox.subrole("hasChildRelation", "related")
    tbox.subrole("hasFounder", "hasRole")
    tbox.subrole("hasMember", "hasRelationMember")
    # Disjointness constraints typical of the original TBox.
    tbox.disjoint_concepts("Event", "Location")
    tbox.disjoint_concepts("Person", "Organisation")
    return tbox


def queries() -> dict[str, ConjunctiveQuery]:
    """The five VICODI queries of Table 2."""
    return {
        "q1": ConjunctiveQuery([Atom.of("Location", _A)], (_A,)),
        "q2": ConjunctiveQuery(
            [
                Atom.of("Military-Person", _A),
                Atom.of("hasRole", _B, _A),
                Atom.of("related", _A, _C),
            ],
            (_A, _B),
        ),
        "q3": ConjunctiveQuery(
            [
                Atom.of("Time-Dependant-Relation", _A),
                Atom.of("hasRelationMember", _A, _B),
                Atom.of("Event", _B),
            ],
            (_A, _B),
        ),
        "q4": ConjunctiveQuery(
            [Atom.of("Object", _A), Atom.of("hasRole", _A, _B), Atom.of("Symbol", _B)],
            (_A, _B),
        ),
        "q5": ConjunctiveQuery(
            [
                Atom.of("Individual", _A),
                Atom.of("hasRole", _A, _B),
                Atom.of("Scientist", _B),
                Atom.of("hasRole", _A, _C),
                Atom.of("Discoverer", _C),
                Atom.of("hasRole", _A, _D),
                Atom.of("Inventor", _D),
            ],
            (_A,),
        ),
    }


def workload() -> Workload:
    """The assembled VICODI workload."""
    return Workload(
        name="V",
        theory=to_theory(build_tbox()),
        queries=queries(),
        description="VICODI: European-history taxonomy (no existential axioms)",
    )
