"""The UNIVERSITY (U / UX) workload: a DL-Lite_R version of LUBM.

LUBM (the Lehigh University Benchmark) models the organisational structure
of universities: people, faculty ranks, students, courses, departments and
the relations between them.  The DL-Lite_R version used by the paper (and by
the Requiem evaluation) mixes

* deep concept hierarchies (the faculty and student ranks),
* domain/range axioms for every role, and
* a few *qualified* existential restrictions (e.g. "every professor teaches
  some course"), which are not expressible as a single DL-Lite axiom and are
  therefore written directly as multi-head Datalog± TGDs.

The multi-head rules are what distinguishes ``U`` from ``UX`` in Table 1:
normalisation (Lemmas 1 and 2) introduces auxiliary predicates; in ``U`` they
remain internal (rewritten CQs mentioning them can be discarded because the
stored database never populates them), in ``UX`` they are considered part of
the schema and every CQ of the rewriting counts.
"""

from __future__ import annotations

from ..database.instance import RelationalInstance
from ..dependencies.tgd import TGD
from ..logic.atoms import Atom
from ..logic.terms import Variable
from ..ontology.dl_lite import DLLiteOntology
from ..ontology.translation import to_theory
from ..queries.conjunctive_query import ConjunctiveQuery
from .registry import Workload

_A, _B, _C = Variable("A"), Variable("B"), Variable("C")
_X, _Y = Variable("X"), Variable("Y")


#: Faculty ranks (subclasses of ``Professor``).
PROFESSOR_RANKS = ("FullProfessor", "AssociateProfessor", "AssistantProfessor")

#: Other faculty kinds (subclasses of ``FacultyStaff``).
FACULTY_KINDS = ("Professor", "Lecturer", "PostDoc")

#: Student kinds (subclasses of ``Student``).
STUDENT_KINDS = ("UndergraduateStudent", "GraduateStudent", "ResearchAssistant")

#: Organisation kinds (subclasses of ``Organization``).
ORGANIZATION_KINDS = ("University", "Department", "College", "Institute", "ResearchGroup")

#: Course kinds (subclasses of ``Course``).
COURSE_KINDS = ("GraduateCourse", "Seminar")


def build_tbox() -> DLLiteOntology:
    """The DL-Lite_R part of the UNIVERSITY TBox."""
    tbox = DLLiteOntology("university")
    for rank in PROFESSOR_RANKS:
        tbox.subclass(rank, "Professor")
    for kind in FACULTY_KINDS:
        tbox.subclass(kind, "FacultyStaff")
    for kind in STUDENT_KINDS:
        tbox.subclass(kind, "Student")
    for kind in ORGANIZATION_KINDS:
        tbox.subclass(kind, "Organization")
    for kind in COURSE_KINDS:
        tbox.subclass(kind, "Course")
    tbox.subclass("FacultyStaff", "Employee")
    tbox.subclass("Employee", "Person")
    tbox.subclass("Student", "Person")

    # Domain / range axioms.
    tbox.domain("worksFor", "Employee")
    tbox.range("worksFor", "Organization")
    tbox.domain("teacherOf", "FacultyStaff")
    tbox.range("teacherOf", "Course")
    tbox.domain("takesCourse", "Student")
    tbox.range("takesCourse", "Course")
    tbox.domain("advisor", "Student")
    tbox.range("advisor", "Professor")
    tbox.domain("hasAlumnus", "University")
    tbox.range("hasAlumnus", "Person")
    tbox.domain("affiliatedOrganizationOf", "Organization")
    tbox.range("affiliatedOrganizationOf", "Organization")

    # Role hierarchy.
    tbox.subrole("headOf", "worksFor")
    tbox.subrole("memberOfResearchGroup", "worksFor")

    # Mandatory participations.
    tbox.mandatory_participation("Employee", "worksFor")
    tbox.mandatory_participation("FacultyStaff", "teacherOf")
    tbox.mandatory_participation("Student", "takesCourse")
    tbox.mandatory_participation("GraduateStudent", "advisor")

    # Disjointness.
    tbox.disjoint_concepts("Person", "Organization")
    tbox.disjoint_concepts("Course", "Person")
    return tbox


def qualified_existential_rules() -> list[TGD]:
    """Qualified existential restrictions written directly as multi-head TGDs.

    These are the axioms that require normalisation (Lemma 1 / Lemma 2) and
    therefore make ``UX`` differ from ``U``:

    * every professor teaches some *course*;
    * every graduate student takes some *graduate course*;
    * every university has some alumnus who is a *person*.
    """
    return [
        TGD(
            (Atom.of("Professor", _X),),
            (Atom.of("teacherOf", _X, _Y), Atom.of("Course", _Y)),
            label="u_prof_teaches_course",
        ),
        TGD(
            (Atom.of("GraduateStudent", _X),),
            (Atom.of("takesCourse", _X, _Y), Atom.of("GraduateCourse", _Y)),
            label="u_grad_takes_gradcourse",
        ),
        TGD(
            (Atom.of("University", _X),),
            (Atom.of("hasAlumnus", _X, _Y), Atom.of("Person", _Y)),
            label="u_university_has_alumnus",
        ),
    ]


def queries() -> dict[str, ConjunctiveQuery]:
    """The five UNIVERSITY queries of Table 2."""
    return {
        "q1": ConjunctiveQuery(
            [Atom.of("worksFor", _A, _B), Atom.of("affiliatedOrganizationOf", _B, _C)],
            (_A,),
        ),
        "q2": ConjunctiveQuery(
            [Atom.of("Person", _A), Atom.of("teacherOf", _A, _B), Atom.of("Course", _B)],
            (_A, _B),
        ),
        "q3": ConjunctiveQuery(
            [
                Atom.of("Student", _A),
                Atom.of("advisor", _A, _B),
                Atom.of("FacultyStaff", _B),
                Atom.of("takesCourse", _A, _C),
                Atom.of("teacherOf", _B, _C),
                Atom.of("Course", _C),
            ],
            (_A, _B, _C),
        ),
        "q4": ConjunctiveQuery(
            [Atom.of("Person", _A), Atom.of("worksFor", _A, _B), Atom.of("Organization", _B)],
            (_A, _B),
        ),
        "q5": ConjunctiveQuery(
            [
                Atom.of("Person", _A),
                Atom.of("worksFor", _A, _B),
                Atom.of("University", _B),
                Atom.of("hasAlumnus", _B, _A),
            ],
            (_A,),
        ),
    }


def sample_abox(seed: int = 0, facts_per_relation: int = 10) -> RelationalInstance:
    """A small hand-crafted ABox giving the queries non-empty certain answers."""
    database = RelationalInstance()
    database.add_tuple("FullProfessor", ("prof_may",))
    database.add_tuple("Lecturer", ("dr_poe",))
    database.add_tuple("GraduateStudent", ("stu_kim",))
    database.add_tuple("UndergraduateStudent", ("stu_lee",))
    database.add_tuple("teacherOf", ("prof_may", "databases"))
    database.add_tuple("GraduateCourse", ("databases",))
    database.add_tuple("takesCourse", ("stu_kim", "databases"))
    database.add_tuple("advisor", ("stu_kim", "prof_may"))
    database.add_tuple("worksFor", ("prof_may", "cs_department"))
    database.add_tuple("headOf", ("dr_poe", "cs_department"))
    database.add_tuple("Department", ("cs_department",))
    database.add_tuple("University", ("oxbridge",))
    database.add_tuple("affiliatedOrganizationOf", ("cs_department", "oxbridge"))
    database.add_tuple("hasAlumnus", ("oxbridge", "prof_may"))
    database.add_tuple("worksFor", ("prof_may", "oxbridge"))
    return database


def workload() -> Workload:
    """The assembled UNIVERSITY workload (the plain ``U`` variant)."""
    theory = to_theory(build_tbox())
    theory.extend(qualified_existential_rules())
    theory.name = "university"
    return Workload(
        name="U",
        theory=theory,
        queries=queries(),
        description="UNIVERSITY: DL-Lite_R LUBM with qualified existential extras",
        abox_factory=sample_abox,
    )
