"""The Stock-Exchange running example of Section 1 (and Figure 1).

The relational schema ``R``::

    stock(id, name, unit_price)
    company(name, country, segment)
    list_comp(stock, list)
    fin_idx(name, type, ref_mkt)
    stock_portf(company, stock, qty)

is extended with the ontological constraints σ1 … σ9 (TGDs) and δ1 (negative
constraint) exactly as printed in the paper, together with the running
conjunctive query asking for triples ⟨a, b, c⟩ where *a* is a financial
instrument owned by company *b* and listed on *c*.

The module also provides the first four queries of the partial rewriting
shown in Figure 1 (``q[0]`` … ``q[3]``), used by the tests and the
``bench_figure1_running_example`` benchmark to check that TGD-rewrite
actually produces them.
"""

from __future__ import annotations

from ..database.instance import RelationalInstance
from ..database.schema import RelationalSchema
from ..dependencies.constraints import NegativeConstraint
from ..dependencies.tgd import TGD, tgd
from ..dependencies.theory import OntologyTheory
from ..logic.atoms import Atom
from ..logic.terms import Variable
from ..queries.conjunctive_query import ConjunctiveQuery

_A, _B, _C, _D, _E, _F, _G, _H = (Variable(n) for n in "ABCDEFGH")
_J, _K = Variable("J"), Variable("K")
_X, _Y, _Z, _V, _W = (Variable(n) for n in "XYZVW")


SCHEMA = RelationalSchema.from_spec(
    {
        "stock": ["id", "name", "unit_price"],
        "company": ["name", "country", "segment"],
        "list_comp": ["stock", "list"],
        "fin_idx": ["name", "type", "ref_mkt"],
        "stock_portf": ["company", "stock", "qty"],
        "has_stock": ["stock", "company"],
        "fin_ins": ["id"],
        "legal_person": ["name"],
    }
)
"""The relational schema ``R`` of the running example (plus derived relations)."""


def tgds() -> list[TGD]:
    """The TGDs σ1 … σ9 of the running example, in paper order."""
    return [
        # σ1: stock_portf(X, Y, Z) → ∃V ∃W company(X, V, W)
        tgd(Atom.of("stock_portf", _X, _Y, _Z), Atom.of("company", _X, _V, _W), "sigma1"),
        # σ2: stock_portf(X, Y, Z) → ∃V ∃W stock(Y, V, W)
        tgd(Atom.of("stock_portf", _X, _Y, _Z), Atom.of("stock", _Y, _V, _W), "sigma2"),
        # σ3: list_comp(X, Y) → ∃Z ∃W fin_idx(Y, Z, W)
        tgd(Atom.of("list_comp", _X, _Y), Atom.of("fin_idx", _Y, _Z, _W), "sigma3"),
        # σ4: list_comp(X, Y) → ∃Z ∃W stock(X, Z, W)
        tgd(Atom.of("list_comp", _X, _Y), Atom.of("stock", _X, _Z, _W), "sigma4"),
        # σ5: stock_portf(X, Y, Z) → has_stock(Y, X)
        tgd(Atom.of("stock_portf", _X, _Y, _Z), Atom.of("has_stock", _Y, _X), "sigma5"),
        # σ6: has_stock(X, Y) → ∃Z stock_portf(Y, X, Z)
        tgd(Atom.of("has_stock", _X, _Y), Atom.of("stock_portf", _Y, _X, _Z), "sigma6"),
        # σ7: stock(X, Y, Z) → ∃V ∃W stock_portf(V, X, W)
        tgd(Atom.of("stock", _X, _Y, _Z), Atom.of("stock_portf", _V, _X, _W), "sigma7"),
        # σ8: stock(X, Y, Z) → fin_ins(X)
        tgd(Atom.of("stock", _X, _Y, _Z), Atom.of("fin_ins", _X), "sigma8"),
        # σ9: company(X, Y, Z) → legal_person(X)
        tgd(Atom.of("company", _X, _Y, _Z), Atom.of("legal_person", _X), "sigma9"),
    ]


def negative_constraints() -> list[NegativeConstraint]:
    """The negative constraint δ1: legal persons and financial instruments are disjoint."""
    return [
        NegativeConstraint(
            (Atom.of("legal_person", _X), Atom.of("fin_ins", _X)), label="delta1"
        )
    ]


def theory() -> OntologyTheory:
    """The full Stock-Exchange theory: σ1 … σ9 plus δ1."""
    return OntologyTheory(
        tgds=tgds(),
        negative_constraints=negative_constraints(),
        name="stock_exchange_example",
    )


def running_query() -> ConjunctiveQuery:
    """The running query of Section 1.

    ``q(A, B, C) ← fin_ins(A), stock_portf(B, A, D), company(B, E, F),
    list_comp(A, C), fin_idx(C, G, H)``
    """
    return ConjunctiveQuery(
        body=[
            Atom.of("fin_ins", _A),
            Atom.of("stock_portf", _B, _A, _D),
            Atom.of("company", _B, _E, _F),
            Atom.of("list_comp", _A, _C),
            Atom.of("fin_idx", _C, _G, _H),
        ],
        answer_terms=(_A, _B, _C),
    )


def reduced_query() -> ConjunctiveQuery:
    """The query after eliminating the redundant atoms (end of Section 1).

    ``q(A, B, C) ← stock_portf(B, A, D), list_comp(A, C)``
    """
    return ConjunctiveQuery(
        body=[Atom.of("stock_portf", _B, _A, _D), Atom.of("list_comp", _A, _C)],
        answer_terms=(_A, _B, _C),
    )


def expected_optimized_rewriting() -> list[ConjunctiveQuery]:
    """The two CQs of the optimised perfect rewriting quoted in Section 1."""
    return [
        ConjunctiveQuery(
            body=[Atom.of("list_comp", _A, _C), Atom.of("stock_portf", _B, _A, _D)],
            answer_terms=(_A, _B, _C),
        ),
        ConjunctiveQuery(
            body=[Atom.of("list_comp", _A, _C), Atom.of("has_stock", _A, _B)],
            answer_terms=(_A, _B, _C),
        ),
    ]


def figure1_queries() -> list[ConjunctiveQuery]:
    """The queries ``q[0]`` … ``q[3]`` of the partial rewriting in Figure 1."""
    q0 = running_query()
    q1 = ConjunctiveQuery(
        body=[
            Atom.of("fin_ins", _A),
            Atom.of("has_stock", _A, _B),
            Atom.of("company", _B, _E, _F),
            Atom.of("list_comp", _A, _C),
            Atom.of("fin_idx", _C, _G, _H),
        ],
        answer_terms=(_A, _B, _C),
    )
    q2 = ConjunctiveQuery(
        body=[
            Atom.of("fin_ins", _A),
            Atom.of("has_stock", _A, _B),
            Atom.of("stock_portf", _B, _E, _F),
            Atom.of("list_comp", _A, _C),
            Atom.of("fin_idx", _C, _G, _H),
        ],
        answer_terms=(_A, _B, _C),
    )
    q3 = ConjunctiveQuery(
        body=[
            Atom.of("stock", _A, _J, _K),
            Atom.of("has_stock", _A, _B),
            Atom.of("stock_portf", _B, _E, _F),
            Atom.of("list_comp", _A, _C),
            Atom.of("fin_idx", _C, _G, _H),
        ],
        answer_terms=(_A, _B, _C),
    )
    return [q0, q1, q2, q3]


def sample_database() -> RelationalInstance:
    """A small concrete ABox over the running-example schema.

    Mirrors the NASDAQ/IBM facts used in the introduction, plus a second
    company whose portfolio is only reachable through ``has_stock`` (so that
    the second CQ of the optimised rewriting contributes answers).
    """
    database = RelationalInstance(schema=SCHEMA)
    database.add_tuple("company", ("ibm", "usa", "technology"))
    database.add_tuple("company", ("acme", "uk", "manufacturing"))
    database.add_tuple("stock", ("ibm_s1", "IBM common", 135))
    database.add_tuple("stock", ("acme_s1", "ACME ordinary", 17))
    database.add_tuple("stock_portf", ("ibm", "ibm_s1", 1000))
    database.add_tuple("has_stock", ("acme_s1", "acme"))
    database.add_tuple("list_comp", ("ibm_s1", "nasdaq"))
    database.add_tuple("list_comp", ("acme_s1", "ftse"))
    database.add_tuple("fin_idx", ("nasdaq", "composite", "new_york"))
    return database
