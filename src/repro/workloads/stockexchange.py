"""The STOCKEXCHANGE (S) workload: EU financial-institution ontology.

STOCKEXCHANGE describes financial institutions, instruments and markets of
the European Union.  Unlike VICODI it makes heavy use of *domain and range
axioms* (``∃hasStock ⊑ Person``, ``∃hasStock⁻ ⊑ Stock``, ...), which is
exactly the situation in which query elimination shines: in queries such as
``q2(A, B) ← Person(A), hasStock(A, B), Stock(B)`` both concept atoms are
implied by the role atom, so ``TGD-rewrite*`` collapses the query to the
single role atom before rewriting and the size of the perfect rewriting
drops by two orders of magnitude (Table 1: 160 CQs for NY vs 2 for NY*).

The reconstruction below keeps the same predicates as the Table 2 queries
and the same axiom shapes (hierarchies + domain/range + mandatory
participation + disjointness), scaled down so the baselines stay tractable
in pure Python.
"""

from __future__ import annotations

from ..database.instance import RelationalInstance
from ..logic.atoms import Atom
from ..logic.terms import Variable
from ..ontology.dl_lite import DLLiteOntology
from ..ontology.translation import to_theory
from ..queries.conjunctive_query import ConjunctiveQuery
from .registry import Workload

_A, _B, _C, _D = Variable("A"), Variable("B"), Variable("C"), Variable("D")


#: Subclasses of ``StockExchangeMember`` (q1 enumerates them).
MEMBER_KINDS = ("InvestmentBank", "Broker", "MarketMaker", "ClearingHouse", "Custodian")

#: Subclasses of ``Person``.
PERSON_KINDS = ("Dealer", "Investor", "Trader")

#: Subclasses of ``FinantialInstrument`` (spelling follows the original ontology).
INSTRUMENT_KINDS = ("Stock", "Bond", "Derivative")

#: Subclasses of ``Derivative``.
DERIVATIVE_KINDS = ("Future", "Option")

#: Subclasses of ``Stock``.
STOCK_KINDS = ("CommonStock", "PreferredStock")

#: Subclasses of ``Company``.
COMPANY_KINDS = ("ListedCompany", "Bank", "InsuranceCompany")


def build_tbox() -> DLLiteOntology:
    """The STOCKEXCHANGE TBox: hierarchies plus domain/range axioms."""
    tbox = DLLiteOntology("stockexchange")
    for kind in MEMBER_KINDS:
        tbox.subclass(kind, "StockExchangeMember")
    tbox.subclass("StockExchangeMember", "LegalPerson")
    for kind in PERSON_KINDS:
        tbox.subclass(kind, "Person")
    for kind in INSTRUMENT_KINDS:
        tbox.subclass(kind, "FinantialInstrument")
    for kind in DERIVATIVE_KINDS:
        tbox.subclass(kind, "Derivative")
    for kind in STOCK_KINDS:
        tbox.subclass(kind, "Stock")
    for kind in COMPANY_KINDS:
        tbox.subclass(kind, "Company")
    tbox.subclass("Company", "LegalPerson")

    # Domain / range axioms: these are what query elimination exploits.
    tbox.domain("hasStock", "Person")
    tbox.range("hasStock", "Stock")
    tbox.domain("belongsToCompany", "FinantialInstrument")
    tbox.range("belongsToCompany", "Company")
    tbox.domain("isListedIn", "Stock")
    tbox.range("isListedIn", "StockExchangeList")
    tbox.domain("tradesOnBehalfOf", "Broker")
    tbox.range("tradesOnBehalfOf", "Investor")

    # Mandatory participations (partial TGDs with an existential variable).
    tbox.mandatory_participation("Investor", "hasStock")
    tbox.mandatory_participation("Stock", "belongsToCompany")
    tbox.mandatory_participation("CommonStock", "isListedIn")
    tbox.mandatory_participation("ListedCompany", "hasStock")

    # Disjointness constraints.
    tbox.disjoint_concepts("Person", "Company")
    tbox.disjoint_concepts("Stock", "Bond")
    tbox.disjoint_concepts("FinantialInstrument", "StockExchangeList")
    return tbox


def queries() -> dict[str, ConjunctiveQuery]:
    """The five STOCKEXCHANGE queries of Table 2."""
    return {
        "q1": ConjunctiveQuery([Atom.of("StockExchangeMember", _A)], (_A,)),
        "q2": ConjunctiveQuery(
            [Atom.of("Person", _A), Atom.of("hasStock", _A, _B), Atom.of("Stock", _B)],
            (_A, _B),
        ),
        "q3": ConjunctiveQuery(
            [
                Atom.of("FinantialInstrument", _A),
                Atom.of("belongsToCompany", _A, _B),
                Atom.of("Company", _B),
                Atom.of("hasStock", _B, _C),
                Atom.of("Stock", _C),
            ],
            (_A, _B, _C),
        ),
        "q4": ConjunctiveQuery(
            [
                Atom.of("Person", _A),
                Atom.of("hasStock", _A, _B),
                Atom.of("Stock", _B),
                Atom.of("isListedIn", _B, _C),
                Atom.of("StockExchangeList", _C),
            ],
            (_A, _B, _C),
        ),
        "q5": ConjunctiveQuery(
            [
                Atom.of("FinantialInstrument", _A),
                Atom.of("belongsToCompany", _A, _B),
                Atom.of("Company", _B),
                Atom.of("hasStock", _B, _C),
                Atom.of("Stock", _C),
                Atom.of("isListedIn", _B, _D),
                Atom.of("StockExchangeList", _D),
            ],
            (_A, _B, _C, _D),
        ),
    }


def sample_abox(seed: int = 0, facts_per_relation: int = 10) -> RelationalInstance:
    """A small hand-crafted ABox giving every query non-empty certain answers."""
    database = RelationalInstance()
    database.add_tuple("Broker", ("alice",))
    database.add_tuple("Investor", ("bob",))
    database.add_tuple("StockExchangeMember", ("atlas_bank",))
    database.add_tuple("InvestmentBank", ("meridian",))
    database.add_tuple("hasStock", ("bob", "acme_common"))
    database.add_tuple("hasStock", ("acme_corp", "acme_common"))
    database.add_tuple("CommonStock", ("acme_common",))
    database.add_tuple("belongsToCompany", ("acme_common", "acme_corp"))
    database.add_tuple("ListedCompany", ("acme_corp",))
    database.add_tuple("isListedIn", ("acme_common", "ftse_100"))
    database.add_tuple("StockExchangeList", ("ftse_100",))
    database.add_tuple("tradesOnBehalfOf", ("alice", "bob"))
    return database


def workload() -> Workload:
    """The assembled STOCKEXCHANGE workload."""
    return Workload(
        name="S",
        theory=to_theory(build_tbox()),
        queries=queries(),
        description=(
            "STOCKEXCHANGE: financial institutions of the EU "
            "(domain/range-rich, elimination collapses the queries)"
        ),
        abox_factory=sample_abox,
    )
