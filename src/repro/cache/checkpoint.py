"""Frontier checkpoints: resume a killed rewriting instead of restarting.

Between generations, the frontier kernel's :class:`~repro.core.frontier.
KernelState` fully describes a rewriting run: the interned CQs (with their
Algorithm 1 labels and insertion order), the pending frontier, the
generation counter and the deterministic statistics.  A
:class:`FrontierCheckpoint` persists exactly that to one JSON file after
each completed generation, so a compilation killed at generation ``n``
resumes from ``n`` rather than from scratch — and because the kernel's
merge order is deterministic, the resumed run finishes with a result
byte-identical to an uninterrupted one (pinned by
``tests/core/test_checkpoint.py``).

Validity is structural, like the rewriting store's: the checkpoint records
the theory fingerprint (rules + engine options + engine version, see
:mod:`repro.cache.fingerprint`) and the exact serialised input query.
Loading against a different engine or query returns ``None`` — the run
simply starts fresh — so a stale checkpoint file can never corrupt a
result.  Writes are atomic (temp file + ``os.replace``); a crash while
checkpointing leaves the previous checkpoint intact.
"""

from __future__ import annotations

import json
import logging
import os
from dataclasses import asdict
from pathlib import Path
from typing import TYPE_CHECKING

from ..core.frontier import KernelState, RewriteFrontier
from ..queries.conjunctive_query import ConjunctiveQuery
from ..queries.ucq import InterningStatistics, QuerySet
from .fingerprint import theory_fingerprint
from .serialization import (
    UnserializableQueryError,
    query_from_json,
    query_to_json,
    statistics_from_json,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.rewriter import TGDRewriter

logger = logging.getLogger(__name__)


class FrontierCheckpoint:
    """Persist the kernel state of a rewriting run between generations.

    Parameters
    ----------
    path:
        The checkpoint file.  One checkpoint describes one ``(engine,
        query)`` run; reusing the path for a different run overwrites it.
    every:
        Save after every *every*-th completed generation (default 1).  A
        kill between saves loses at most *every* generations of work.

    The rewriter drives the protocol: :meth:`load` at the start of
    :meth:`~repro.core.rewriter.TGDRewriter.rewrite` (resume if the file
    matches), :meth:`due`/:meth:`save` after each merged generation, and
    :meth:`clear` once the rewriting completes.
    """

    #: On-disk checkpoint format; bump on any incompatible change.
    FORMAT_VERSION = 1

    def __init__(self, path: str | os.PathLike, every: int = 1) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self._path = Path(path)
        self._every = every
        self.saves = 0
        self.save_failures = 0
        self.resumed_generation: int | None = None

    @property
    def path(self) -> Path:
        """The checkpoint file path."""
        return self._path

    @property
    def every(self) -> int:
        """Checkpoint cadence in generations."""
        return self._every

    def due(self, generation: int) -> bool:
        """``True`` when *generation* completes a checkpoint interval."""
        return generation % self._every == 0

    def _fingerprint(self, rewriter: "TGDRewriter") -> str:
        """The engine fingerprint a checkpoint is valid for.

        Negative constraints are hashed whenever the engine holds a pruner
        (pruning changes which candidates survive expansion), mirroring
        what :func:`repro.cache.fingerprint.theory_fingerprint` covers for
        stored rewritings.
        """
        return theory_fingerprint(
            rewriter.rules,
            rewriter.negative_constraints,
            use_elimination=rewriter.uses_elimination,
            use_nc_pruning=rewriter.uses_nc_pruning,
        )

    def save(
        self, rewriter: "TGDRewriter", query: ConjunctiveQuery, state: KernelState
    ) -> bool:
        """Atomically persist *state*; returns ``False`` if unsaveable.

        Queries holding non-scalar constants cannot round-trip through
        JSON exactly (the same restriction the rewriting store has); such
        runs simply proceed uncheckpointed.  A filesystem failure (disk
        full, permissions yanked mid-run) likewise degrades to ``False``
        rather than aborting a compile whose in-memory progress is fine.
        """
        entries = list(state.store)
        positions = {id(entry): index for index, entry in enumerate(entries)}
        try:
            payload = {
                "format": self.FORMAT_VERSION,
                "fingerprint": self._fingerprint(rewriter),
                "query": query_to_json(query),
                "generation": state.frontier.generation,
                "entries": [
                    {"query": query_to_json(entry), "label": state.labels[entry]}
                    for entry in entries
                ],
                "frontier": [
                    positions[id(pending)] for pending in state.frontier.pending
                ],
                "statistics": asdict(state.statistics),
                "interning": asdict(state.store.statistics),
            }
        except UnserializableQueryError:
            return False
        temporary = self._path.with_name(self._path.name + ".tmp")
        try:
            temporary.parent.mkdir(parents=True, exist_ok=True)
            with temporary.open("w", encoding="utf-8") as handle:
                json.dump(payload, handle, separators=(",", ":"))
            os.replace(temporary, self._path)
        except OSError as error:
            logger.warning("checkpoint save to %s failed: %s", self._path, error)
            self.save_failures += 1
            return False
        self.saves += 1
        return True

    def load(
        self, rewriter: "TGDRewriter", query: ConjunctiveQuery
    ) -> KernelState | None:
        """Rebuild the kernel state, or ``None`` when no valid checkpoint fits.

        ``None`` covers every benign mismatch — no file, unreadable JSON,
        another format version, a different engine fingerprint, or a
        different input query — so callers can always pass a checkpoint
        and let the run start fresh when it does not apply.
        """
        try:
            payload = json.loads(self._path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("format") != self.FORMAT_VERSION
            or payload.get("fingerprint") != self._fingerprint(rewriter)
        ):
            return None
        try:
            stored_query = query_from_json(payload["query"])
            if stored_query != query:
                return None
            store = QuerySet()
            labels: dict[ConjunctiveQuery, int] = {}
            entries: list[ConjunctiveQuery] = []
            for record in payload["entries"]:
                entry = query_from_json(record["query"])
                interned, inserted = store.intern(entry)
                if not inserted:  # pragma: no cover - corrupt checkpoint
                    return None
                labels[interned] = int(record["label"])
                entries.append(interned)
            pending = [entries[index] for index in payload["frontier"]]
            statistics = statistics_from_json(payload["statistics"])
            # The rebuild's own interning probes polluted the counters;
            # restore the persisted values so a resumed run's final
            # statistics equal an uninterrupted run's.
            store.statistics = InterningStatistics(**payload["interning"])
        except (KeyError, IndexError, TypeError, ValueError):
            return None
        generation = int(payload["generation"])
        self.resumed_generation = generation
        return KernelState(
            store=store,
            labels=labels,
            frontier=RewriteFrontier(pending, generation=generation),
            statistics=statistics,
        )

    def clear(self) -> None:
        """Remove the checkpoint file (called when the run completes).

        Tolerates any filesystem failure, like :meth:`save`: a compile
        that finished must never be failed by its cleanup.
        """
        try:
            self._path.unlink()
        except OSError:
            pass


class BatchCheckpoint:
    """Resume manifest plus per-query frontier checkpoints for a batch compile.

    :meth:`repro.api.OBDASystem.compile_many` with ``checkpoint_dir`` set
    runs each cold query under its own :class:`FrontierCheckpoint`, named
    by a digest of ``(theory fingerprint, canonical key)``, and maintains
    one ``manifest.json`` recording which batch members already completed.
    A killed multi-query compile therefore resumes per query: members
    finished before the kill are served from the system's caches or
    persistent store (their frontier checkpoints were cleared on
    completion), and the member in flight resumes from its last persisted
    frontier generation instead of from scratch.

    The manifest is bookkeeping, not a result store — it records progress
    (``completed`` flags, the generation a resumed member restarted from)
    so operators and tests can see what a rerun actually redid; result
    bytes always come from the deterministic engine or the attached
    store.  A manifest written for a different theory fingerprint or
    query set is discarded wholesale, mirroring the structural-validity
    rule of the other cache layers.
    """

    #: On-disk manifest format; bump on any incompatible change.
    FORMAT_VERSION = 1
    #: Manifest file name inside the checkpoint directory.
    MANIFEST_NAME = "manifest.json"

    def __init__(self, directory: str | os.PathLike, every: int = 1) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self._directory = Path(directory)
        self._every = every
        self._fingerprint: str | None = None
        self._entries: list[dict] = []
        self._by_digest: dict[str, list[dict]] = {}
        #: Digests that were already marked completed when :meth:`begin`
        #: loaded an existing manifest (i.e. work a rerun did not redo).
        self.completed_on_load: frozenset[str] = frozenset()

    @property
    def directory(self) -> Path:
        """The directory holding the manifest and the per-query checkpoints."""
        return self._directory

    @property
    def manifest_path(self) -> Path:
        return self._directory / self.MANIFEST_NAME

    @staticmethod
    def digest(fingerprint: str, query: ConjunctiveQuery) -> str:
        """Content address of one member compile: fingerprint + canonical key.

        Canonical keys are variant-invariant, so renamed-apart copies of
        one query share a digest — and therefore one frontier checkpoint —
        exactly as they share one entry in the rewriting store.
        """
        import hashlib

        key, _ = query.canonical_fingerprint
        payload = f"{fingerprint}\n{key!r}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def begin(
        self, fingerprint: str, queries: list[ConjunctiveQuery]
    ) -> frozenset[str]:
        """Open (or adopt) the manifest for this batch; returns resumed digests.

        An existing manifest is adopted only when it describes the same
        fingerprint and the same multiset of query digests; its
        ``completed`` flags then carry over.  Anything else — no file,
        unreadable JSON, different batch — starts a fresh manifest.
        """
        self._fingerprint = fingerprint
        digests = [self.digest(fingerprint, query) for query in queries]
        previous: dict[str, dict] = {}
        try:
            payload = json.loads(self.manifest_path.read_text(encoding="utf-8"))
            if (
                isinstance(payload, dict)
                and payload.get("format") == self.FORMAT_VERSION
                and payload.get("fingerprint") == fingerprint
                and sorted(
                    entry["digest"] for entry in payload.get("entries", ())
                )
                == sorted(digests)
            ):
                previous = {
                    entry["digest"]: entry for entry in payload["entries"]
                }
        except (OSError, json.JSONDecodeError, KeyError, TypeError):
            previous = {}
        self._entries = []
        self._by_digest = {}
        for query, digest in zip(queries, digests):
            adopted = previous.get(digest, {})
            entry = {
                "digest": digest,
                "query": repr(query),
                "completed": bool(adopted.get("completed", False)),
                "resumed_generation": adopted.get("resumed_generation"),
            }
            self._entries.append(entry)
            # Duplicate (or variant) queries share a digest and a
            # checkpoint; completing the digest completes every position.
            self._by_digest.setdefault(digest, []).append(entry)
        self.completed_on_load = frozenset(
            entry["digest"] for entry in self._entries if entry["completed"]
        )
        self._write()
        return self.completed_on_load

    def checkpoint_for(self, query: ConjunctiveQuery) -> FrontierCheckpoint:
        """The per-query frontier checkpoint backing one member compile."""
        if self._fingerprint is None:
            raise RuntimeError("BatchCheckpoint.begin() must be called first")
        digest = self.digest(self._fingerprint, query)
        return FrontierCheckpoint(
            self._directory / f"{digest}.ckpt.json", every=self._every
        )

    def mark_completed(
        self, query: ConjunctiveQuery, resumed_generation: int | None = None
    ) -> None:
        """Record one member as done (and where its rerun resumed, if it did)."""
        if self._fingerprint is None:
            raise RuntimeError("BatchCheckpoint.begin() must be called first")
        digest = self.digest(self._fingerprint, query)
        entries = self._by_digest.get(digest)
        if entries is None:  # pragma: no cover - queries outside begin()'s batch
            return
        for entry in entries:
            entry["completed"] = True
            if resumed_generation is not None:
                entry["resumed_generation"] = resumed_generation
        self._write()

    def finish(self) -> None:
        """Remove the manifest once every member completed.

        Leaves it in place while any member is still open, so a partial
        batch keeps its resume state; filesystem failures are tolerated
        like :meth:`FrontierCheckpoint.clear`.
        """
        if any(not entry["completed"] for entry in self._entries):
            return
        try:
            self.manifest_path.unlink()
        except OSError:
            pass

    def _write(self) -> None:
        """Atomically persist the manifest; failures degrade to no manifest."""
        payload = {
            "format": self.FORMAT_VERSION,
            "fingerprint": self._fingerprint,
            "entries": self._entries,
        }
        temporary = self.manifest_path.with_name(self.MANIFEST_NAME + ".tmp")
        try:
            temporary.parent.mkdir(parents=True, exist_ok=True)
            with temporary.open("w", encoding="utf-8") as handle:
                json.dump(payload, handle, separators=(",", ":"))
            os.replace(temporary, self.manifest_path)
        except OSError as error:
            logger.warning(
                "batch manifest save to %s failed: %s", self.manifest_path, error
            )
