"""Persistent compile-once/serve-many layer for perfect rewritings.

``TGD-rewrite`` pays its cost once per query, but a production OBDA
deployment re-rewrites the same or structurally identical queries across
processes and restarts.  The canonical keys of :mod:`repro.logic.canonical`
make rewritings *content-addressable*: two variant queries (equal modulo a
head-preserving bijective variable renaming) share one canonical key, and
the perfect rewriting of a CQ — viewed as the set of certain answers it
produces on every database — depends only on the query *up to varianthood*
and on the ontological theory.  A finished rewriting can therefore be
persisted under ``(canonical query key, theory fingerprint)`` and served to
any later process that asks for a variant of the same query against the
same theory.

The package provides three pieces:

* :mod:`repro.cache.fingerprint` — a renaming- and order-invariant SHA-256
  fingerprint of everything the rewriting output depends on: the TGDs, the
  negative constraints, the engine options (elimination, NC pruning) and an
  engine version constant.  Any theory change — adding or removing a TGD,
  toggling an optimisation — changes the fingerprint, which *is* the cache
  invalidation mechanism: stale entries simply never match again.
* :mod:`repro.cache.serialization` — a JSON encoding of terms, atoms,
  conjunctive queries and :class:`~repro.core.rewriter.RewritingResult`
  objects that round-trips exactly (a reloaded rewriting is ``==`` to, and
  prints byte-identically to, the one that was stored).
* :mod:`repro.cache.store` — :class:`RewritingStore`, an append-only
  JSON-lines store with an in-memory index, format versioning, explicit
  pruning of stale fingerprints, and hit/miss/collision counters that
  :class:`repro.api.OBDASystem` merges into its cache info.
* :mod:`repro.cache.checkpoint` — :class:`FrontierCheckpoint`, which
  persists the frontier kernel's state between rewriting generations so
  a killed compilation resumes from its last completed generation (with
  a byte-identical final result) instead of restarting.

Cache-key invariants
--------------------

The correctness of serving a stored rewriting for a *different* query rests
on two documented invariants:

1. **Key equality proves varianthood only for discrete colourings.**
   ``canonical_key(q) == canonical_key(p)`` is guaranteed when ``q`` and
   ``p`` are variants, but the converse only holds when colour refinement
   separated every variable (the ``exact`` flag of
   :func:`repro.logic.canonical.canonical_fingerprint`).  The store records
   the flag and the original query with every entry: an exact-key lookup
   against an exact entry is served straight from the index, while a
   non-exact lookup re-parses the stored query and confirms
   :meth:`~repro.queries.conjunctive_query.ConjunctiveQuery.is_variant_of`
   before serving — a failed confirmation is counted as a collision and
   treated as a miss.
2. **The theory fingerprint covers everything else the output depends
   on** — the TGD set (modulo rule order and variable naming), the negative
   constraints, whether query elimination and NC pruning are enabled, and
   the engine version (bumped whenever the algorithm's output changes).
   Two systems with equal fingerprints produce interchangeable rewritings;
   two systems with different fingerprints never share entries.
"""

from .checkpoint import FrontierCheckpoint
from .fingerprint import ENGINE_VERSION, theory_fingerprint
from .serialization import (
    UnserializableQueryError,
    query_from_json,
    query_to_json,
    result_from_json,
    result_to_json,
)
from .store import CacheStatistics, RewritingStore

__all__ = [
    "ENGINE_VERSION",
    "CacheStatistics",
    "FrontierCheckpoint",
    "RewritingStore",
    "UnserializableQueryError",
    "query_from_json",
    "query_to_json",
    "result_from_json",
    "result_to_json",
    "theory_fingerprint",
]
