"""Theory fingerprints: what a cached rewriting is valid *for*.

A persisted rewriting may be served to a later process only when that
process would have computed the same UCQ (up to variable renaming).  The
rewriting output of :class:`repro.core.rewriter.TGDRewriter` is a function
of

* the TGD set Σ (as a *set*: rule order never changes which CQs are
  produced, and renaming a rule's variables never changes anything),
* the negative constraints Σ⊥ when NC pruning is on,
* the engine options — query elimination (``TGD-rewrite*`` versus plain
  ``TGD-rewrite``) and NC pruning, and
* the algorithm itself, represented here by :data:`ENGINE_VERSION`.

:func:`theory_fingerprint` hashes exactly these inputs, canonicalising each
rule modulo variable renaming and sorting the rule serialisations so that
two theories that differ only in presentation (rule order, variable names,
labels) share a fingerprint, while any semantic change — a TGD added or
removed, a constraint edited, an optimisation toggled — produces a fresh
one.  Cache invalidation on theory change is therefore automatic: stale
entries keep their old fingerprint and never match again (and can be
physically dropped with :meth:`repro.cache.store.RewritingStore.prune`).
"""

from __future__ import annotations

import hashlib
from typing import Sequence

from ..dependencies.constraints import NegativeConstraint
from ..dependencies.tgd import TGD
from ..logic.unification import atom_sequence_profile

#: Bump whenever a change to the rewriting engine alters its *output*
#: (not merely its speed): every persisted entry keyed under the old
#: version silently becomes stale.  Version 2: the frontier kernel
#: explores generations breadth-first, which changes the representatives
#: and insertion order of stored UCQs (sizes are unchanged).
ENGINE_VERSION = 2


def rule_signature(rule: TGD) -> str:
    """A renaming-invariant textual signature of one TGD.

    Built on :func:`repro.logic.unification.atom_sequence_profile` over
    the concatenated body and head (so frontier variables are numbered
    consistently across both), prefixed with the body length to keep the
    body/head split unambiguous.  Two rules that are equal modulo
    variable renaming — and therefore interchangeable for rewriting —
    share a signature.  The cosmetic ``label`` is deliberately excluded.
    """
    profile = atom_sequence_profile(tuple(rule.body) + tuple(rule.head))
    return repr(("tgd", len(rule.body), profile))


def constraint_signature(constraint: NegativeConstraint) -> str:
    """A renaming-invariant textual signature of one negative constraint."""
    return repr(("nc", atom_sequence_profile(constraint.body)))


def theory_fingerprint(
    rules: Sequence[TGD],
    negative_constraints: Sequence[NegativeConstraint] = (),
    *,
    use_elimination: bool = False,
    use_nc_pruning: bool = False,
    engine_version: int = ENGINE_VERSION,
) -> str:
    """SHA-256 fingerprint of everything a rewriting's output depends on.

    The fingerprint is invariant under rule reordering and variable
    renaming, and sensitive to every semantic change: adding or removing a
    TGD or NC, editing an atom, or toggling ``use_elimination`` /
    ``use_nc_pruning``.  Negative constraints only influence the output
    when pruning is enabled, so they are hashed only in that case —
    attaching NCs to a pruning-disabled system does not orphan its cache.
    """
    payload = [
        f"engine:{engine_version}",
        f"elimination:{bool(use_elimination)}",
        f"nc_pruning:{bool(use_nc_pruning)}",
    ]
    payload.extend(sorted(rule_signature(rule) for rule in rules))
    if use_nc_pruning:
        payload.extend(
            sorted(constraint_signature(nc) for nc in negative_constraints)
        )
    digest = hashlib.sha256("\n".join(payload).encode("utf-8"))
    return digest.hexdigest()
