"""Exact JSON round-tripping of queries and rewriting results.

The persistent cache must hand back *the same object* it stored: the
warm-start guarantee of :class:`repro.cache.store.RewritingStore` is that a
reloaded rewriting compares equal to — and prints byte-identically to — the
cold-start one.  The textual query syntax of :mod:`repro.queries.parser`
cannot provide that (it decides variable-versus-constant from the first
character, so a constant ``"Acme"`` would reload as a variable), hence this
explicit tagged encoding:

* terms — ``["v", name]`` for variables, ``["c", value]`` for constants
  whose value is a JSON scalar (``str``/``int``/``float``/``bool``),
  ``["n", label]`` for labelled nulls;
* atoms — ``[name, [term, ...]]`` (the arity is implied);
* conjunctive queries — ``{"head": name, "answer": [...], "body": [...]}``;
* rewriting results — the input query, the UCQ members, the auxiliary
  (label-0 / internal-predicate) queries and the run's statistics.

Constants whose values are not JSON scalars raise
:class:`UnserializableQueryError`; callers treat the query as uncacheable
rather than storing a lossy encoding.
"""

from __future__ import annotations

from dataclasses import asdict, fields
from typing import Sequence

from ..core.rewriter import RewritingResult, RewritingStatistics
from ..dependencies.tgd import TGD
from ..logic.atoms import Atom, Predicate
from ..logic.terms import Constant, Null, Term, Variable
from ..queries.conjunctive_query import ConjunctiveQuery
from ..queries.ucq import UnionOfConjunctiveQueries


class UnserializableQueryError(ValueError):
    """Raised when a query holds a constant that JSON cannot represent exactly."""


_SCALARS = (str, int, float, bool)


def term_to_json(term: Term) -> list:
    """Encode one term as a tagged JSON list."""
    if isinstance(term, Variable):
        return ["v", term.name]
    if isinstance(term, Constant):
        if not isinstance(term.value, _SCALARS):
            raise UnserializableQueryError(
                f"constant value {term.value!r} is not a JSON scalar"
            )
        return ["c", term.value]
    if isinstance(term, Null):
        return ["n", term.label]
    raise UnserializableQueryError(f"unknown term {term!r}")


def term_from_json(payload: Sequence) -> Term:
    """Decode one tagged term."""
    tag, value = payload
    if tag == "v":
        return Variable(value)
    if tag == "c":
        return Constant(value)
    if tag == "n":
        return Null(value)
    raise UnserializableQueryError(f"unknown term tag {tag!r}")


def atom_to_json(atom: Atom) -> list:
    """Encode one atom as ``[name, [terms...]]``."""
    return [atom.name, [term_to_json(term) for term in atom.terms]]


def atom_from_json(payload: Sequence) -> Atom:
    """Decode one atom."""
    name, terms = payload
    decoded = tuple(term_from_json(term) for term in terms)
    return Atom(Predicate(name, len(decoded)), decoded)


def query_to_json(query: ConjunctiveQuery) -> dict:
    """Encode a conjunctive query, preserving body order and head terms."""
    return {
        "head": query.head_name,
        "answer": [term_to_json(term) for term in query.answer_terms],
        "body": [atom_to_json(atom) for atom in query.body],
    }


def query_from_json(payload: dict) -> ConjunctiveQuery:
    """Decode a conjunctive query; inverse of :func:`query_to_json`."""
    return ConjunctiveQuery(
        body=(atom_from_json(atom) for atom in payload["body"]),
        answer_terms=tuple(term_from_json(term) for term in payload["answer"]),
        head_name=payload["head"],
    )


def tgd_to_json(rule: TGD) -> dict:
    """Encode one TGD, preserving body/head order and the label.

    Used by the fuzzing repro files (:mod:`repro.fuzzing.shrink`), which —
    unlike the rewriting store — must carry the rules themselves: a repro
    is replayed without the theory that produced it.
    """
    return {
        "body": [atom_to_json(atom) for atom in rule.body],
        "head": [atom_to_json(atom) for atom in rule.head],
        "label": rule.label,
    }


def tgd_from_json(payload: dict) -> TGD:
    """Decode one TGD; inverse of :func:`tgd_to_json`."""
    return TGD(
        body=tuple(atom_from_json(atom) for atom in payload["body"]),
        head=tuple(atom_from_json(atom) for atom in payload["head"]),
        label=payload.get("label", ""),
    )


def statistics_from_json(payload: dict) -> RewritingStatistics:
    """Decode statistics, ignoring counters unknown to this version."""
    known = {field.name for field in fields(RewritingStatistics)}
    return RewritingStatistics(
        **{key: value for key, value in payload.items() if key in known}
    )


def statistics_to_json(statistics: RewritingStatistics) -> dict:
    """Encode statistics with the volatile counters zeroed.

    Wall-clock and the memo/serving-cache shares vary between runs that
    compute the *same* rewriting (they depend on engine history and
    timing), so persisting them would make two stores built from
    identical inputs differ byte-wise.  Zeroing them keeps every stored
    record a deterministic function of ``(rules, options, query)`` —
    the property the parallel-determinism tests pin — while the
    algorithmic counters (generated/pruned/interned/…) round-trip intact.
    """
    payload = asdict(statistics)
    for name in RewritingStatistics.VOLATILE_FIELDS:
        payload[name] = type(payload[name])()
    return payload


def result_to_json(result: RewritingResult) -> dict:
    """Encode a rewriting result (the rules are *not* stored).

    The rules live in the theory fingerprint of the surrounding cache
    entry; on reload the caller re-attaches its own (equal) rule tuple.
    """
    return {
        "query": query_to_json(result.query),
        "ucq": [query_to_json(member) for member in result.ucq],
        "auxiliary": [query_to_json(member) for member in result.auxiliary_queries],
        "statistics": statistics_to_json(result.statistics),
    }


def result_from_json(payload: dict, rules: tuple = ()) -> RewritingResult:
    """Decode a rewriting result, attaching the caller's *rules* tuple."""
    return RewritingResult(
        query=query_from_json(payload["query"]),
        rules=tuple(rules),
        ucq=UnionOfConjunctiveQueries(
            query_from_json(member) for member in payload["ucq"]
        ),
        auxiliary_queries=tuple(
            query_from_json(member) for member in payload.get("auxiliary", ())
        ),
        statistics=statistics_from_json(payload.get("statistics", {})),
    )
