"""The persistent rewriting store: compile once, serve many.

:class:`RewritingStore` persists finished perfect rewritings to disk so
that later processes — or later runs of a whole workload — skip
``TGD-rewrite`` entirely for queries they have already compiled, including
queries that are merely *variants* (equal modulo bijective variable
renaming) of compiled ones.

Storage format
--------------

One append-only JSON-lines file, ``rewritings.jsonl``, inside the store
directory.  Each line is a self-contained record::

    {"format": 1, "digest": "...", "fingerprint": "...", "exact": true,
     "result": {"query": ..., "ucq": [...], "auxiliary": [...],
                "statistics": {...}}}

* ``digest`` is the SHA-256 of ``(canonical query key, theory
  fingerprint)`` — the content address of the entry.  All records sharing
  a digest form one bucket (buckets exceed one entry only when two
  non-variant queries collide on a non-exact canonical key).
* ``format`` is the store's on-disk version; records written by an
  incompatible version are skipped (and counted) at load time, never
  misread.
* ``fingerprint`` ties the entry to the exact theory + engine
  configuration that produced it (see :mod:`repro.cache.fingerprint`).
  A theory change gives new queries a new fingerprint, so stale entries
  are unreachable by construction; :meth:`RewritingStore.prune` physically
  removes them.

Appends are flushed line-by-line, so concurrent readers in other
processes pick up completed entries on their next load and a crash can at
worst lose the final line (which the loader then skips as corrupt).

Serving guarantees
------------------

A hit returns a result that is byte-identical (same ``repr``, same SQL)
to the one stored.  Serving it for a *variant* of the original query is
sound because certain answers are invariant under variant rewritings; the
varianthood proof follows the invariants documented in
:mod:`repro.cache`: exact canonical keys prove varianthood by equality
alone, non-exact keys are confirmed against the stored query with
:meth:`~repro.queries.conjunctive_query.ConjunctiveQuery.is_variant_of`.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import re
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Sequence

from ..core.rewriter import RewritingResult
from ..dependencies.tgd import TGD
from ..queries.conjunctive_query import ConjunctiveQuery
from .serialization import (
    UnserializableQueryError,
    query_from_json,
    result_from_json,
    result_to_json,
)

logger = logging.getLogger(__name__)


@dataclass
class CacheStatistics:
    """Counters describing a :class:`RewritingStore`'s behaviour.

    ``exact_hits`` counts hits proven by digest equality alone (both the
    probe and the entry had discrete canonical colourings);
    ``confirmations`` counts explicit variant checks against stored
    queries; ``collisions`` counts probes whose bucket was non-empty yet
    held no variant; ``skipped_records`` counts on-disk records ignored at
    load time (corrupt or written by another format version).
    """

    lookups: int = 0
    hits: int = 0
    exact_hits: int = 0
    confirmations: int = 0
    collisions: int = 0
    misses: int = 0
    stores: int = 0
    uncacheable: int = 0
    skipped_records: int = 0
    pruned: int = 0
    evicted: int = 0


class RewritingStore:
    """A disk-backed map ``(canonical query key, theory fingerprint) → rewriting``.

    Parameters
    ----------
    directory:
        The store directory (created if missing).  Several theories may
        share one store: entries are segregated by fingerprint.
    max_entries:
        Optional LRU bound on the number of stored records.  When an
        append pushes the store past the bound, the least-recently-served
        entries are evicted from the in-memory index immediately; the
        file itself is rewritten (atomically) only once it holds twice
        the bound, so a workload of M puts costs O(M) amortised writes
        instead of one full rewrite per put.  Between rewrites the file
        may transiently hold up to ``2 * max_entries`` records; reopening
        the store re-applies the bound.  One caveat: re-putting an entry
        whose evicted record still sits in the file forces an immediate
        purge, so a workload *cycling* through a working set larger than
        the bound thrashes (as any LRU does) — pick a bound that covers
        the hot set.  Recency is *persistent*: every serve appends a
        ``timestamp digest`` line to a sidecar ``recency.log``, so a later
        process — e.g. ``repro cache compact`` — evicts true-LRU across
        process boundaries.  Entries never recorded in the log rank by
        their position in the JSON-lines file (oldest-first), below every
        logged entry.
    """

    #: On-disk format version; bump on any incompatible record change.
    FORMAT_VERSION = 1
    #: Name of the JSON-lines file inside the store directory.
    FILENAME = "rewritings.jsonl"
    #: Sidecar append-only log of serve times (``"<unix-time> <digest>"``
    #: lines); best-effort — losing it only degrades eviction to
    #: oldest-first, never correctness.
    RECENCY_FILENAME = "recency.log"

    def __init__(
        self, directory: str | os.PathLike, max_entries: int | None = None
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._path = self._directory / self.FILENAME
        self._index: dict[str, list[dict]] = {}
        # Re-entrant: put() holds it across _touch, which may fold the
        # recency log back and needs it too.
        self._lock = threading.RLock()
        self.statistics = CacheStatistics()
        self._needs_newline = False
        # Byte length of a torn trailing record found during load; the
        # next put() truncates it away (it must never become a trusted
        # interior line once a newline lands after it).
        self._torn_tail_bytes = 0
        self._max_entries = max_entries
        # Recency rank per digest: ``(persisted timestamp, sequence)``.
        # Unlogged entries carry timestamp 0.0 and rank by file position,
        # so any entry with a persisted serve time outranks all of them.
        self._recency: dict[str, tuple[float, int]] = {}
        self._ticks = 0
        self._file_records = 0
        self._recency_path = self._directory / self.RECENCY_FILENAME
        self._recency_handle = None
        self._recency_lines = 0
        # Digests evicted from the index whose records still sit in the
        # (lazily rewritten) file; re-appending one of these without a
        # purge first would leave duplicate records on disk.
        self._ghost_digests: set[str] = set()
        self._load()
        self._load_recency()
        self._file_records = len(self)
        if max_entries is not None:
            with self._lock:
                self.statistics.evicted += self._evict_locked(max_entries)

    # -- basic accessors ---------------------------------------------------

    @property
    def path(self) -> Path:
        """Path of the underlying JSON-lines file."""
        return self._path

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._index.values())

    def __iter__(self) -> Iterator[dict]:
        """Iterate over the raw records (diagnostics and tooling)."""
        for digest in list(self._index):
            yield from self._bucket(digest)

    @property
    def fingerprints(self) -> frozenset[str]:
        """The distinct theory fingerprints present in the store."""
        return frozenset(record["fingerprint"] for record in self)

    @property
    def max_entries(self) -> int | None:
        """The LRU bound on stored records (``None`` = unbounded)."""
        return self._max_entries

    def _touch(self, digest: str) -> None:
        """Mark *digest* as most recently served/stored, and persist it.

        The serve time is appended to ``recency.log`` so the LRU order
        survives the process — a store opened later (another worker,
        ``repro cache compact``) evicts what *actually* went unserved
        longest, not merely what was written first.
        """
        self._ticks += 1
        stamp = time.time()
        self._recency[digest] = (stamp, self._ticks)
        try:
            if self._recency_handle is None:
                self._recency_handle = self._recency_path.open("a", encoding="utf-8")
            self._recency_handle.write(f"{stamp:.6f} {digest}\n")
            self._recency_handle.flush()
            self._recency_lines += 1
        except OSError:  # pragma: no cover - recency is best-effort
            self._recency_handle = None
        if self._recency_lines > max(256, 4 * len(self)):
            # Fold the log back to one line per entry.  Serve-only (fully
            # warm) workloads never append records, so the growth bound
            # must live here on the serve path, not just in put().
            with self._lock:
                self._rewrite_recency_locked()

    def _rank(self, digest: str) -> None:
        """Baseline recency of an on-disk record: its file position."""
        self._ticks += 1
        self._recency[digest] = (0.0, self._ticks)

    # -- the map interface -------------------------------------------------

    def get(
        self,
        query: ConjunctiveQuery,
        fingerprint: str,
        rules: Sequence[TGD] = (),
    ) -> RewritingResult | None:
        """Return the stored rewriting of a variant of *query*, if any.

        *rules* is attached to the reloaded result (the store itself only
        certifies them through *fingerprint*).  Returns ``None`` on a
        miss — including the collision case where the bucket holds only
        non-variants of *query*.
        """
        statistics = self.statistics
        statistics.lookups += 1
        key, exact = query.canonical_fingerprint
        digest = self._digest(key, fingerprint)
        bucket = self._bucket(digest)
        for record in bucket:
            record_exact = bool(record["exact"])
            if exact and record_exact:
                statistics.hits += 1
                statistics.exact_hits += 1
                self._touch(digest)
                return result_from_json(record["result"], rules)
            if exact != record_exact:
                # Exactness is a variant invariant: a mismatch proves
                # non-varianthood without deserialising the stored query.
                continue
            statistics.confirmations += 1
            stored_query = query_from_json(record["result"]["query"])
            if stored_query.is_variant_of(query):
                statistics.hits += 1
                self._touch(digest)
                return result_from_json(record["result"], rules)
        if bucket:
            statistics.collisions += 1
        statistics.misses += 1
        return None

    def put(
        self, query: ConjunctiveQuery, fingerprint: str, result: RewritingResult
    ) -> bool:
        """Persist *result* under *query*'s canonical key and *fingerprint*.

        Returns ``True`` when a new record was written, ``False`` when an
        entry for a variant of *query* already exists or the query is not
        exactly serialisable (non-scalar constant values).
        """
        key, exact = query.canonical_fingerprint
        digest = self._digest(key, fingerprint)
        try:
            payload = result_to_json(result)
        except UnserializableQueryError:
            self.statistics.uncacheable += 1
            return False
        record = {
            "format": self.FORMAT_VERSION,
            "digest": digest,
            "fingerprint": fingerprint,
            "exact": exact,
            "result": payload,
        }
        with self._lock:
            bucket = self._bucket(digest)
            self._index[digest] = bucket
            for existing in bucket:
                if bool(existing["exact"]) == exact:
                    if exact:
                        return False
                    stored_query = query_from_json(existing["result"]["query"])
                    if stored_query.is_variant_of(query):
                        return False
            if digest in self._ghost_digests:
                # The file still holds an evicted record for this digest;
                # purge it first or a reload would double-count the bucket
                # against the bound (and serve the stale record).
                self._rewrite_locked()
            bucket.append(record)
            if self._needs_newline and self._torn_tail_bytes:
                # A previous process crashed mid-append: cut the torn
                # bytes off (they can start like a valid record, so a
                # newline after them would turn garbage into a trusted
                # interior line on the next load).
                size = self._path.stat().st_size
                with self._path.open("rb+") as raw:
                    raw.truncate(max(0, size - self._torn_tail_bytes))
                self._torn_tail_bytes = 0
                self._needs_newline = False
            with self._path.open("a", encoding="utf-8") as handle:
                if self._needs_newline:
                    # The trailing line is complete, just unterminated:
                    # end it so this record starts on a fresh line.
                    handle.write("\n")
                    self._needs_newline = False
                handle.write(json.dumps(record, separators=(",", ":")) + "\n")
            self._file_records += 1
            self._touch(digest)
            evicted = 0
            if self._max_entries is not None:
                evicted = self._evict_memory_locked(self._max_entries)
                if evicted and self._file_records >= 2 * self._max_entries:
                    self._rewrite_locked()
        self.statistics.stores += 1
        self.statistics.evicted += evicted
        return True

    def compact(self, max_entries: int | None = None) -> int:
        """Bound the store to its *max_entries* most-recently-served records.

        Evicts least-recently-served entries until at most *max_entries*
        records remain (defaulting to the bound given at construction
        time) and rewrites the JSON-lines file atomically.  Recency is
        the *persisted* serving order replayed from ``recency.log``, so a
        fresh open (e.g. ``repro cache compact`` in a new process) evicts
        true-LRU across processes; entries never served anywhere rank by
        file position below every served one.  Returns the number of
        records removed.
        """
        if max_entries is None:
            max_entries = self._max_entries
        if max_entries is None:
            raise ValueError(
                "compact() needs max_entries (no bound was set at construction)"
            )
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        with self._lock:
            removed = self._evict_locked(max_entries)
            if not removed and (self._needs_newline or self.statistics.skipped_records):
                # Nothing evicted, but the file carries debris — a torn
                # trailing record or skipped lines from a crashed append.
                # Rewriting from the index repairs it for good.
                self._rewrite_locked()
        self.statistics.evicted += removed
        return removed

    def _evict_memory_locked(self, max_entries: int) -> int:
        """Drop LRU buckets from the index until ``len(self) <= max_entries``.

        Must be called with :attr:`_lock` held; does *not* touch the
        file (:meth:`put` rewrites lazily, :meth:`_evict_locked` always).
        Eviction granularity is the digest bucket (buckets exceed one
        record only on canonical-key collisions, which are vanishingly
        rare).
        """
        if len(self) <= max_entries:
            return 0
        removed = 0
        for digest in sorted(
            self._index, key=lambda d: self._recency.get(d, (0.0, 0))
        ):
            if len(self) <= max_entries:
                break
            removed += len(self._index.pop(digest))
            self._recency.pop(digest, None)
            self._ghost_digests.add(digest)
        return removed

    def _evict_locked(self, max_entries: int) -> int:
        """Evict down to *max_entries* and rewrite the file if anything went."""
        removed = self._evict_memory_locked(max_entries)
        if removed:
            self._rewrite_locked()
        return removed

    def _rewrite_locked(self) -> None:
        """Atomically rewrite the JSON-lines file from the in-memory index.

        Must be called with :attr:`_lock` held.  Surviving records keep
        their relative order (the index preserves insertion order);
        records still in their unparsed string form are written back
        verbatim, so compaction never has to parse payloads it is merely
        keeping.
        """
        temporary = self._path.with_suffix(".jsonl.tmp")
        with temporary.open("w", encoding="utf-8") as handle:
            for bucket in self._index.values():
                for record in bucket:
                    if isinstance(record, str):
                        handle.write(record + "\n")
                    else:
                        handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        os.replace(temporary, self._path)
        self._needs_newline = False
        self._torn_tail_bytes = 0
        self._file_records = len(self)
        self._ghost_digests.clear()
        self._rewrite_recency_locked()

    def _rewrite_recency_locked(self) -> None:
        """Compact ``recency.log`` to one line per surviving served digest.

        Unserved entries (timestamp 0.0) are omitted — their baseline
        rank is their file position, which the main rewrite just fixed.
        """
        if self._recency_handle is not None:
            self._recency_handle.close()
            self._recency_handle = None
        served = sorted(
            (
                (rank, digest)
                for digest, rank in self._recency.items()
                if digest in self._index and rank[0] > 0.0
            ),
        )
        try:
            temporary = self._recency_path.with_suffix(".log.tmp")
            with temporary.open("w", encoding="utf-8") as handle:
                for (stamp, _), digest in served:
                    handle.write(f"{stamp:.6f} {digest}\n")
            os.replace(temporary, self._recency_path)
            self._recency_lines = len(served)
        except OSError:  # pragma: no cover - recency is best-effort
            pass

    def _load_recency(self) -> None:
        """Replay ``recency.log`` over the file-position baseline ranks.

        Later lines win (the log is append-only, so the last mention of a
        digest is its most recent serve); lines for digests no longer in
        the store — pruned, evicted or compacted away — are ignored.
        """
        if not self._recency_path.exists():
            return
        try:
            lines = self._recency_path.read_text(encoding="utf-8").splitlines()
        except OSError:  # pragma: no cover - recency is best-effort
            return
        self._recency_lines = len(lines)
        for line in lines:
            stamp_text, _, digest = line.strip().partition(" ")
            if not digest or digest not in self._index:
                continue
            try:
                stamp = float(stamp_text)
            except ValueError:
                continue
            self._ticks += 1
            self._recency[digest] = (stamp, self._ticks)
        if self._recency_lines > max(256, 4 * len(self)):
            # A previous serve-heavy process may have exited mid-growth;
            # fold the replayed log down so opens stay O(entries).
            with self._lock:
                self._rewrite_recency_locked()

    def prune(self, keep_fingerprint: str) -> int:
        """Physically drop every entry whose fingerprint differs.

        Entries with other fingerprints are already unreachable for the
        current theory (invalidation is structural); pruning reclaims
        their disk space after a theory change.  Returns the number of
        records removed.  The file is rewritten atomically.
        """
        with self._lock:
            removed = 0
            survivors: dict[str, list[dict]] = {}
            for digest in list(self._index):
                bucket = self._bucket(digest)
                kept = [r for r in bucket if r["fingerprint"] == keep_fingerprint]
                removed += len(bucket) - len(kept)
                if kept:
                    survivors[digest] = kept
            if removed:
                self._index = survivors
                self._recency = {
                    digest: tick
                    for digest, tick in self._recency.items()
                    if digest in survivors
                }
                self._rewrite_locked()
        self.statistics.pruned += removed
        return removed

    # -- internals ---------------------------------------------------------

    @staticmethod
    def _digest(canonical_key: tuple, fingerprint: str) -> str:
        """Content address of an entry: hash of canonical key + fingerprint.

        ``repr`` of a canonical key is deterministic (nested tuples of
        strings and ints), so equal keys — and only equal keys, up to
        SHA-256 collisions — share a digest under one fingerprint.
        """
        payload = f"{fingerprint}\n{canonical_key!r}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    #: Fast-path prefix of records exactly as :meth:`put` writes them; used
    #: to index lines by digest at load time without parsing their payload.
    _RECORD_PREFIX = re.compile(r'^\{"format":(\d+),"digest":"([0-9a-f]{64})"')

    def _load(self) -> None:
        """Index the JSON-lines file by digest, deferring payload parsing.

        Entries can hold whole UCQs, so parsing every record eagerly would
        make opening a large store as expensive as the lookups it is meant
        to save; instead each line is indexed by the digest read from its
        prefix and fully parsed only when its bucket is first probed
        (:meth:`_bucket`).  Lines that do not look like records written by
        this module fall back to a full parse here; unreadable or
        wrong-version lines are skipped and counted, never misread.

        A file that does not end in a newline was torn by a crash
        mid-append.  Its final line must not be trusted on prefix alone —
        a truncated record still *starts* like a valid one — so it is
        fully parsed here and skipped (with a log line) when incomplete;
        the next :meth:`put` starts cleanly on a fresh line and
        :meth:`compact` purges the torn bytes from disk.
        """
        if not self._path.exists():
            return
        with self._path.open("rb") as handle:
            handle.seek(0, os.SEEK_END)
            if handle.tell() > 0:
                handle.seek(-1, os.SEEK_END)
                self._needs_newline = handle.read(1) != b"\n"
        with self._path.open("r", encoding="utf-8") as handle:
            previous: str | None = None
            for line in handle:
                if previous is not None:
                    self._ingest_line(previous, suspect=False)
                previous = line
            if previous is not None:
                self._ingest_line(previous, suspect=self._needs_newline)

    def _ingest_line(self, line: str, suspect: bool) -> None:
        """Index one JSON-lines record; *suspect* lines are torn-tail
        candidates and must prove themselves by a full parse."""
        raw_bytes = len(line.encode("utf-8"))
        line = line.strip()
        if not line:
            return
        match = self._RECORD_PREFIX.match(line)
        if match is not None and not suspect:
            if int(match.group(1)) != self.FORMAT_VERSION:
                self.statistics.skipped_records += 1
                return
            self._index.setdefault(match.group(2), []).append(line)
            self._rank(match.group(2))
            return
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            self.statistics.skipped_records += 1
            if suspect:
                self._torn_tail_bytes = raw_bytes
                logger.warning(
                    "skipping torn trailing record in %s (crash mid-append); "
                    "compact() will repair the file",
                    self._path,
                )
            return
        if (
            not isinstance(record, dict)
            or record.get("format") != self.FORMAT_VERSION
            or "digest" not in record
            or "result" not in record
        ):
            self.statistics.skipped_records += 1
            return
        self._index.setdefault(record["digest"], []).append(record)
        self._rank(record["digest"])

    def _bucket(self, digest: str) -> list[dict]:
        """The fully parsed records of one bucket (parsing them on first use)."""
        bucket = self._index.get(digest)
        if bucket is None:
            return []
        if all(isinstance(record, dict) for record in bucket):
            return bucket
        parsed: list[dict] = []
        for record in bucket:
            if isinstance(record, str):
                try:
                    record = json.loads(record)
                except json.JSONDecodeError:
                    self.statistics.skipped_records += 1
                    continue
                if not isinstance(record, dict) or "result" not in record:
                    self.statistics.skipped_records += 1
                    continue
            parsed.append(record)
        self._index[digest] = parsed
        return parsed
