"""The persistent rewriting store: compile once, serve many.

:class:`RewritingStore` persists finished perfect rewritings to disk so
that later processes — or later runs of a whole workload — skip
``TGD-rewrite`` entirely for queries they have already compiled, including
queries that are merely *variants* (equal modulo bijective variable
renaming) of compiled ones.

Storage format
--------------

One append-only JSON-lines file, ``rewritings.jsonl``, inside the store
directory.  Each line is a self-contained record::

    {"format": 1, "digest": "...", "fingerprint": "...", "exact": true,
     "result": {"query": ..., "ucq": [...], "auxiliary": [...],
                "statistics": {...}}}

* ``digest`` is the SHA-256 of ``(canonical query key, theory
  fingerprint)`` — the content address of the entry.  All records sharing
  a digest form one bucket (buckets exceed one entry only when two
  non-variant queries collide on a non-exact canonical key).
* ``format`` is the store's on-disk version; records written by an
  incompatible version are skipped (and counted) at load time, never
  misread.
* ``fingerprint`` ties the entry to the exact theory + engine
  configuration that produced it (see :mod:`repro.cache.fingerprint`).
  A theory change gives new queries a new fingerprint, so stale entries
  are unreachable by construction; :meth:`RewritingStore.prune` physically
  removes them.

Appends are flushed line-by-line, so concurrent readers in other
processes pick up completed entries on their next load and a crash can at
worst lose the final line (which the loader then skips as corrupt).

Serving guarantees
------------------

A hit returns a result that is byte-identical (same ``repr``, same SQL)
to the one stored.  Serving it for a *variant* of the original query is
sound because certain answers are invariant under variant rewritings; the
varianthood proof follows the invariants documented in
:mod:`repro.cache`: exact canonical keys prove varianthood by equality
alone, non-exact keys are confirmed against the stored query with
:meth:`~repro.queries.conjunctive_query.ConjunctiveQuery.is_variant_of`.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Sequence

from ..core.rewriter import RewritingResult
from ..dependencies.tgd import TGD
from ..queries.conjunctive_query import ConjunctiveQuery
from .serialization import (
    UnserializableQueryError,
    query_from_json,
    result_from_json,
    result_to_json,
)


@dataclass
class CacheStatistics:
    """Counters describing a :class:`RewritingStore`'s behaviour.

    ``exact_hits`` counts hits proven by digest equality alone (both the
    probe and the entry had discrete canonical colourings);
    ``confirmations`` counts explicit variant checks against stored
    queries; ``collisions`` counts probes whose bucket was non-empty yet
    held no variant; ``skipped_records`` counts on-disk records ignored at
    load time (corrupt or written by another format version).
    """

    lookups: int = 0
    hits: int = 0
    exact_hits: int = 0
    confirmations: int = 0
    collisions: int = 0
    misses: int = 0
    stores: int = 0
    uncacheable: int = 0
    skipped_records: int = 0
    pruned: int = 0


class RewritingStore:
    """A disk-backed map ``(canonical query key, theory fingerprint) → rewriting``.

    Parameters
    ----------
    directory:
        The store directory (created if missing).  Several theories may
        share one store: entries are segregated by fingerprint.
    """

    #: On-disk format version; bump on any incompatible record change.
    FORMAT_VERSION = 1
    #: Name of the JSON-lines file inside the store directory.
    FILENAME = "rewritings.jsonl"

    def __init__(self, directory: str | os.PathLike) -> None:
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._path = self._directory / self.FILENAME
        self._index: dict[str, list[dict]] = {}
        self._lock = threading.Lock()
        self.statistics = CacheStatistics()
        self._needs_newline = False
        self._load()

    # -- basic accessors ---------------------------------------------------

    @property
    def path(self) -> Path:
        """Path of the underlying JSON-lines file."""
        return self._path

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._index.values())

    def __iter__(self) -> Iterator[dict]:
        """Iterate over the raw records (diagnostics and tooling)."""
        for digest in list(self._index):
            yield from self._bucket(digest)

    @property
    def fingerprints(self) -> frozenset[str]:
        """The distinct theory fingerprints present in the store."""
        return frozenset(record["fingerprint"] for record in self)

    # -- the map interface -------------------------------------------------

    def get(
        self,
        query: ConjunctiveQuery,
        fingerprint: str,
        rules: Sequence[TGD] = (),
    ) -> RewritingResult | None:
        """Return the stored rewriting of a variant of *query*, if any.

        *rules* is attached to the reloaded result (the store itself only
        certifies them through *fingerprint*).  Returns ``None`` on a
        miss — including the collision case where the bucket holds only
        non-variants of *query*.
        """
        statistics = self.statistics
        statistics.lookups += 1
        key, exact = query.canonical_fingerprint
        bucket = self._bucket(self._digest(key, fingerprint))
        for record in bucket:
            record_exact = bool(record["exact"])
            if exact and record_exact:
                statistics.hits += 1
                statistics.exact_hits += 1
                return result_from_json(record["result"], rules)
            if exact != record_exact:
                # Exactness is a variant invariant: a mismatch proves
                # non-varianthood without deserialising the stored query.
                continue
            statistics.confirmations += 1
            stored_query = query_from_json(record["result"]["query"])
            if stored_query.is_variant_of(query):
                statistics.hits += 1
                return result_from_json(record["result"], rules)
        if bucket:
            statistics.collisions += 1
        statistics.misses += 1
        return None

    def put(
        self, query: ConjunctiveQuery, fingerprint: str, result: RewritingResult
    ) -> bool:
        """Persist *result* under *query*'s canonical key and *fingerprint*.

        Returns ``True`` when a new record was written, ``False`` when an
        entry for a variant of *query* already exists or the query is not
        exactly serialisable (non-scalar constant values).
        """
        key, exact = query.canonical_fingerprint
        digest = self._digest(key, fingerprint)
        try:
            payload = result_to_json(result)
        except UnserializableQueryError:
            self.statistics.uncacheable += 1
            return False
        record = {
            "format": self.FORMAT_VERSION,
            "digest": digest,
            "fingerprint": fingerprint,
            "exact": exact,
            "result": payload,
        }
        with self._lock:
            bucket = self._bucket(digest)
            self._index[digest] = bucket
            for existing in bucket:
                if bool(existing["exact"]) == exact:
                    if exact:
                        return False
                    stored_query = query_from_json(existing["result"]["query"])
                    if stored_query.is_variant_of(query):
                        return False
            bucket.append(record)
            with self._path.open("a", encoding="utf-8") as handle:
                if self._needs_newline:
                    # A previous process crashed mid-append: terminate its
                    # torn line so only that line is lost, not this record.
                    handle.write("\n")
                    self._needs_newline = False
                handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        self.statistics.stores += 1
        return True

    def prune(self, keep_fingerprint: str) -> int:
        """Physically drop every entry whose fingerprint differs.

        Entries with other fingerprints are already unreachable for the
        current theory (invalidation is structural); pruning reclaims
        their disk space after a theory change.  Returns the number of
        records removed.  The file is rewritten atomically.
        """
        with self._lock:
            removed = 0
            survivors: dict[str, list[dict]] = {}
            for digest in list(self._index):
                bucket = self._bucket(digest)
                kept = [r for r in bucket if r["fingerprint"] == keep_fingerprint]
                removed += len(bucket) - len(kept)
                if kept:
                    survivors[digest] = kept
            if removed:
                temporary = self._path.with_suffix(".jsonl.tmp")
                with temporary.open("w", encoding="utf-8") as handle:
                    for bucket in survivors.values():
                        for record in bucket:
                            handle.write(
                                json.dumps(record, separators=(",", ":")) + "\n"
                            )
                os.replace(temporary, self._path)
                self._index = survivors
                self._needs_newline = False
        self.statistics.pruned += removed
        return removed

    # -- internals ---------------------------------------------------------

    @staticmethod
    def _digest(canonical_key: tuple, fingerprint: str) -> str:
        """Content address of an entry: hash of canonical key + fingerprint.

        ``repr`` of a canonical key is deterministic (nested tuples of
        strings and ints), so equal keys — and only equal keys, up to
        SHA-256 collisions — share a digest under one fingerprint.
        """
        payload = f"{fingerprint}\n{canonical_key!r}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    #: Fast-path prefix of records exactly as :meth:`put` writes them; used
    #: to index lines by digest at load time without parsing their payload.
    _RECORD_PREFIX = re.compile(r'^\{"format":(\d+),"digest":"([0-9a-f]{64})"')

    def _load(self) -> None:
        """Index the JSON-lines file by digest, deferring payload parsing.

        Entries can hold whole UCQs, so parsing every record eagerly would
        make opening a large store as expensive as the lookups it is meant
        to save; instead each line is indexed by the digest read from its
        prefix and fully parsed only when its bucket is first probed
        (:meth:`_bucket`).  Lines that do not look like records written by
        this module fall back to a full parse here; unreadable or
        wrong-version lines are skipped and counted, never misread.
        """
        if not self._path.exists():
            return
        with self._path.open("rb") as handle:
            handle.seek(0, os.SEEK_END)
            if handle.tell() > 0:
                handle.seek(-1, os.SEEK_END)
                self._needs_newline = handle.read(1) != b"\n"
        with self._path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                match = self._RECORD_PREFIX.match(line)
                if match is not None:
                    if int(match.group(1)) != self.FORMAT_VERSION:
                        self.statistics.skipped_records += 1
                        continue
                    self._index.setdefault(match.group(2), []).append(line)
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    self.statistics.skipped_records += 1
                    continue
                if (
                    not isinstance(record, dict)
                    or record.get("format") != self.FORMAT_VERSION
                    or "digest" not in record
                    or "result" not in record
                ):
                    self.statistics.skipped_records += 1
                    continue
                self._index.setdefault(record["digest"], []).append(record)

    def _bucket(self, digest: str) -> list[dict]:
        """The fully parsed records of one bucket (parsing them on first use)."""
        bucket = self._index.get(digest)
        if bucket is None:
            return []
        if all(isinstance(record, dict) for record in bucket):
            return bucket
        parsed: list[dict] = []
        for record in bucket:
            if isinstance(record, str):
                try:
                    record = json.loads(record)
                except json.JSONDecodeError:
                    self.statistics.skipped_records += 1
                    continue
                if not isinstance(record, dict) or "result" not in record:
                    self.statistics.skipped_records += 1
                    continue
            parsed.append(record)
        self._index[digest] = parsed
        return parsed
