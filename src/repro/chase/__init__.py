"""The TGD chase: universal-model construction and chase-based query answering."""

from .chase import ChaseEngine, ChaseResult, certain_answers, chase, chase_entails

__all__ = [
    "ChaseEngine",
    "ChaseResult",
    "certain_answers",
    "chase",
    "chase_entails",
]
