"""The TGD chase procedure (Section 3.3).

The chase repairs a database with respect to a set of TGDs by repeatedly
applying the **TGD chase rule**: whenever a homomorphism ``h`` maps the body
of a TGD into the current instance, extend ``h`` to the existential variables
with *fresh labelled nulls* and add the image of the head.  The (possibly
infinite) result is a *universal model*: a BCQ is entailed by ``D ∪ Σ`` iff
it is entailed by ``chase(D, Σ)``.

Two standard variants are provided:

* the **oblivious** chase applies a TGD for *every* body homomorphism that
  has not been used before (simpler, produces more atoms);
* the **restricted** (standard) chase applies a TGD only when the head is not
  already satisfied by an extension of the homomorphism (produces fewer
  atoms, terminates more often).

Both proceed breadth-first (level by level), as required by the paper's
definition, and can be bounded by a maximum derivation depth and/or a maximum
number of atoms — the bound is what makes the chase usable as a *test oracle*
for FO-rewritability experiments even when the unbounded chase is infinite
(e.g. the Stock-Exchange example, where ``stock ↔ stock_portf`` rules cycle).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..logic.atoms import Atom
from ..logic.homomorphism import find_homomorphism, homomorphisms
from ..logic.substitution import Substitution
from ..logic.terms import NullFactory, Term, is_variable
from ..dependencies.tgd import TGD
from ..queries.conjunctive_query import ConjunctiveQuery


@dataclass
class ChaseResult:
    """Outcome of a (possibly truncated) chase run.

    Attributes
    ----------
    atoms:
        The atoms of the chase instance (database facts plus derived atoms).
    levels:
        Maps each atom to the chase level at which it first appeared
        (database atoms are level 0).
    applications:
        Number of successful TGD-rule applications.
    exhausted:
        ``True`` when a fixpoint was reached (no TGD applicable any more);
        ``False`` when the run stopped because a bound was hit.
    """

    atoms: set[Atom] = field(default_factory=set)
    levels: dict[Atom, int] = field(default_factory=dict)
    applications: int = 0
    exhausted: bool = False

    def __contains__(self, atom: Atom) -> bool:
        return atom in self.atoms

    def __len__(self) -> int:
        return len(self.atoms)

    def atoms_at_level(self, level: int) -> frozenset[Atom]:
        """Atoms first derived at the given chase level."""
        return frozenset(a for a, lvl in self.levels.items() if lvl == level)

    @property
    def max_level(self) -> int:
        """The deepest chase level reached."""
        return max(self.levels.values(), default=0)


class ChaseEngine:
    """Breadth-first chase engine with optional bounds."""

    def __init__(
        self,
        rules: Sequence[TGD],
        variant: str = "restricted",
        max_depth: int | None = None,
        max_atoms: int | None = None,
    ) -> None:
        if variant not in {"restricted", "oblivious"}:
            raise ValueError(f"unknown chase variant {variant!r}")
        self._rules = list(rules)
        self._variant = variant
        self._max_depth = max_depth
        self._max_atoms = max_atoms

    # -- public API -----------------------------------------------------------

    def run(self, database: Iterable[Atom]) -> ChaseResult:
        """Chase *database* with the engine's rules."""
        result = ChaseResult()
        nulls = NullFactory()
        for atom in database:
            if atom not in result.atoms:
                result.atoms.add(atom)
                result.levels[atom] = 0

        seen_triggers: set[tuple[int, tuple[tuple[Term, Term], ...]]] = set()
        level = 0
        frontier = set(result.atoms)
        while frontier:
            if self._max_depth is not None and level >= self._max_depth:
                return result
            level += 1
            new_atoms: set[Atom] = set()
            for rule_index, rule in enumerate(self._rules):
                for trigger in self._triggers(rule, result.atoms, frontier):
                    key = (
                        rule_index,
                        tuple(sorted(trigger.as_dict().items(), key=lambda kv: str(kv[0]))),
                    )
                    if key in seen_triggers:
                        continue
                    seen_triggers.add(key)
                    if self._variant == "restricted" and self._head_satisfied(
                        rule, trigger, result.atoms | new_atoms
                    ):
                        continue
                    derived = self._apply(rule, trigger, nulls)
                    result.applications += 1
                    for atom in derived:
                        if atom not in result.atoms and atom not in new_atoms:
                            new_atoms.add(atom)
                    if (
                        self._max_atoms is not None
                        and len(result.atoms) + len(new_atoms) >= self._max_atoms
                    ):
                        for atom in new_atoms:
                            result.atoms.add(atom)
                            result.levels.setdefault(atom, level)
                        return result
            for atom in new_atoms:
                result.atoms.add(atom)
                result.levels.setdefault(atom, level)
            frontier = new_atoms
        result.exhausted = True
        return result

    # -- internals ---------------------------------------------------------------

    def _triggers(
        self, rule: TGD, instance: set[Atom], frontier: set[Atom]
    ) -> Iterable[Substitution]:
        """Homomorphisms from the rule body into the instance.

        To keep the breadth-first discipline efficient, only homomorphisms
        whose image intersects the current frontier are considered after the
        first level (others were already tried at an earlier level).
        """
        for hom in homomorphisms(rule.body, instance):
            image = {hom.apply_atom(atom) for atom in rule.body}
            if frontier is not instance and not image & frontier:
                continue
            yield hom.restrict(rule.body_variables)

    def _head_satisfied(
        self, rule: TGD, trigger: Substitution, instance: set[Atom]
    ) -> bool:
        """Restricted-chase check: does some extension of *trigger* satisfy the head?"""
        partial = {
            variable: trigger.apply_term(variable)
            for variable in rule.frontier
        }
        return find_homomorphism(rule.head, instance, partial=partial) is not None

    def _apply(
        self, rule: TGD, trigger: Substitution, nulls: NullFactory
    ) -> tuple[Atom, ...]:
        """Fire the TGD chase rule for *trigger*, inventing fresh nulls."""
        extension: dict[Term, Term] = dict(trigger.as_dict())
        for variable in sorted(rule.existential_variables, key=str):
            extension[variable] = nulls()
        substitution = Substitution(extension)
        return substitution.apply_atoms(rule.head)


def chase(
    database: Iterable[Atom],
    rules: Sequence[TGD],
    variant: str = "restricted",
    max_depth: int | None = None,
    max_atoms: int | None = None,
) -> ChaseResult:
    """Convenience wrapper around :class:`ChaseEngine`."""
    engine = ChaseEngine(rules, variant=variant, max_depth=max_depth, max_atoms=max_atoms)
    return engine.run(database)


def chase_entails(
    result: ChaseResult, query: ConjunctiveQuery
) -> bool:
    """``True`` iff the chase instance entails the BCQ *query*."""
    return find_homomorphism(query.body, result.atoms) is not None


def certain_answers(
    query: ConjunctiveQuery,
    database: Iterable[Atom],
    rules: Sequence[TGD],
    variant: str = "restricted",
    max_depth: int | None = None,
    max_atoms: int | None = None,
) -> frozenset[tuple]:
    """Certain answers of *query* over ``database ∪ rules`` via the chase.

    Evaluates the query over the (possibly truncated) chase and keeps only the
    tuples made of constants, as required by the certain-answer semantics
    (labelled nulls are not certain values).  When the chase is truncated the
    result is a sound under-approximation of the certain answers; with a
    terminating (or sufficiently deep) chase it is exact.
    """
    from ..logic.terms import is_constant

    result = chase(
        database, rules, variant=variant, max_depth=max_depth, max_atoms=max_atoms
    )
    answers: set[tuple] = set()
    for hom in homomorphisms(query.body, result.atoms):
        answer = tuple(hom.apply_term(term) for term in query.answer_terms)
        if all(is_constant(value) for value in answer):
            answers.add(answer)
    return frozenset(answers)
