"""Relevance index of a UCQ rewriting: body relation → disjuncts.

Delta maintenance (:mod:`repro.incremental.maintain`) starts from one
observation: an inserted or deleted fact of relation ``r`` can only change
the answers of disjuncts whose body *mentions* ``r``.  A perfect rewriting
routinely has hundreds of disjuncts over a handful of relations each, so a
single-tuple delta typically touches a small fraction of the union.  The
index below is built once per rewriting and maps every body predicate to
the (ordered) disjunct indices that mention it.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from ..logic.atoms import Predicate
from ..queries.conjunctive_query import ConjunctiveQuery


class RelevanceIndex:
    """Maps each body predicate to the disjuncts whose body mentions it."""

    def __init__(self, disjuncts: Iterable[ConjunctiveQuery]) -> None:
        by_predicate: dict[Predicate, list[int]] = defaultdict(list)
        count = 0
        for index, query in enumerate(disjuncts):
            count += 1
            for predicate in sorted(
                {atom.predicate for atom in query.body},
                key=lambda p: (p.name, p.arity),
            ):
                by_predicate[predicate].append(index)
        self._by_predicate: dict[Predicate, tuple[int, ...]] = {
            predicate: tuple(indices) for predicate, indices in by_predicate.items()
        }
        self._disjunct_count = count

    @property
    def disjunct_count(self) -> int:
        """Number of disjuncts the index was built over."""
        return self._disjunct_count

    @property
    def predicates(self) -> frozenset[Predicate]:
        """All predicates mentioned by some disjunct body."""
        return frozenset(self._by_predicate)

    def disjuncts_for(self, predicate: Predicate) -> tuple[int, ...]:
        """Indices of the disjuncts whose body mentions *predicate*."""
        return self._by_predicate.get(predicate, ())

    def affected(self, predicates: Iterable[Predicate]) -> tuple[int, ...]:
        """Sorted union of the disjuncts touched by any of *predicates*."""
        touched: set[int] = set()
        for predicate in predicates:
            touched.update(self._by_predicate.get(predicate, ()))
        return tuple(sorted(touched))

    def __repr__(self) -> str:
        return (
            f"RelevanceIndex({self._disjunct_count} disjuncts, "
            f"{len(self._by_predicate)} predicates)"
        )
