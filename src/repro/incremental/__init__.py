"""Incremental answer maintenance over the instance change log.

Standing queries for the serving tier: a compiled UCQ rewriting is a
non-recursive relational query, so its answer set can be *maintained*
under single-tuple inserts and deletes instead of recomputed — semi-naive
pinned deltas for inserts, DRed-style over-delete + rederive for deletes,
support counts across disjuncts, and an unconditional fallback to full
re-execution whenever the change log cannot vouch for the delta.

Modules
-------
:mod:`~repro.incremental.relevance`
    Body relation → disjuncts index routing each changed fact.
:mod:`~repro.incremental.view`
    The pre-deletion overlay view used by the delete pass.
:mod:`~repro.incremental.maintain`
    :class:`MaintainedAnswerSet` — the maintenance algorithm itself.
:mod:`~repro.incremental.subscriptions`
    Cursor bookkeeping for the serving tier's subscribe/poll surface.
"""

from .maintain import (
    AnswerDelta,
    MaintainedAnswerSet,
    MaintenanceCounters,
    derives,
    net_changes,
    pinned_answers,
    unify_fact,
)
from .relevance import RelevanceIndex
from .subscriptions import (
    PollResult,
    Subscription,
    SubscriptionPool,
    UnknownSubscriptionError,
)
from .view import OverlayInstance

__all__ = [
    "AnswerDelta",
    "MaintainedAnswerSet",
    "MaintenanceCounters",
    "OverlayInstance",
    "PollResult",
    "RelevanceIndex",
    "Subscription",
    "SubscriptionPool",
    "UnknownSubscriptionError",
    "derives",
    "net_changes",
    "pinned_answers",
    "unify_fact",
]
