"""Delta maintenance of UCQ answer sets over the instance change log.

The paper's pipeline compiles an ontological query *once* into a union of
conjunctive queries; afterwards answering is pure relational evaluation.
That makes standing queries cheap to maintain: UCQs are non-recursive, so
the classic semi-naive / DRed machinery degenerates into two simple
passes per changed fact.

* **Insert.**  Any answer that is new at the current epoch must have a
  derivation using at least one inserted fact.  For each inserted fact and
  each disjunct whose body mentions its relation, we *pin* the fact into
  every body atom it unifies with and evaluate the residual join over the
  current instance (:func:`pinned_answers`).  The union of those pinned
  evaluations is exactly the set of answers gaining a new derivation.

* **Delete.**  Deletion-rewinding is DRed without the recursive rederive
  loop: evaluating the same pinned joins over the *pre-deletion* view
  (:class:`~repro.incremental.view.OverlayInstance` = current ∪ removed)
  over-approximates the answers that lost a derivation; each over-deleted
  tuple is then re-derived against the current instance and kept if any
  derivation survives.

Answers carry **support counts** — the number of disjuncts currently
deriving them — so a tuple deleted from one disjunct does not drop an
answer still derived by another.  A support transition ``0 → >0`` is an
added answer, ``>0 → 0`` a removed one; that transition stream is the
subscription delta surfaced by the serving tier.

When :meth:`RelationalInstance.changes_since` returns ``None`` (the log
was truncated) or the delta outweighs the data, the maintainer falls back
to re-executing every disjunct from scratch — the same policy the SQLite
incremental loader applies to its table snapshots.  Correctness never
depends on the log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..database.evaluator import QueryEvaluator
from ..database.instance import RelationalInstance
from ..logic.atoms import Atom
from ..logic.terms import Term, is_variable
from ..queries.conjunctive_query import ConjunctiveQuery
from ..queries.ucq import UnionOfConjunctiveQueries
from .relevance import RelevanceIndex
from .view import OverlayInstance


def net_changes(
    log: Iterable[tuple[bool, Atom]],
) -> tuple[set[Atom], set[Atom]]:
    """Collapse a change-log slice into net ``(added, removed)`` fact sets.

    A fact removed and re-added (or vice versa) within the slice cancels
    out; the result is exactly "present now but not at the base epoch"
    and "present at the base epoch but not now".
    """
    added: set[Atom] = set()
    removed: set[Atom] = set()
    for was_added, fact in log:
        if was_added:
            if fact in removed:
                removed.discard(fact)
            else:
                added.add(fact)
        else:
            if fact in added:
                added.discard(fact)
            else:
                removed.add(fact)
    return added, removed


def unify_fact(atom: Atom, fact: Atom) -> dict[Term, Term] | None:
    """Most general substitution mapping *atom* onto the ground *fact*.

    Returns ``None`` when they do not unify (constant mismatch, or one
    variable would need two distinct values).
    """
    if atom.predicate != fact.predicate:
        return None
    substitution: dict[Term, Term] = {}
    for term, value in zip(atom.terms, fact.terms):
        if is_variable(term):
            bound = substitution.get(term)
            if bound is None:
                substitution[term] = value
            elif bound != value:
                return None
        elif term != value:
            return None
    return substitution


def pinned_answers(
    body: Sequence[Atom],
    answer_terms: Sequence[Term],
    fact: Atom,
    view,
) -> frozenset[tuple]:
    """Answers of one disjunct that have a derivation mapping a body atom to *fact*.

    For every body atom unifiable with *fact*, the unifier is applied to
    the whole body and the residual join evaluated over *view* (any object
    with ``relation``/``matching``).  The union over the pinning choices is
    the complete set of answers with at least one derivation through the
    fact — the delta rule of semi-naive evaluation, specialised to a
    single changed tuple.
    """
    evaluator = QueryEvaluator(view)
    answers: set[tuple] = set()
    for atom in body:
        substitution = unify_fact(atom, fact)
        if substitution is None:
            continue
        pinned_body = [a.apply(substitution) for a in body]
        pinned_answer_terms = tuple(
            substitution.get(term, term) if is_variable(term) else term
            for term in answer_terms
        )
        answers |= evaluator.answers_for_order(
            evaluator.join_order(pinned_body), pinned_answer_terms
        )
    return frozenset(answers)


def derives(
    body: Sequence[Atom],
    answer_terms: Sequence[Term],
    answer: tuple,
    view,
) -> bool:
    """``True`` iff the disjunct still derives *answer* over *view*.

    Binds the answer terms to the tuple's values and checks satisfiability
    of the residual Boolean query (with early exit).  This is the rederive
    step of DRed, trivial here because UCQs are non-recursive.
    """
    substitution: dict[Term, Term] = {}
    for term, value in zip(answer_terms, answer):
        if is_variable(term):
            bound = substitution.get(term)
            if bound is None:
                substitution[term] = value
            elif bound != value:
                return False
        elif term != value:
            return False
    bound_body = tuple(atom.apply(substitution) for atom in body)
    return QueryEvaluator(view).entails(ConjunctiveQuery(bound_body, ()))


@dataclass(frozen=True)
class AnswerDelta:
    """The answer-set delta produced by one :meth:`MaintainedAnswerSet.refresh`.

    ``mode`` records how the refresh was computed: ``"full"`` (initial
    computation or fallback re-execution), ``"incremental"`` (change-log
    replay) or ``"noop"`` (epoch unchanged).  Regardless of mode, *added*
    and *removed* describe the combined answer set's transition since the
    previous refresh.
    """

    epoch: int
    added: frozenset[tuple]
    removed: frozenset[tuple]
    mode: str

    @property
    def empty(self) -> bool:
        """``True`` iff the answer set did not change."""
        return not self.added and not self.removed


@dataclass
class MaintenanceCounters:
    """Observability counters of one maintained answer set."""

    full_refreshes: int = 0
    incremental_refreshes: int = 0
    noop_refreshes: int = 0
    truncation_fallbacks: int = 0
    oversize_fallbacks: int = 0
    facts_applied: int = 0
    disjuncts_reevaluated: int = 0
    disjuncts_skipped: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(vars(self))


class MaintainedAnswerSet:
    """A UCQ answer set kept current against a mutating instance.

    Owns per-disjunct answer sets plus the combined support counts, and
    exposes one operation — :meth:`refresh` — that brings the state up to
    the instance's current epoch and reports the combined answer delta.
    The optional *plan* is used for full (re-)executions so they run on
    the prepared backend's per-disjunct path
    (:meth:`repro.backends.base.ExecutionPlan.execute_disjunct`);
    incremental steps always evaluate pinned residual joins directly over
    the instance, which is the source of truth for every backend.
    """

    def __init__(
        self,
        ucq: UnionOfConjunctiveQueries | Iterable[ConjunctiveQuery],
        plan=None,
    ) -> None:
        queries = tuple(ucq)
        self._disjuncts: tuple[tuple[tuple[Atom, ...], tuple[Term, ...]], ...] = tuple(
            (query.body, query.answer_terms) for query in queries
        )
        self._queries = queries
        self._relevance = RelevanceIndex(queries)
        self._plan = plan
        self._per_disjunct: list[set[tuple]] = [set() for _ in queries]
        self._support: dict[tuple, int] = {}
        self._epoch: int | None = None
        # Strong reference, for identity only: the owning PreparedQuery's
        # system keeps the database alive anyway, and an `is` check can
        # never confuse two instances the way a recycled id() could.
        self._instance: RelationalInstance | None = None
        self.counters = MaintenanceCounters()

    # -- inspection ---------------------------------------------------------------

    @property
    def relevance(self) -> RelevanceIndex:
        """The body-relation → disjuncts index driving the delta routing."""
        return self._relevance

    @property
    def epoch(self) -> int | None:
        """The instance epoch of the last refresh (``None`` before the first)."""
        return self._epoch

    @property
    def tuples(self) -> frozenset[tuple]:
        """The combined (support > 0) answer set as of the last refresh."""
        return frozenset(self._support)

    def support(self, answer: tuple) -> int:
        """Number of disjuncts currently deriving *answer*."""
        return self._support.get(answer, 0)

    def describe(self) -> dict:
        """Counters + sizes, for stats endpoints."""
        return {
            "answers": len(self._support),
            "disjuncts": len(self._disjuncts),
            "epoch": self._epoch,
            **self.counters.as_dict(),
        }

    # -- refresh ---------------------------------------------------------------

    def refresh(self, database: RelationalInstance) -> AnswerDelta:
        """Bring the answer set up to *database*'s epoch; report the delta."""
        if self._epoch is None or self._instance is not database:
            return self._full_refresh(database)
        if database.epoch == self._epoch:
            self.counters.noop_refreshes += 1
            return AnswerDelta(self._epoch, frozenset(), frozenset(), "noop")
        log = database.changes_since(self._epoch)
        if log is None:
            # Log truncated: treat as "everything may have changed", never
            # as an error — the same contract the SQLite loader follows.
            self.counters.truncation_fallbacks += 1
            return self._full_refresh(database)
        if len(log) > len(database):
            self.counters.oversize_fallbacks += 1
            return self._full_refresh(database)
        return self._incremental_refresh(database, log)

    def _execute_disjunct(
        self, database: RelationalInstance, index: int
    ) -> frozenset[tuple]:
        if self._plan is not None and getattr(self._plan, "disjunct_count", None):
            return self._plan.execute_disjunct(database, index)
        body, answer_terms = self._disjuncts[index]
        evaluator = QueryEvaluator(database)
        return evaluator.answers_for_order(evaluator.join_order(body), answer_terms)

    def _full_refresh(self, database: RelationalInstance) -> AnswerDelta:
        before = frozenset(self._support)
        self._per_disjunct = [
            set(self._execute_disjunct(database, index))
            for index in range(len(self._disjuncts))
        ]
        support: dict[tuple, int] = {}
        for answers in self._per_disjunct:
            for answer in answers:
                support[answer] = support.get(answer, 0) + 1
        self._support = support
        self._epoch = database.epoch
        self._instance = database
        self.counters.full_refreshes += 1
        self.counters.disjuncts_reevaluated += len(self._disjuncts)
        after = frozenset(support)
        return AnswerDelta(database.epoch, after - before, before - after, "full")

    def _add(self, index: int, answer: tuple) -> None:
        answers = self._per_disjunct[index]
        if answer not in answers:
            answers.add(answer)
            self._support[answer] = self._support.get(answer, 0) + 1

    def _discard(self, index: int, answer: tuple) -> None:
        answers = self._per_disjunct[index]
        if answer in answers:
            answers.discard(answer)
            remaining = self._support[answer] - 1
            if remaining:
                self._support[answer] = remaining
            else:
                del self._support[answer]

    def _incremental_refresh(
        self, database: RelationalInstance, log: list[tuple[bool, Atom]]
    ) -> AnswerDelta:
        added, removed = net_changes(log)
        before = frozenset(self._support)
        affected = self._relevance.affected(
            {fact.predicate for fact in added} | {fact.predicate for fact in removed}
        )
        self.counters.incremental_refreshes += 1
        self.counters.facts_applied += len(added) + len(removed)
        self.counters.disjuncts_reevaluated += len(affected)
        self.counters.disjuncts_skipped += len(self._disjuncts) - len(affected)
        base_view = OverlayInstance(database, removed) if removed else None
        for index in affected:
            body, answer_terms = self._disjuncts[index]
            body_predicates = {atom.predicate for atom in body}
            relevant_removed = [f for f in removed if f.predicate in body_predicates]
            if relevant_removed:
                # DRed over-delete: every answer with some derivation
                # through a removed fact, computed over the pre-deletion
                # view so joins against other removed facts still count.
                overdeleted: set[tuple] = set()
                for fact in relevant_removed:
                    overdeleted |= pinned_answers(body, answer_terms, fact, base_view)
                lost = overdeleted & self._per_disjunct[index]
                for answer in lost:
                    self._discard(index, answer)
                    if derives(body, answer_terms, answer, database):
                        self._add(index, answer)
            for fact in added:
                if fact.predicate not in body_predicates:
                    continue
                for answer in pinned_answers(body, answer_terms, fact, database):
                    self._add(index, answer)
        self._epoch = database.epoch
        after = frozenset(self._support)
        return AnswerDelta(database.epoch, after - before, before - after, "incremental")
