"""A read-only overlay view used by the deletion half of maintenance.

DRed-style deletion must over-approximate the answers lost to a batch of
removed facts by evaluating pinned disjuncts over the *pre-deletion* state
— the current database plus the facts that just disappeared.  Materialising
that state would copy the instance; instead :class:`OverlayInstance`
presents ``base ∪ extra`` through exactly the two methods the query
evaluator consumes (:meth:`relation` and :meth:`matching`), delegating to
the live instance's indexes and scanning the (small) overlay linearly.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from ..logic.atoms import Atom, Predicate
from ..logic.terms import Term


class OverlayInstance:
    """``base ∪ extra`` exposed through the :class:`QueryEvaluator` protocol.

    Only :meth:`relation`, :meth:`matching` and the planner statistics
    (:meth:`relation_size`, :meth:`position_cardinalities`) are provided —
    they are the whole surface
    :class:`repro.database.evaluator.QueryEvaluator` touches
    (``join_order`` estimates selectivities, ``_search`` probes indexes).
    The overlay is expected to be small (a net deletion batch), so
    membership filtering over it is a linear scan per probe and the
    statistics are recomputed per call rather than epoch-cached.
    """

    def __init__(self, base, extra: Iterable[Atom]) -> None:
        self._base = base
        self._extra: dict[Predicate, tuple[Atom, ...]] = {}
        grouped: dict[Predicate, list[Atom]] = defaultdict(list)
        for fact in extra:
            grouped[fact.predicate].append(fact)
        self._extra = {predicate: tuple(facts) for predicate, facts in grouped.items()}

    def relation(self, predicate: Predicate) -> frozenset[Atom]:
        """All atoms of *predicate* in the overlaid view."""
        extra = self._extra.get(predicate)
        base = self._base.relation(predicate)
        if not extra:
            return base
        return base | frozenset(extra)

    def relation_size(self, predicate: Predicate) -> int:
        """Number of atoms of *predicate* in the overlaid view."""
        return len(self.relation(predicate))

    def position_cardinalities(self, predicate: Predicate) -> tuple[int, ...]:
        """Distinct values at each position of *predicate*, overlay included."""
        facts = self.relation(predicate)
        return tuple(
            len({fact.terms[position] for fact in facts})
            for position in range(predicate.arity)
        )

    def matching(self, predicate: Predicate, bound: dict[int, Term]) -> frozenset[Atom]:
        """Atoms of *predicate* agreeing with the bound (1-based) positions."""
        result = self._base.matching(predicate, bound)
        extra = self._extra.get(predicate)
        if not extra:
            return result
        matched = [
            fact
            for fact in extra
            if all(fact[position] == value for position, value in bound.items())
        ]
        if not matched:
            return result
        return result | frozenset(matched)
