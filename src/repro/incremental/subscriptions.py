"""Standing-query subscriptions over maintained answer sets.

A subscription is a cursor onto one ontological query's answer set: the
subscriber receives the full set once (at subscribe time) and from then on
only the *answer delta* — rows added and rows removed — accumulated since
its previous poll.  The pool stores, per cursor, the original query and
the snapshot last delivered; polling re-resolves the query against the
owning tenant's (possibly updated) :class:`~repro.api.OBDASystem`, asks
the prepared handle's :class:`~repro.incremental.maintain.MaintainedAnswerSet`
to refresh, and diffs against the snapshot.  Keeping the *query* rather
than a prepared handle means subscriptions survive live theory updates:
the next poll simply prepares against the new artifacts, the maintainer
performs a full refresh, and the subscriber receives the (byte-identical
to re-execution) delta between the old and new rewritings' answers.

Thread model: mutating operations run on the owning tenant's executor
thread, but the serving front end reads cursors from the event loop, so
the pool guards its table with a lock of its own.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..queries.conjunctive_query import ConjunctiveQuery


class UnknownSubscriptionError(KeyError):
    """Raised when a cursor does not name a live subscription."""


@dataclass
class Subscription:
    """One cursor: the subscribed query plus the snapshot last delivered."""

    cursor: str
    query: ConjunctiveQuery
    delivered: frozenset = frozenset()
    epoch: int | None = None
    polls: int = 0


@dataclass(frozen=True)
class PollResult:
    """What one poll of a subscription delivers."""

    cursor: str
    epoch: int
    added: frozenset
    removed: frozenset
    #: How the underlying maintainer refreshed: ``"incremental"``,
    #: ``"full"`` or ``"noop"``.
    mode: str
    answers: int
    polls: int


class SubscriptionPool:
    """The per-tenant table of live subscriptions."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._subscriptions: dict[str, Subscription] = {}
        self._next = 1
        self._total_polls = 0

    def subscribe(self, query: ConjunctiveQuery) -> Subscription:
        """Register *query*; returns the new (empty-snapshot) subscription."""
        with self._lock:
            cursor = f"sub-{self._next:06d}"
            self._next += 1
            subscription = Subscription(cursor=cursor, query=query)
            self._subscriptions[cursor] = subscription
            return subscription

    def get(self, cursor: str) -> Subscription:
        """The live subscription named by *cursor* (raises if unknown)."""
        with self._lock:
            try:
                return self._subscriptions[cursor]
            except KeyError:
                raise UnknownSubscriptionError(cursor) from None

    def query_for(self, cursor: str) -> ConjunctiveQuery:
        """The query *cursor* subscribes to (raises if unknown)."""
        return self.get(cursor).query

    def unsubscribe(self, cursor: str) -> None:
        """Drop the subscription (raises if unknown)."""
        with self._lock:
            if self._subscriptions.pop(cursor, None) is None:
                raise UnknownSubscriptionError(cursor)

    def deliver(
        self, cursor: str, current: frozenset, epoch: int, mode: str
    ) -> PollResult:
        """Record a delivery of *current* and return the per-cursor delta."""
        with self._lock:
            try:
                subscription = self._subscriptions[cursor]
            except KeyError:
                raise UnknownSubscriptionError(cursor) from None
            added = current - subscription.delivered
            removed = subscription.delivered - current
            subscription.delivered = current
            subscription.epoch = epoch
            subscription.polls += 1
            self._total_polls += 1
            return PollResult(
                cursor=cursor,
                epoch=epoch,
                added=added,
                removed=removed,
                mode=mode,
                answers=len(current),
                polls=subscription.polls,
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._subscriptions)

    def describe(self) -> dict:
        """Sizes and counters, for the tenant's stats block."""
        with self._lock:
            return {
                "active": len(self._subscriptions),
                "created": self._next - 1,
                "polls": self._total_polls,
            }
