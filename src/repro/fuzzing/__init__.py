"""Seeded Datalog± workload generation and differential fuzzing.

The paper's evaluation covers five fixed ontologies; this package sweeps
the *fragments* its Theorem 7 covers — linear, sticky and sticky-join —
across size, arity and fan-out axes, and holds the whole stack to three
oracles per generated ``(theory, query, instance)`` triple:

1. **chase agreement** — rewrite-then-evaluate must return exactly the
   certain answers the (depth-bounded) chase computes;
2. **backend agreement** — every :class:`~repro.backends.base.
   ExecutionBackend` must return the same answer set;
3. **determinism** — every :class:`~repro.scheduling.SchedulingStrategy`
   and a persistent-store round-trip must produce byte-identical
   rewritings.

Entry points: :class:`~repro.fuzzing.generator.WorkloadGenerator` (seeded
triples), :class:`~repro.fuzzing.oracle.DifferentialOracle` (the three
checks), :func:`~repro.fuzzing.shrink.shrink_case` (failure minimisation)
and ``repro fuzz`` (the CLI driver; see ``docs/FUZZING.md``).
"""

from .generator import (
    FRAGMENTS,
    GeneratedCase,
    GenerationError,
    GeneratorConfig,
    WorkloadGenerator,
    registry_cases,
    scaled_registry_instance,
)
from .oracle import (
    DifferentialOracle,
    OracleFailure,
    OracleVerdict,
    answer_diff,
    format_answer_diff,
)
from .shrink import load_repro, shrink_case, write_repro

__all__ = [
    "DifferentialOracle",
    "FRAGMENTS",
    "GeneratedCase",
    "GenerationError",
    "GeneratorConfig",
    "OracleFailure",
    "OracleVerdict",
    "WorkloadGenerator",
    "answer_diff",
    "format_answer_diff",
    "load_repro",
    "registry_cases",
    "scaled_registry_instance",
    "shrink_case",
    "write_repro",
]
