"""The differential harness: three oracles per generated triple.

For a triple ``(theory, query, instance)`` the :class:`DifferentialOracle`
asserts:

1. **chase agreement** — rewrite-then-evaluate returns exactly the
   certain answers the chase computes.  The chase is depth-bounded by the
   number of frontier generations ``D`` the rewriting itself took: a CQ
   produced by ``k ≤ D`` backward steps maps into the database, so the
   forward (oblivious) chase reproduces its image within ``k`` levels —
   depth ``D`` therefore captures every rewrite answer, while *any*
   truncated chase only derives certain answers (soundness).  Equality at
   depth ``D`` is exact; only when the atom cap cuts the chase short does
   the check weaken to ``chase ⊆ rewrite``.
2. **backend agreement** — every :class:`~repro.backends.base.
   ExecutionBackend` returns the same answer set for the rewriting.
3. **determinism** — every :class:`~repro.scheduling.SchedulingStrategy`,
   plus a persistent-store round-trip, produces a byte-identical
   rewriting (canonical JSON of the serialised result).

Fault injection: a ``rewriting_mutator`` hook transforms every computed
rewriting *uniformly* (so the determinism oracle stays quiet) before the
answers are computed — a planted bug in the rewriting is then caught by
the chase oracle, which is how ``tests/fuzzing/test_shrink.py`` exercises
the shrinker end to end.
"""

from __future__ import annotations

import dataclasses
import json
import random
import tempfile
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..backends import create_backend
from ..cache.fingerprint import theory_fingerprint
from ..cache.serialization import UnserializableQueryError, result_to_json
from ..cache.store import RewritingStore
from ..chase.chase import chase
from ..core.rewriter import RewritingBudgetExceeded, RewritingResult, TGDRewriter
from ..database.evaluator import evaluate_ucq
from ..database.instance import RelationalInstance
from ..incremental import MaintainedAnswerSet
from ..logic.atoms import Atom
from ..logic.homomorphism import homomorphisms
from ..logic.terms import Constant, is_constant
from ..queries.conjunctive_query import ConjunctiveQuery
from ..queries.ucq import UnionOfConjunctiveQueries
from ..scheduling import SequentialStrategy, create_strategy
from .generator import GeneratedCase

#: Strategies the determinism oracle compares by default.  ``chunked`` is
#: correct too but spawns a process pool per case; opt in via the
#: constructor (or ``repro fuzz --strategies``) when the cost is wanted.
#: ``auto`` rides along so the tuner's per-generation choices are fuzzed
#: against the sequential baseline on every case.
DEFAULT_STRATEGIES = ("sequential", "threaded", "auto")

#: Backends the agreement oracle compares by default.
DEFAULT_BACKENDS = ("memory", "sqlite")


@dataclass(frozen=True)
class OracleFailure:
    """One oracle's disagreement on one case."""

    oracle: str  # "chase" | "backends" | "determinism" | "maintenance"
    detail: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"[{self.oracle}] {self.detail}"


@dataclass
class OracleVerdict:
    """Outcome of running all three oracles on one case."""

    case: GeneratedCase
    failures: list[OracleFailure] = field(default_factory=list)
    skipped: str | None = None
    generations: int = 0
    rewriting_size: int = 0
    rewrite_answers: int = 0

    @property
    def ok(self) -> bool:
        """``True`` iff no oracle disagreed (a skipped case is not a failure)."""
        return not self.failures

    def summary(self) -> str:
        """One line for progress output."""
        if self.skipped is not None:
            return f"SKIP ({self.skipped}) {self.case.describe()}"
        status = "ok" if self.ok else "FAIL " + "; ".join(map(str, self.failures))
        return (
            f"{status} — {self.case.describe()}, {self.rewriting_size} CQs in "
            f"{self.generations} generations, {self.rewrite_answers} answers"
        )


def answer_diff(
    left: frozenset[tuple], right: frozenset[tuple]
) -> tuple[list[tuple], list[tuple]]:
    """The minimal differing tuple sets: ``(only in left, only in right)``.

    Both sides are sorted (by ``repr``, which is total over constant
    tuples) so diff output is deterministic.
    """
    only_left = sorted(left - right, key=repr)
    only_right = sorted(right - left, key=repr)
    return only_left, only_right


def format_answer_diff(
    left_name: str,
    left: frozenset[tuple],
    right_name: str,
    right: frozenset[tuple],
    limit: int = 5,
) -> str:
    """Human-readable minimal diff of two answer sets.

    Shows only the differing tuples (up to *limit* per side), never the
    full answer dumps — the point of the helper is that a disagreement on
    a 10⁴-tuple answer set prints the three tuples that differ.
    """
    only_left, only_right = answer_diff(left, right)
    if not only_left and not only_right:
        return f"{left_name} and {right_name} agree ({len(left)} answers)"
    parts = []
    for name, missing in ((left_name, only_left), (right_name, only_right)):
        if not missing:
            continue
        shown = ", ".join(repr(t) for t in missing[:limit])
        suffix = "" if len(missing) <= limit else f", … ({len(missing)} total)"
        parts.append(f"only in {name}: {shown}{suffix}")
    return "; ".join(parts)


class GenerationCountingStrategy(SequentialStrategy):
    """A sequential strategy that counts the frontier generations it ran.

    The count is the depth bound the chase oracle needs; measuring it
    through a strategy keeps the kernel untouched (the same pattern the
    checkpoint tests use to kill a run mid-flight).
    """

    def __init__(self) -> None:
        self.generations = 0

    def expand_generation(self, engine, batch):
        self.generations += 1
        return super().expand_generation(engine, batch)


def _canonical_bytes(result: RewritingResult) -> str:
    """The byte-identity channel: canonical JSON of the serialised result."""
    return json.dumps(result_to_json(result), sort_keys=True)


def _chase_answers(query: ConjunctiveQuery, atoms) -> frozenset[tuple]:
    """Evaluate *query* over a chase instance, keeping all-constant tuples."""
    answers: set[tuple] = set()
    for hom in homomorphisms(query.body, atoms):
        answer = tuple(hom.apply_term(term) for term in query.answer_terms)
        if all(is_constant(value) for value in answer):
            answers.add(answer)
    return frozenset(answers)


class DifferentialOracle:
    """Runs the three oracles of the fuzzing gate on generated cases.

    Parameters
    ----------
    strategies:
        Scheduling strategies the determinism oracle compares (the first
        one's output is the reference).
    backends:
        Execution backends the agreement oracle compares (the first one's
        answers are the "rewrite answers" the chase oracle checks).
    max_queries:
        Rewriting budget; exceeding it *skips* the case (FO-rewritable
        fragments always terminate, but a generated theory can still be
        expensive — a skip is reported, never silently dropped).
    max_chase_atoms:
        Atom cap on the chase oracle.  When the cap fires before the
        depth bound, the chase answers are only a sound under-
        approximation and the oracle weakens to a subset check.
    rewriting_mutator:
        Optional fault-injection hook ``UCQ -> UCQ`` applied uniformly to
        every computed rewriting (see the module docstring).
    mutation_steps:
        Length of the seeded insert/delete mutation sequence the
        incremental-maintenance oracle drives per case (0 disables it).
        At every step the delta-maintained answer set — once over a
        default change log and once over a 2-entry log that forces the
        truncation fallback — must be byte-identical to full
        re-execution of the same rewriting.
    """

    def __init__(
        self,
        strategies: Sequence[str] = DEFAULT_STRATEGIES,
        backends: Sequence[str] = DEFAULT_BACKENDS,
        max_queries: int = 50_000,
        max_chase_atoms: int = 20_000,
        rewriting_mutator: Callable[
            [UnionOfConjunctiveQueries], UnionOfConjunctiveQueries
        ]
        | None = None,
        mutation_steps: int = 0,
    ) -> None:
        if not strategies:
            raise ValueError("the determinism oracle needs at least one strategy")
        if not backends:
            raise ValueError("the agreement oracle needs at least one backend")
        self._strategies = tuple(strategies)
        self._backends = tuple(backends)
        self._max_queries = max_queries
        self._max_chase_atoms = max_chase_atoms
        self._mutator = rewriting_mutator
        self._mutation_steps = mutation_steps

    @property
    def strategies(self) -> tuple[str, ...]:
        """Strategy names the determinism oracle compares."""
        return self._strategies

    @property
    def backends(self) -> tuple[str, ...]:
        """Backend names the agreement oracle compares."""
        return self._backends

    # -- the three oracles -------------------------------------------------

    def check(self, case: GeneratedCase) -> OracleVerdict:
        """Run all three oracles on one case."""
        verdict = OracleVerdict(case=case)
        rules = list(case.theory.tgds)

        counting = GenerationCountingStrategy()
        try:
            reference = self._rewrite(rules, case.query, counting)
        except RewritingBudgetExceeded:
            verdict.skipped = f"rewriting budget ({self._max_queries}) exceeded"
            return verdict
        verdict.generations = counting.generations
        verdict.rewriting_size = len(reference.ucq)

        backend_answers = self._backend_oracle(verdict, reference.ucq, case)
        if backend_answers is not None:
            verdict.rewrite_answers = len(backend_answers)
            self._chase_oracle(verdict, backend_answers, case)
        self._determinism_oracle(verdict, reference, rules, case)
        if self._mutation_steps > 0:
            self._maintenance_oracle(verdict, reference.ucq, case)
        return verdict

    def check_many(self, cases: Sequence[GeneratedCase]) -> list[OracleVerdict]:
        """Run the oracles on every case, in order."""
        return [self.check(case) for case in cases]

    def failure(self, case: GeneratedCase) -> OracleFailure | None:
        """The first failure of *case*, or ``None`` — the shrinker's predicate."""
        verdict = self.check(case)
        return verdict.failures[0] if verdict.failures else None

    # -- internals ---------------------------------------------------------

    def _rewrite(self, rules, query, strategy) -> RewritingResult:
        engine = TGDRewriter(rules, max_queries=self._max_queries)
        result = engine.rewrite(query, strategy=strategy)
        if self._mutator is not None:
            result = dataclasses.replace(result, ucq=self._mutator(result.ucq))
        return result

    def _backend_oracle(
        self,
        verdict: OracleVerdict,
        ucq: UnionOfConjunctiveQueries,
        case: GeneratedCase,
    ) -> frozenset[tuple] | None:
        """All backends agree; returns the first backend's answers."""
        answers: list[tuple[str, frozenset[tuple]]] = []
        for name in self._backends:
            backend = create_backend(name)
            try:
                plan = backend.prepare(ucq)
                answers.append((name, plan.execute(case.instance)))
            finally:
                backend.close()
        reference_name, reference = answers[0]
        for name, other in answers[1:]:
            if other != reference:
                verdict.failures.append(
                    OracleFailure(
                        "backends",
                        format_answer_diff(reference_name, reference, name, other),
                    )
                )
        return reference

    def _chase_oracle(
        self,
        verdict: OracleVerdict,
        rewrite_answers: frozenset[tuple],
        case: GeneratedCase,
    ) -> None:
        """Rewrite-then-evaluate equals the depth-D oblivious chase."""
        depth = max(1, verdict.generations)
        result = chase(
            case.instance.facts,
            case.theory.tgds,
            variant="oblivious",
            max_depth=depth,
            max_atoms=self._max_chase_atoms,
        )
        chase_answers = _chase_answers(case.query, result.atoms)
        atom_capped = (
            not result.exhausted and len(result.atoms) >= self._max_chase_atoms
        )
        if atom_capped:
            # Truncated-by-atoms chase only under-approximates: soundness
            # (chase ⊆ rewrite) is all that can be checked.
            if not chase_answers <= rewrite_answers:
                verdict.failures.append(
                    OracleFailure(
                        "chase",
                        "rewriting misses certain answers: "
                        + format_answer_diff(
                            "chase", chase_answers, "rewriting", rewrite_answers
                        ),
                    )
                )
            return
        if chase_answers != rewrite_answers:
            verdict.failures.append(
                OracleFailure(
                    "chase",
                    format_answer_diff(
                        "rewriting", rewrite_answers, "chase", chase_answers
                    )
                    + f" (chase depth {depth})",
                )
            )

    def _determinism_oracle(
        self,
        verdict: OracleVerdict,
        reference: RewritingResult,
        rules,
        case: GeneratedCase,
    ) -> None:
        """Every strategy and a store round-trip reproduce the same bytes."""
        try:
            expected = _canonical_bytes(reference)
        except UnserializableQueryError:
            verdict.failures.append(
                OracleFailure(
                    "determinism", "generated rewriting is not serialisable"
                )
            )
            return
        for name in self._strategies:
            strategy = create_strategy(name)
            try:
                result = self._rewrite(rules, case.query, strategy)
            finally:
                strategy.close()
            produced = _canonical_bytes(result)
            if produced != expected:
                verdict.failures.append(
                    OracleFailure(
                        "determinism",
                        f"strategy {name!r} produced a different rewriting "
                        f"({len(result.ucq)} CQs vs {len(reference.ucq)})",
                    )
                )
        self._store_round_trip(verdict, reference, rules, case, expected)

    def _maintenance_oracle(
        self,
        verdict: OracleVerdict,
        ucq: UnionOfConjunctiveQueries,
        case: GeneratedCase,
    ) -> None:
        """Delta-maintained answers == full re-execution, per mutation step.

        Drives a seeded interleaved insert/delete sequence over a copy of
        the case's instance.  Two maintainers track the same rewriting:
        one over a default change log (exercising the semi-naive /
        DRed incremental path) and one whose instance keeps *no* log
        entries (so every genuine mutation exercises the truncation
        fallback).  After every step both must be byte-identical — via
        the serving tier's ``encode_answers`` — to a from-scratch
        evaluation, and the reported delta must compose:
        previous ∪ added − removed = current.
        """
        from ..serving.app import encode_answers

        rng = random.Random(case.seed * 1_000_003 + self._mutation_steps)
        tracked = RelationalInstance(facts=case.instance.facts)
        truncated = RelationalInstance(
            facts=case.instance.facts, max_tracked_changes=0
        )
        maintainers = (
            ("tracked", tracked, MaintainedAnswerSet(ucq)),
            ("truncated-log", truncated, MaintainedAnswerSet(ucq)),
        )
        predicates = sorted(
            {fact.predicate for fact in case.instance.facts}
            | {atom.predicate for query in ucq for atom in query.body},
            key=lambda p: (p.name, p.arity),
        )
        constants = sorted(
            case.instance.constants(), key=lambda c: repr(c.value)
        ) or [Constant("m0")]
        constants = constants + [Constant(f"m{i}") for i in range(3)]
        for name, instance, maintainer in maintainers:
            maintainer.refresh(instance)
        for step in range(self._mutation_steps):
            facts = sorted(tracked.facts, key=repr)
            if facts and rng.random() < 0.4:
                mutation = ("remove", rng.choice(facts))
            else:
                predicate = rng.choice(predicates)
                mutation = (
                    "add",
                    Atom(
                        predicate,
                        tuple(
                            rng.choice(constants) for _ in range(predicate.arity)
                        ),
                    ),
                )
            for name, instance, maintainer in maintainers:
                kind, fact = mutation
                if kind == "add":
                    instance.add(fact)
                else:
                    instance.remove(fact)
                previous = maintainer.tuples
                delta = maintainer.refresh(instance)
                maintained = maintainer.tuples
                if (previous | delta.added) - delta.removed != maintained:
                    verdict.failures.append(
                        OracleFailure(
                            "maintenance",
                            f"step {step} ({name}): reported delta does not "
                            f"compose to the maintained set (mode {delta.mode})",
                        )
                    )
                    return
                expected = evaluate_ucq(ucq, instance)
                if json.dumps(encode_answers(maintained)) != json.dumps(
                    encode_answers(expected)
                ):
                    verdict.failures.append(
                        OracleFailure(
                            "maintenance",
                            f"step {step} ({name}, {kind} {fact}, mode "
                            f"{delta.mode}): "
                            + format_answer_diff(
                                "maintained", maintained, "re-executed", expected
                            ),
                        )
                    )
                    return
        counters = maintainers[1][2].counters
        if counters.truncation_fallbacks == 0 and self._mutation_steps > 3:
            verdict.failures.append(
                OracleFailure(
                    "maintenance",
                    "the zero-entry change log never forced a truncation "
                    "fallback — the fallback path went unexercised",
                )
            )

    def _store_round_trip(
        self,
        verdict: OracleVerdict,
        reference: RewritingResult,
        rules,
        case: GeneratedCase,
        expected: str,
    ) -> None:
        fingerprint = theory_fingerprint(rules)
        with tempfile.TemporaryDirectory(prefix="repro-fuzz-store-") as directory:
            store = RewritingStore(directory)
            if not store.put(case.query, fingerprint, reference):
                verdict.failures.append(
                    OracleFailure("determinism", "store refused a fresh rewriting")
                )
                return
            # A fresh store instance reloads from disk: the round trip
            # actually exercises the serialisation, not the in-memory index.
            reloaded = RewritingStore(directory).get(
                case.query, fingerprint, tuple(rules)
            )
        if reloaded is None:
            verdict.failures.append(
                OracleFailure("determinism", "store lost a just-written rewriting")
            )
            return
        if _canonical_bytes(reloaded) != expected:
            verdict.failures.append(
                OracleFailure(
                    "determinism", "store round-trip changed the rewriting bytes"
                )
            )
