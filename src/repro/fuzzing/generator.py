"""Seeded synthetic Datalog± workload generation.

A :class:`WorkloadGenerator` emits random-but-reproducible ``(theory,
query, instance)`` triples parameterised by fragment (linear / sticky /
sticky-join — the FO-rewritable classes of Theorem 7), predicate count,
arity, rule fan-out, existential density and ABox scale.  Every emitted
theory is *validated* against :mod:`repro.dependencies.classifiers`: a
triple labelled ``linear`` is accepted by :func:`~repro.dependencies.
classifiers.is_linear`, and so on — the generator never hands the oracles
a theory outside the fragment it claims.

Determinism is a hard contract, in two layers:

* the same ``(seed, config)`` always yields the same triple — every
  random draw goes through one :class:`random.Random` stream, and
* the emitted rule order, variable names and fact order are independent
  of ``PYTHONHASHSEED``: the generator only ever iterates lists it built
  itself (never sets or dicts), so re-running under a different hash
  seed prints byte-identical theories (pinned by
  ``tests/fuzzing/test_hashseed_determinism.py``).

Rules are generated directly in the normal form the rewriting engine
assumes (single head atom, at most one existential variable occurring
once), so normalisation never rewrites them behind the classifiers' back.

Fragment strategies:

* ``linear`` — one body atom per rule; repeated body variables and
  arbitrary recursion allowed (membership is purely syntactic, and the
  rewriting of a linear set always terminates: bodies never grow, so the
  variant-interned query space is finite);
* ``sticky`` — up to ``fan_out`` body atoms; join variables are steered
  into the head (the marking procedure then leaves them unmarked) and
  every candidate rule is accepted only if the *whole set so far* stays
  sticky — stickiness is a property of the set, not of a rule, so an
  incremental check is the only sound filter;
* ``sticky-join`` — candidates alternate between the linear and sticky
  shapes and are accepted against :func:`~repro.dependencies.classifiers.
  is_sticky_join` (the paper's sound approximation ``linear ∨ sticky``),
  which exercises both branches of that recogniser.

The non-linear fragments are additionally *predicate-stratified*: every
rule's head predicate sits strictly above all its body predicates in a
fixed order.  Backward rewriting then strictly descends that order each
time a multi-atom body is substituted in, so query bodies stay bounded
and the rewriting terminates fast.  Without this, a recursive sticky set
can grow query bodies without bound (FO-rewritability of the *answers*
does not make the naive rewriting finite) — recursion coverage comes
from the linear fragment and the registry ontologies instead.

The module also scales the existing registry ontologies: LUBM-style
10–100× ABoxes for any registered workload via
:func:`scaled_registry_instance` / :func:`registry_cases`, built on
:class:`repro.database.generator.DatabaseGenerator`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Sequence

from ..database.generator import DatabaseGenerator
from ..database.instance import RelationalInstance
from ..dependencies.classifiers import is_linear, is_sticky, is_sticky_join
from ..dependencies.tgd import TGD
from ..dependencies.theory import OntologyTheory
from ..logic.atoms import Atom, Predicate
from ..logic.terms import Constant, Variable
from ..queries.conjunctive_query import ConjunctiveQuery
from ..workloads import get_workload

#: The FO-rewritable fragments the generator can target (Theorem 7).
FRAGMENTS = ("linear", "sticky", "sticky-join")

#: Classifier deciding membership for each fragment label.
FRAGMENT_CLASSIFIERS = {
    "linear": is_linear,
    "sticky": is_sticky,
    "sticky-join": is_sticky_join,
}

#: Candidate-rule attempts before a rule slot is skipped (sticky sets can
#: reject many candidates late in generation; skipping keeps termination).
_MAX_ATTEMPTS_PER_RULE = 25


class GenerationError(RuntimeError):
    """Raised when a generated theory fails its own fragment validation."""


@dataclass(frozen=True)
class GeneratorConfig:
    """The axes of the synthetic workload space.

    Attributes
    ----------
    fragment:
        Target language fragment (``linear`` / ``sticky`` / ``sticky-join``).
    predicates:
        Number of schema predicates.
    max_arity:
        Maximum predicate arity (arities are drawn from ``1..max_arity``).
    rules:
        Number of TGDs to aim for (sticky rejection sampling may emit
        slightly fewer; never more).
    fan_out:
        Maximum body atoms per rule for the non-linear fragments.
    existential_density:
        Probability that a rule's head invents an existential value.
    query_atoms:
        Maximum body atoms of the generated conjunctive query.
    facts_per_relation:
        ABox scale: facts generated per schema predicate.
    domain_size:
        Number of distinct constants in the ABox domain.
    """

    fragment: str = "linear"
    predicates: int = 6
    max_arity: int = 3
    rules: int = 8
    fan_out: int = 2
    existential_density: float = 0.4
    query_atoms: int = 2
    facts_per_relation: int = 12
    domain_size: int = 18

    def __post_init__(self) -> None:
        if self.fragment not in FRAGMENTS:
            raise ValueError(
                f"unknown fragment {self.fragment!r}; choose from {FRAGMENTS}"
            )
        for name in ("predicates", "max_arity", "rules", "fan_out", "query_atoms",
                     "facts_per_relation", "domain_size"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1, got {getattr(self, name)}")
        if not 0.0 <= self.existential_density <= 1.0:
            raise ValueError(
                f"existential_density must be in [0, 1], got {self.existential_density}"
            )
        if self.fragment != "linear" and self.predicates < 2:
            raise ValueError(
                "non-linear fragments need predicates >= 2 "
                "(rules are predicate-stratified)"
            )


@dataclass(frozen=True)
class GeneratedCase:
    """One reproducible fuzzing triple plus its provenance."""

    seed: int
    config: GeneratorConfig
    theory: OntologyTheory
    query: ConjunctiveQuery
    instance: RelationalInstance = field(compare=False)

    @property
    def fragment(self) -> str:
        """The fragment label the theory was generated (and validated) for."""
        return self.config.fragment

    def with_rules(self, rules: Sequence[TGD]) -> "GeneratedCase":
        """A copy with a reduced rule set (used by the shrinker)."""
        theory = OntologyTheory(tgds=list(rules), name=self.theory.name)
        return replace(self, theory=theory)

    def with_query(self, query: ConjunctiveQuery) -> "GeneratedCase":
        """A copy with a reduced query (used by the shrinker)."""
        return replace(self, query=query)

    def with_facts(self, facts: Sequence[Atom]) -> "GeneratedCase":
        """A copy with a reduced fact set (used by the shrinker)."""
        return replace(self, instance=RelationalInstance(facts=list(facts)))

    def describe(self) -> str:
        """One line of provenance for logs and repro files."""
        return (
            f"{self.fragment} seed={self.seed}: {len(self.theory.tgds)} rules, "
            f"{len(self.query.body)} query atoms, {len(self.instance)} facts"
        )


class WorkloadGenerator:
    """Seeded generator of :class:`GeneratedCase` triples.

    One generator covers one point of the config space; :meth:`case`
    derives an independent deterministic sub-stream per case index, so
    ``WorkloadGenerator(seed, config).case(i)`` is a pure function of
    ``(seed, config, i)`` — cases can be regenerated individually (the
    repro files store exactly these coordinates).
    """

    def __init__(self, seed: int = 0, config: GeneratorConfig | None = None) -> None:
        self._seed = seed
        self._config = config if config is not None else GeneratorConfig()

    @property
    def seed(self) -> int:
        """The generator's base seed."""
        return self._seed

    @property
    def config(self) -> GeneratorConfig:
        """The generator's point in the workload space."""
        return self._config

    def case(self, index: int = 0) -> GeneratedCase:
        """The *index*-th triple of this generator's deterministic stream."""
        case_seed = self._case_seed(index)
        rng = random.Random(case_seed)
        schema = self._schema(rng)
        rules = self._rules(rng, schema)
        if not rules:  # pragma: no cover - only reachable with rules=1 + rejection
            rules = [self._linear_rule(rng, schema)]
        self._validate(rules)
        theory = OntologyTheory(
            tgds=rules,
            name=f"fuzz_{self._config.fragment.replace('-', '_')}_{case_seed}",
        )
        query = self._query(rng, schema, rules)
        instance = DatabaseGenerator(
            seed=case_seed ^ 0x5EED, domain_size=self._config.domain_size
        ).populate_for_rules(rules, facts_per_relation=self._config.facts_per_relation)
        return GeneratedCase(
            seed=self._seed, config=self._config, theory=theory,
            query=query, instance=instance,
        )

    def cases(self, count: int):
        """The first *count* triples of the stream."""
        return [self.case(index) for index in range(count)]

    # -- internals ---------------------------------------------------------

    def _case_seed(self, index: int) -> int:
        # Mix the base seed, the case index and the fragment so that two
        # fragments at the same seed do not share a stream.  Pure integer
        # arithmetic: no hash() anywhere (PYTHONHASHSEED independence).
        fragment_tag = FRAGMENTS.index(self._config.fragment) + 1
        return (self._seed * 1_000_003 + index * 7919 + fragment_tag) % (2**63)

    def _schema(self, rng: random.Random) -> list[Predicate]:
        """A fixed-order list of predicates (never a set: order matters)."""
        return [
            Predicate(f"p{i}", rng.randint(1, self._config.max_arity))
            for i in range(self._config.predicates)
        ]

    def _rules(self, rng: random.Random, schema: list[Predicate]) -> list[TGD]:
        accepted: list[TGD] = []
        classifier = FRAGMENT_CLASSIFIERS[self._config.fragment]
        for slot in range(self._config.rules):
            for _ in range(_MAX_ATTEMPTS_PER_RULE):
                candidate = self._candidate_rule(rng, schema, slot)
                if classifier(accepted + [candidate]):
                    accepted.append(candidate)
                    break
            # All attempts rejected: skip the slot.  Deterministic (the
            # stream advanced the same way) and always terminating.
        return accepted

    def _candidate_rule(
        self, rng: random.Random, schema: list[Predicate], slot: int
    ) -> TGD:
        fragment = self._config.fragment
        if fragment == "linear":
            return self._linear_rule(rng, schema, slot=slot)
        if fragment == "sticky":
            return self._joined_rule(rng, schema, slot=slot)
        # sticky-join: alternate the two shapes so both branches of the
        # ``linear ∨ sticky`` recogniser get exercised.  Both shapes stay
        # stratified here — a linear rule climbing the predicate order
        # would re-open the cycles stratification exists to rule out.
        if rng.random() < 0.5:
            return self._linear_rule(rng, schema, slot=slot, stratified=True)
        return self._joined_rule(rng, schema, slot=slot)

    def _linear_rule(
        self,
        rng: random.Random,
        schema: list[Predicate],
        slot: int = 0,
        stratified: bool = False,
    ) -> TGD:
        """A single-body-atom TGD; body variables may repeat."""
        if stratified:
            head_index = rng.randint(1, len(schema) - 1)
            head_predicate = schema[head_index]
            body_predicate = schema[rng.randrange(head_index)]
        else:
            head_predicate = rng.choice(schema)
            body_predicate = rng.choice(schema)
        variables = [Variable(f"X{i}") for i in range(body_predicate.arity)]
        body_terms: list[Variable] = []
        for position in range(body_predicate.arity):
            if body_terms and rng.random() < 0.15:
                body_terms.append(rng.choice(body_terms))  # a repeated variable
            else:
                body_terms.append(variables[position])
        body = Atom(body_predicate, tuple(body_terms))
        # Deduplicate while preserving first-occurrence order (no sets).
        body_variables: list[Variable] = []
        for term in body_terms:
            if term not in body_variables:
                body_variables.append(term)
        head = self._head_atom(rng, head_predicate, body_variables, slot)
        return TGD((body,), (head,), label=f"r{slot}")

    def _joined_rule(
        self, rng: random.Random, schema: list[Predicate], slot: int = 0
    ) -> TGD:
        """A multi-body-atom, predicate-stratified TGD steered to stickiness.

        The head predicate is drawn first and every body predicate sits
        strictly below it in the schema order (see the module docstring
        for why).  Join variables (those occurring in more than one body
        atom) are propagated into the head whenever a head position is
        available: the marking procedure never base-marks a variable
        occurring in the (single) head atom, which is what keeps repeated
        body variables unmarked and the rule sticky-compatible.  The
        final word stays with the classifier in :meth:`_rules`.
        """
        head_index = rng.randint(1, len(schema) - 1)
        head_predicate = schema[head_index]
        atom_count = rng.randint(1, self._config.fan_out)
        pool = [Variable(f"X{i}") for i in range(2 * self._config.max_arity)]
        body: list[Atom] = []
        used: list[Variable] = []  # first-occurrence order, no sets
        for _ in range(atom_count):
            predicate = schema[rng.randrange(head_index)]
            terms: list[Variable] = []
            for _ in range(predicate.arity):
                if used and rng.random() < 0.5:
                    terms.append(rng.choice(used))  # share: creates joins
                else:
                    fresh = rng.choice(pool)
                    terms.append(fresh)
            body.append(Atom(predicate, tuple(terms)))
            for term in terms:
                if term not in used:
                    used.append(term)
        occurrences: dict[Variable, int] = {}
        for atom in body:
            for term in atom.terms:
                occurrences[term] = occurrences.get(term, 0) + 1
        joined = [variable for variable in used if occurrences[variable] > 1]
        head = self._head_atom(rng, head_predicate, used, slot, prefer=joined)
        return TGD(tuple(body), (head,), label=f"r{slot}")

    def _head_atom(
        self,
        rng: random.Random,
        predicate: Predicate,
        body_variables: list[Variable],
        slot: int,
        prefer: list[Variable] | None = None,
    ) -> Atom:
        """A normalised head: one atom, at most one existential, once.

        *prefer* lists variables that should reach the head first (the
        join variables of sticky candidates); remaining positions draw
        from all body variables, and at most one position becomes the
        existential ``Z`` with probability ``existential_density``.
        """
        existential_position = -1
        if rng.random() < self._config.existential_density:
            existential_position = rng.randrange(predicate.arity)
        terms: list[Variable] = []
        remaining_preferred = list(prefer or [])
        for position in range(predicate.arity):
            if position == existential_position:
                terms.append(Variable(f"Z{slot}"))
            elif remaining_preferred:
                terms.append(remaining_preferred.pop(0))
            else:
                terms.append(rng.choice(body_variables))
        return Atom(predicate, tuple(terms))

    def _query(
        self, rng: random.Random, schema: list[Predicate], rules: list[TGD]
    ) -> ConjunctiveQuery:
        """A CQ over the rule heads' predicates (so rewriting has work to do)."""
        head_predicates: list[Predicate] = []
        for rule in rules:
            predicate = rule.head[0].predicate
            if predicate not in head_predicates:
                head_predicates.append(predicate)
        candidates = head_predicates if head_predicates else schema
        atom_count = rng.randint(1, self._config.query_atoms)
        pool = [Variable(f"Q{i}") for i in range(2 * self._config.max_arity)]
        body: list[Atom] = []
        used: list[Variable] = []
        for _ in range(atom_count):
            predicate = rng.choice(candidates)
            terms: list = []
            for _ in range(predicate.arity):
                roll = rng.random()
                if roll < 0.15:
                    # A constant of the ABox domain, so selections are
                    # plausible on generated instances.
                    terms.append(
                        Constant(f"c{rng.randrange(self._config.domain_size)}")
                    )
                elif used and roll < 0.55:
                    terms.append(rng.choice(used))
                else:
                    terms.append(rng.choice(pool))
            body.append(Atom(predicate, tuple(terms)))
            for term in terms:
                if isinstance(term, Variable) and term not in used:
                    used.append(term)
        answer_count = rng.randint(0, min(2, len(used)))
        answer_terms = tuple(used[:answer_count])
        return ConjunctiveQuery(body, answer_terms)

    def _validate(self, rules: list[TGD]) -> None:
        """Assert the emitted set is inside the fragment it is labelled with."""
        classifier = FRAGMENT_CLASSIFIERS[self._config.fragment]
        if not classifier(rules):  # pragma: no cover - incremental check prevents it
            raise GenerationError(
                f"generated theory escaped fragment {self._config.fragment!r}"
            )


# ---------------------------------------------------------------------------
# Scaled registry ontologies (LUBM-style 10–100× ABoxes)
# ---------------------------------------------------------------------------


def scaled_registry_instance(
    name: str,
    scale: int = 10,
    seed: int = 0,
    base_facts_per_relation: int = 10,
) -> RelationalInstance:
    """A *scale*-times ABox for a registered workload (e.g. ``U`` at 10–100×).

    The workload's own ABox (hand-crafted for several registry
    ontologies, and deliberately tiny) seeds the instance so every
    registered query keeps its known non-empty answers; on top, a
    :class:`~repro.database.generator.DatabaseGenerator` adds
    ``base_facts_per_relation * scale`` random facts per schema relation
    with a domain that grows with the scale — the university workload at
    ``scale=10..100`` is the LUBM-style axis the scaling benchmark
    sweeps.
    """
    if scale < 1:
        raise ValueError(f"scale must be >= 1, got {scale}")
    workload = get_workload(name)
    facts_per_relation = base_facts_per_relation * scale
    generated = DatabaseGenerator(
        seed=seed, domain_size=max(20, 4 * facts_per_relation)
    ).populate_for_rules(
        list(workload.theory.tgds), facts_per_relation=facts_per_relation
    )
    instance = RelationalInstance(facts=workload.abox(seed=seed).facts)
    instance.add_all(sorted(generated.facts, key=repr))
    return instance


def registry_cases(
    name: str,
    scale: int = 10,
    seed: int = 0,
) -> list[GeneratedCase]:
    """Registry-ontology triples: one per workload query, on one scaled ABox.

    The returned cases carry the *registered* theory and queries (not
    synthetic ones) over a shared scaled instance, so the differential
    oracles can sweep the real Table 1 ontologies at 10–100× data sizes
    through exactly the same pipeline as the generated triples.
    """
    workload = get_workload(name)
    instance = scaled_registry_instance(name, scale=scale, seed=seed)
    config = GeneratorConfig(
        fragment="linear" if workload.theory.classification.linear else "sticky-join",
        facts_per_relation=10 * scale,
    )
    return [
        GeneratedCase(
            seed=seed,
            config=config,
            theory=workload.theory,
            query=workload.query(query_name),
            instance=instance,
        )
        for query_name in workload.query_names
    ]
