"""Failure minimisation and replayable repro files.

:func:`shrink_case` greedily deletes rules, query atoms and database
facts from a failing case while a caller-supplied predicate keeps
reproducing the failure, iterating the three passes to a fixed point.
Facts are removed delta-debugging style (halving chunks first, then
singles), so large ABoxes shrink in ``O(n log n)`` oracle runs instead
of ``O(n²)``.

:func:`write_repro` / :func:`load_repro` persist a case — rules, query
and facts included, since a repro must replay without the generator that
produced it — as a single JSON file built on the exact tagged encoding
of :mod:`repro.cache.serialization`.  Replay with::

    repro fuzz --replay repro-failures/fuzz-linear-42.json
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Callable

from ..cache.serialization import (
    atom_from_json,
    atom_to_json,
    query_from_json,
    query_to_json,
    tgd_from_json,
    tgd_to_json,
)
from ..database.instance import RelationalInstance
from ..dependencies.theory import OntologyTheory
from ..logic.terms import Variable
from ..queries.conjunctive_query import ConjunctiveQuery
from .generator import GeneratedCase, GeneratorConfig

#: Repro file format version; bump on any incompatible change.
REPRO_FORMAT = 1

#: A predicate deciding whether a (candidate) case still fails.  Usually
#: ``lambda case: oracle.failure(case)`` — any truthy return keeps the
#: reduction, so the :class:`~repro.fuzzing.oracle.OracleFailure` itself
#: works as the return value.
FailingPredicate = Callable[[GeneratedCase], object]


def shrink_case(
    case: GeneratedCase,
    failing: FailingPredicate,
    on_progress: Callable[[str], None] | None = None,
) -> GeneratedCase:
    """Greedily minimise *case* while ``failing(case)`` stays truthy.

    Raises :class:`ValueError` when the input case does not fail to begin
    with (a shrinker run on a passing case would "minimise" it to
    nothing and report garbage).
    """
    if not failing(case):
        raise ValueError("shrink_case needs a failing case to start from")
    note = on_progress if on_progress is not None else (lambda _message: None)
    changed = True
    while changed:
        changed = False
        case, rules_changed = _shrink_rules(case, failing)
        case, query_changed = _shrink_query(case, failing)
        case, facts_changed = _shrink_facts(case, failing)
        changed = rules_changed or query_changed or facts_changed
        if changed:
            note(f"shrunk to {case.describe()}")
    return case


def _shrink_rules(
    case: GeneratedCase, failing: FailingPredicate
) -> tuple[GeneratedCase, bool]:
    """Drop rules one at a time (highest index first) while failure holds."""
    changed = False
    index = len(case.theory.tgds) - 1
    while index >= 0:
        rules = list(case.theory.tgds)
        del rules[index]
        candidate = case.with_rules(rules)
        if failing(candidate):
            case = candidate
            changed = True
        index -= 1
    return case, changed


def _shrink_query(
    case: GeneratedCase, failing: FailingPredicate
) -> tuple[GeneratedCase, bool]:
    """Drop query body atoms, trimming answer terms that lose their binding."""
    changed = False
    index = len(case.query.body) - 1
    while index >= 0 and len(case.query.body) > 1:
        body = list(case.query.body)
        del body[index]
        candidate = case.with_query(_rebuild_query(case.query, body))
        if failing(candidate):
            case = candidate
            changed = True
        index -= 1
    return case, changed


def _rebuild_query(query: ConjunctiveQuery, body: list) -> ConjunctiveQuery:
    """The query over *body*, keeping only answer terms that remain bound."""
    remaining = set()
    for atom in body:
        remaining.update(atom.variables())
    answer_terms = tuple(
        term
        for term in query.answer_terms
        if not isinstance(term, Variable) or term in remaining
    )
    return ConjunctiveQuery(body, answer_terms, head_name=query.head_name)


def _shrink_facts(
    case: GeneratedCase, failing: FailingPredicate
) -> tuple[GeneratedCase, bool]:
    """Delta-debugging pass over the facts: halving chunks, then singles."""
    facts = sorted(case.instance.facts, key=repr)
    changed = False
    chunk = max(1, len(facts) // 2)
    while chunk >= 1:
        start = 0
        while start < len(facts):
            candidate_facts = facts[:start] + facts[start + chunk :]
            candidate = case.with_facts(candidate_facts)
            if failing(candidate):
                facts = candidate_facts
                case = candidate
                changed = True
                # The window now holds the next facts; do not advance.
            else:
                start += chunk
        if chunk == 1:
            break
        chunk = max(1, chunk // 2)
    return case, changed


# ---------------------------------------------------------------------------
# Replayable repro files
# ---------------------------------------------------------------------------


def write_repro(
    path: str | Path,
    case: GeneratedCase,
    failure: object = None,
) -> Path:
    """Persist *case* (and the failure that produced it) as a repro file."""
    path = Path(path)
    payload = {
        "format": REPRO_FORMAT,
        "kind": "repro-fuzz-case",
        "seed": case.seed,
        "fragment": case.fragment,
        "config": asdict(case.config),
        "theory_name": case.theory.name,
        "rules": [tgd_to_json(rule) for rule in case.theory.tgds],
        "query": query_to_json(case.query),
        "facts": [
            atom_to_json(fact) for fact in sorted(case.instance.facts, key=repr)
        ],
        "failure": _failure_to_json(failure),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def load_repro(path: str | Path) -> tuple[GeneratedCase, dict | None]:
    """Reload a repro file: ``(case, recorded failure or None)``."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if payload.get("kind") != "repro-fuzz-case":
        raise ValueError(f"{path} is not a fuzzing repro file")
    if payload.get("format") != REPRO_FORMAT:
        raise ValueError(
            f"{path} has repro format {payload.get('format')!r}; "
            f"this version reads {REPRO_FORMAT}"
        )
    config = GeneratorConfig(**payload["config"])
    theory = OntologyTheory(
        tgds=[tgd_from_json(rule) for rule in payload["rules"]],
        name=payload.get("theory_name", "repro"),
    )
    case = GeneratedCase(
        seed=payload["seed"],
        config=config,
        theory=theory,
        query=query_from_json(payload["query"]),
        instance=RelationalInstance(
            facts=[atom_from_json(fact) for fact in payload["facts"]]
        ),
    )
    return case, payload.get("failure")


def _failure_to_json(failure: object) -> dict | None:
    if failure is None:
        return None
    oracle = getattr(failure, "oracle", None)
    detail = getattr(failure, "detail", None)
    if oracle is not None or detail is not None:
        return {"oracle": oracle, "detail": detail}
    return {"oracle": None, "detail": str(failure)}
