"""Parallel workload compilation: partition, compile in workers, merge once.

The paper's pitch is *compile once, evaluate anywhere* — so cold-compile
wall-clock is one of the two numbers that matter (the other being
rewriting size).  A workload's queries are independent compilation units,
and :meth:`repro.core.rewriter.TGDRewriter.rewrite` is a pure function of
``(rules, options, query)`` (deterministic rename-apart, per-expansion
fresh variables), which makes the fan-out trivial to get *exactly* right:

1. **Pre-scan (parent).**  Every query is first probed against its
   system's in-process cache and persistent store, in input order.  Only
   genuine misses become worker tasks; a warm store never spawns a pool.
2. **Partition + compile (workers).**  Pending queries are submitted
   one-per-task to a :class:`~concurrent.futures.ProcessPoolExecutor`
   whose workers hold one rewriting engine per job (theory + resolved
   options), built lazily from the pickled theory on first use.  Tasks
   are self-contained, so scheduling is dynamic — no partition can
   straggle behind a skewed query.
3. **Merge (single writer, parent).**  Results are reassembled by input
   position; the parent alone appends to each
   :class:`~repro.cache.store.RewritingStore`, in input order, so the
   JSON-lines file never sees interleaved appends and its bytes are
   identical to the ones the sequential path writes.  Per-query
   statistics are folded into workload totals with
   :meth:`~repro.core.rewriter.RewritingStatistics.merge`.

``compile_workloads`` accepts *many* ``(system, queries)`` jobs and
schedules all their tasks through one pool: compiling the five Table 1
ontologies this way overlaps the long tail of one ontology with the
queries of the next, which is where most of the multi-core speedup
comes from (a single skewed query otherwise bounds its workload's
makespan).

Per-query tasks cap the speedup at ``total / slowest-query`` — the
granularity ceiling PR 3 measured at ≈2.6× on Table 1.  The frontier
kernel removes that ceiling: with a :mod:`repro.scheduling` strategy
(``strategy="chunked"``, or automatically whenever there are fewer
pending queries than workers) the pending queries are compiled in the
parent and each *frontier generation* is split across the worker pool
instead, so the pool keeps helping all the way through the slowest
query's longest chain of TGD-rewrite steps.  Both modes write the same
bytes — expansion is pure and the merge point is ordered — so choosing a
mode trades wall-clock only.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Iterable, Sequence

from .core.rewriter import RewritingResult, TGDRewriter
from .queries.conjunctive_query import ConjunctiveQuery
from .scheduling import SchedulingStrategy, create_strategy, resolve_workers

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .api import OBDASystem

__all__ = ["compile_workloads", "resolve_workers"]


# -- worker side -----------------------------------------------------------
#
# Each worker process receives every job's engine specification once (via
# the pool initializer) and builds rewriting engines lazily, so a worker
# that never draws a task for job *j* never pays for j's engine.  Engines
# are cached per job for the lifetime of the worker: queries of the same
# workload share the rule index and memo layers exactly as they do in the
# sequential path — and thanks to the deterministic engine this sharing
# cannot change a single output byte.

_WORKER_SPECIFICATIONS: tuple | None = None
_WORKER_ENGINES: dict[int, TGDRewriter] = {}


def _initialize_worker(specifications: tuple) -> None:
    """Pool initializer: remember the engine spec of every job."""
    global _WORKER_SPECIFICATIONS, _WORKER_ENGINES
    _WORKER_SPECIFICATIONS = specifications
    _WORKER_ENGINES = {}


def _worker_engine(job: int) -> TGDRewriter:
    """The worker's (lazily built) rewriting engine for *job*."""
    engine = _WORKER_ENGINES.get(job)
    if engine is None:
        theory, use_elimination, use_nc_pruning = _WORKER_SPECIFICATIONS[job]
        engine = TGDRewriter(
            theory,
            use_elimination=use_elimination,
            use_nc_pruning=use_nc_pruning,
        )
        _WORKER_ENGINES[job] = engine
    return engine


def _compile_in_worker(
    task: tuple[int, int, ConjunctiveQuery]
) -> tuple[int, int, RewritingResult]:
    """Compile one query; the ``(job, position)`` tag routes the result back.

    The rules tuple is stripped before pickling: the parent re-attaches
    its own (equal) rules object anyway, and shipping hundreds of TGDs
    back once per query would dominate the IPC payload.
    """
    job, position, query = task
    result = _worker_engine(job).rewrite(query)
    return job, position, RewritingResult(
        query=result.query,
        rules=(),
        ucq=result.ucq,
        auxiliary_queries=result.auxiliary_queries,
        statistics=result.statistics,
    )


# -- parent side -----------------------------------------------------------


def compile_workloads(
    jobs: Iterable[tuple["OBDASystem", Sequence[ConjunctiveQuery]]],
    workers: int | None = None,
    strategy: "SchedulingStrategy | str | None" = None,
) -> list[list[RewritingResult]]:
    """Compile many ``(system, queries)`` jobs through one process pool.

    Returns one result list per job, in input order, exactly as the
    corresponding ``system.compile_many(queries)`` would — same cache
    counters on warm paths, same bytes appended to each persistent store.
    With ``workers=1`` (or when everything is served from a cache) no
    pool is created and compilation happens in the parent.

    *strategy* selects **intra-query** parallelism instead of the default
    one-query-per-task fan-out: pending queries are compiled in the
    parent, each frontier generation split across the pool by the given
    :class:`~repro.scheduling.SchedulingStrategy` (a name such as
    ``"chunked"``, or a configured instance, which the caller then owns
    and closes).  When no strategy is given but exactly one query is
    pending — the regime where per-query granularity has nothing to
    parallelise — the chunked strategy is applied automatically.  Either
    mode produces byte-identical stores and results.
    """
    jobs = [(system, list(queries)) for system, queries in jobs]
    workers = resolve_workers(workers)

    outputs: list[list[RewritingResult | None]] = [
        [None] * len(queries) for _, queries in jobs
    ]
    pending: list[tuple[int, int, ConjunctiveQuery]] = []
    duplicates: list[tuple[int, int, int]] = []  # (job, position, first position)

    for job, (system, queries) in enumerate(jobs):
        first_occurrence: dict[ConjunctiveQuery, int] = {}
        for position, query in enumerate(queries):
            earlier = first_occurrence.get(query)
            if earlier is not None:
                # The sequential loop would find the first occurrence's
                # result in the in-process cache by now: count the hit and
                # share the (still pending) result object.  (A query equal
                # to a pending one cannot be served by the caches — its
                # first occurrence just missed them.)
                system._cache_hits += 1
                duplicates.append((job, position, earlier))
                continue
            served = system._serve_from_caches(query)
            if served is not None:
                outputs[job][position] = served[0]
                continue
            first_occurrence[query] = position
            pending.append((job, position, query))

    if pending:
        effective = min(workers, len(pending))
        if strategy is None and workers > 1 and len(pending) == 1:
            # A single pending query gives per-query granularity nothing
            # to parallelise: split its frontier across the workers
            # instead.  (With several pending queries the per-query pool
            # still offers len(pending)-wide parallelism, which beats
            # intra-query scheduling when frontier generations are small
            # — callers who know their frontiers are deep opt in with an
            # explicit strategy.)
            strategy = "chunked"
        if strategy is not None:
            # Intra-query mode: compile in the parent, expand each
            # frontier generation across the pool.  The chunked strategy
            # rebinds its pool when the engine changes, so one instance
            # serves every job of the batch (jobs arrive grouped).
            owned = not isinstance(strategy, SchedulingStrategy)
            resolved = create_strategy(strategy, workers=workers)
            try:
                for job, position, query in pending:
                    system = jobs[job][0]
                    outputs[job][position] = system._rewriter.rewrite(
                        query, strategy=resolved
                    )
            finally:
                if owned:
                    resolved.close()
        elif effective <= 1:
            for job, position, query in pending:
                system = jobs[job][0]
                outputs[job][position] = system._rewriter.rewrite(query)
        else:
            specifications = tuple(
                system._engine_specification() for system, _ in jobs
            )
            with ProcessPoolExecutor(
                max_workers=effective,
                initializer=_initialize_worker,
                initargs=(specifications,),
            ) as pool:
                futures = [pool.submit(_compile_in_worker, task) for task in pending]
                for future in futures:
                    job, position, result = future.result()
                    # Re-attach the parent's rule tuple: the worker's copy
                    # is equal but pickled, and every result of one system
                    # should share one rules object (as sequentially).
                    outputs[job][position] = RewritingResult(
                        query=result.query,
                        rules=jobs[job][0]._rewriter.rules,
                        ucq=result.ucq,
                        auxiliary_queries=result.auxiliary_queries,
                        statistics=result.statistics,
                    )

        # Single-writer merge: only the parent touches the stores, and it
        # appends in input order, so the JSON-lines bytes — and every
        # result object with its statistics — equal the workers=1 run.
        # An in-batch *variant* (compiled redundantly by a worker) is
        # detected by the refused put inside _absorb_fresh_result and
        # served from the stored record, as sequentially; only the
        # store's own probe counters see that extra lookup.
        fresh = {(job, position) for job, position, _ in pending}
        for job, (system, queries) in enumerate(jobs):
            for position, query in enumerate(queries):
                if (job, position) not in fresh:
                    continue
                outputs[job][position] = system._absorb_fresh_result(
                    query, outputs[job][position]
                )

    for job, position, earlier in duplicates:
        outputs[job][position] = outputs[job][earlier]

    results: list[list[RewritingResult]] = []
    for job, (system, _) in enumerate(jobs):
        job_results = outputs[job]
        assert all(result is not None for result in job_results)
        system._record_batch_statistics(job_results)
        results.append(job_results)
    return results
