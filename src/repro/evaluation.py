"""The Table 1 evaluation driver.

Section 7 of the paper compares four systems on the size / length / width of
the UCQ rewritings they produce:

* ``QO`` — QuOnto-style rewriting (:class:`repro.baselines.QuOntoStyleRewriter`);
* ``RQ`` — Requiem-style resolution (:class:`repro.baselines.ResolutionRewriter`);
* ``NY`` — ``TGD-rewrite`` with restricted factorisation
  (:class:`repro.core.TGDRewriter`);
* ``NY*`` — ``TGD-rewrite*``: NY plus query elimination.

This module wires the workloads of :mod:`repro.workloads` to the four
rewriters and produces Table-1-style rows.  It also handles the one subtlety
of the ``U``/``UX`` (and ``A``/``AX``, ``P5``/``P5X``) pairs: all rewriters
normalise multi-head / multi-existential TGDs internally, which introduces
auxiliary predicates; in the plain workloads those predicates are *internal*
(the stored database never populates them) so every CQ of the rewriting that
mentions one is discarded before measuring, whereas in the ``*X`` workloads
the auxiliary predicates belong to the schema and all CQs count.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from .baselines.quonto import QuOntoStyleRewriter
from .baselines.resolution import ResolutionRewriter
from .core.rewriter import RewritingResult, TGDRewriter
from .dependencies.tgd import schema_predicates
from .logic.atoms import Predicate
from .metrics import RewritingMetrics, ucq_metrics
from .queries.conjunctive_query import ConjunctiveQuery
from .queries.ucq import UnionOfConjunctiveQueries
from .workloads.registry import Workload, restrict_to_schema

#: The systems of Table 1, in column order.
SYSTEMS = ("QO", "RQ", "NY", "NY*")


@dataclass(frozen=True)
class Measurement:
    """Metrics and timing of one (system, query) cell of Table 1."""

    system: str
    query_name: str
    metrics: RewritingMetrics
    elapsed_seconds: float

    @property
    def size(self) -> int:
        """Number of CQs in the rewriting."""
        return self.metrics.size

    @property
    def length(self) -> int:
        """Total number of atoms in the rewriting."""
        return self.metrics.length

    @property
    def width(self) -> int:
        """Total number of joins in the rewriting."""
        return self.metrics.width


@dataclass
class Table1Row:
    """All measurements for one query of one workload."""

    workload: str
    query_name: str
    cells: dict[str, Measurement] = field(default_factory=dict)

    def cell(self, system: str) -> Measurement:
        """The measurement of the given system."""
        return self.cells[system]

    def as_dict(self) -> dict[str, object]:
        """Flatten the row into ``{"QO_size": ..., "QO_length": ..., ...}``."""
        flat: dict[str, object] = {"workload": self.workload, "query": self.query_name}
        for system, measurement in self.cells.items():
            flat[f"{system}_size"] = measurement.size
            flat[f"{system}_length"] = measurement.length
            flat[f"{system}_width"] = measurement.width
            flat[f"{system}_seconds"] = round(measurement.elapsed_seconds, 4)
        return flat


class Table1Evaluator:
    """Runs the four systems of Table 1 on a workload's queries."""

    def __init__(self, workload: Workload, systems: Sequence[str] = SYSTEMS) -> None:
        unknown = set(systems) - set(SYSTEMS)
        if unknown:
            raise ValueError(f"unknown systems requested: {sorted(unknown)}")
        self._workload = workload
        self._systems = tuple(systems)
        self._schema_predicates = schema_predicates(workload.theory.tgds)
        rules = workload.theory.tgds
        self._rewriters: dict[str, Callable[[ConjunctiveQuery], RewritingResult]] = {}
        if "QO" in systems:
            self._rewriters["QO"] = QuOntoStyleRewriter(rules).rewrite
        if "RQ" in systems:
            self._rewriters["RQ"] = ResolutionRewriter(rules, prune_subsumed=False).rewrite
        if "NY" in systems:
            self._rewriters["NY"] = TGDRewriter(rules).rewrite
        if "NY*" in systems:
            self._rewriters["NY*"] = TGDRewriter(rules, use_elimination=True).rewrite

    @property
    def workload(self) -> Workload:
        """The workload under evaluation."""
        return self._workload

    @property
    def systems(self) -> tuple[str, ...]:
        """The systems being compared."""
        return self._systems

    # -- running ---------------------------------------------------------------

    def rewrite(self, system: str, query: ConjunctiveQuery) -> UnionOfConjunctiveQueries:
        """The (schema-restricted) UCQ rewriting a system produces for *query*."""
        result = self._rewriters[system](query)
        return self._visible(result.ucq, query)

    def measure(self, system: str, query_name: str) -> Measurement:
        """Run one system on one named query and collect metrics plus timing."""
        query = self._workload.query(query_name)
        start = time.perf_counter()
        ucq = self.rewrite(system, query)
        elapsed = time.perf_counter() - start
        return Measurement(
            system=system,
            query_name=query_name,
            metrics=ucq_metrics(ucq),
            elapsed_seconds=elapsed,
        )

    def row(self, query_name: str) -> Table1Row:
        """All systems on one named query."""
        row = Table1Row(workload=self._workload.name, query_name=query_name)
        for system in self._systems:
            row.cells[system] = self.measure(system, query_name)
        return row

    def rows(self, query_names: Iterable[str] | None = None) -> list[Table1Row]:
        """All systems on all (or the given) queries of the workload."""
        names = list(query_names) if query_names is not None else list(self._workload.query_names)
        return [self.row(name) for name in names]

    # -- internals ------------------------------------------------------------------

    def _visible(
        self, ucq: UnionOfConjunctiveQueries, query: ConjunctiveQuery
    ) -> UnionOfConjunctiveQueries:
        """Drop CQs over internal auxiliary predicates unless the workload publishes them."""
        if self._workload.auxiliary_public:
            return ucq
        allowed: set[Predicate] = set(self._schema_predicates)
        allowed.update(atom.predicate for atom in query.body)
        return restrict_to_schema(ucq, allowed)


def evaluate_workload(
    workload: Workload,
    systems: Sequence[str] = SYSTEMS,
    query_names: Iterable[str] | None = None,
) -> list[Table1Row]:
    """One-shot evaluation of a workload; returns one row per query."""
    return Table1Evaluator(workload, systems=systems).rows(query_names)


def format_rows(rows: Sequence[Table1Row], systems: Sequence[str] = SYSTEMS) -> str:
    """Render rows as an aligned plain-text table (one block per metric)."""
    headers = ["workload", "query"]
    for metric in ("size", "length", "width"):
        for system in systems:
            headers.append(f"{system}_{metric}")
    flat_rows = [row.as_dict() for row in rows]
    widths = {
        header: max(len(header), *(len(str(r.get(header, ""))) for r in flat_rows))
        for header in headers
    }
    lines = ["  ".join(header.ljust(widths[header]) for header in headers)]
    for flat in flat_rows:
        lines.append(
            "  ".join(str(flat.get(header, "")).ljust(widths[header]) for header in headers)
        )
    return "\n".join(lines)
