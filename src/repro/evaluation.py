"""The Table 1 evaluation driver.

Section 7 of the paper compares four systems on the size / length / width of
the UCQ rewritings they produce:

* ``QO`` — QuOnto-style rewriting (:class:`repro.baselines.QuOntoStyleRewriter`);
* ``RQ`` — Requiem-style resolution (:class:`repro.baselines.ResolutionRewriter`);
* ``NY`` — ``TGD-rewrite`` with restricted factorisation
  (:class:`repro.core.TGDRewriter`);
* ``NY*`` — ``TGD-rewrite*``: NY plus query elimination.

This module wires the workloads of :mod:`repro.workloads` to the four
rewriters and produces Table-1-style rows.  It also handles the one subtlety
of the ``U``/``UX`` (and ``A``/``AX``, ``P5``/``P5X``) pairs: all rewriters
normalise multi-head / multi-existential TGDs internally, which introduces
auxiliary predicates; in the plain workloads those predicates are *internal*
(the stored database never populates them) so every CQ of the rewriting that
mentions one is discarded before measuring, whereas in the ``*X`` workloads
the auxiliary predicates belong to the schema and all CQs count.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from .baselines.quonto import QuOntoStyleRewriter
from .baselines.resolution import ResolutionRewriter
from .core.rewriter import RewritingResult, TGDRewriter
from .database.instance import RelationalInstance
from .dependencies.tgd import schema_predicates
from .logic.atoms import Predicate
from .metrics import RewritingMetrics, ucq_metrics
from .queries.conjunctive_query import ConjunctiveQuery
from .queries.ucq import UnionOfConjunctiveQueries
from .workloads.registry import Workload, restrict_to_schema

#: The systems of Table 1, in column order.
SYSTEMS = ("QO", "RQ", "NY", "NY*")


@dataclass(frozen=True)
class Measurement:
    """Metrics and timing of one (system, query) cell of Table 1."""

    system: str
    query_name: str
    metrics: RewritingMetrics
    elapsed_seconds: float

    @property
    def size(self) -> int:
        """Number of CQs in the rewriting."""
        return self.metrics.size

    @property
    def length(self) -> int:
        """Total number of atoms in the rewriting."""
        return self.metrics.length

    @property
    def width(self) -> int:
        """Total number of joins in the rewriting."""
        return self.metrics.width


@dataclass
class Table1Row:
    """All measurements for one query of one workload."""

    workload: str
    query_name: str
    cells: dict[str, Measurement] = field(default_factory=dict)

    def cell(self, system: str) -> Measurement:
        """The measurement of the given system."""
        return self.cells[system]

    def as_dict(self) -> dict[str, object]:
        """Flatten the row into ``{"QO_size": ..., "QO_length": ..., ...}``."""
        flat: dict[str, object] = {"workload": self.workload, "query": self.query_name}
        for system, measurement in self.cells.items():
            flat[f"{system}_size"] = measurement.size
            flat[f"{system}_length"] = measurement.length
            flat[f"{system}_width"] = measurement.width
            flat[f"{system}_seconds"] = round(measurement.elapsed_seconds, 4)
        return flat


class Table1Evaluator:
    """Runs the four systems of Table 1 on a workload's queries."""

    def __init__(self, workload: Workload, systems: Sequence[str] = SYSTEMS) -> None:
        unknown = set(systems) - set(SYSTEMS)
        if unknown:
            raise ValueError(f"unknown systems requested: {sorted(unknown)}")
        self._workload = workload
        self._systems = tuple(systems)
        self._schema_predicates = schema_predicates(workload.theory.tgds)
        rules = workload.theory.tgds
        self._rewriters: dict[str, Callable[[ConjunctiveQuery], RewritingResult]] = {}
        if "QO" in systems:
            self._rewriters["QO"] = QuOntoStyleRewriter(rules).rewrite
        if "RQ" in systems:
            self._rewriters["RQ"] = ResolutionRewriter(rules, prune_subsumed=False).rewrite
        if "NY" in systems:
            self._rewriters["NY"] = TGDRewriter(rules).rewrite
        if "NY*" in systems:
            self._rewriters["NY*"] = TGDRewriter(rules, use_elimination=True).rewrite

    @property
    def workload(self) -> Workload:
        """The workload under evaluation."""
        return self._workload

    @property
    def systems(self) -> tuple[str, ...]:
        """The systems being compared."""
        return self._systems

    # -- running ---------------------------------------------------------------

    def rewrite(self, system: str, query: ConjunctiveQuery) -> UnionOfConjunctiveQueries:
        """The (schema-restricted) UCQ rewriting a system produces for *query*."""
        result = self._rewriters[system](query)
        return self._visible(result.ucq, query)

    def measure(self, system: str, query_name: str) -> Measurement:
        """Run one system on one named query and collect metrics plus timing."""
        query = self._workload.query(query_name)
        start = time.perf_counter()
        ucq = self.rewrite(system, query)
        elapsed = time.perf_counter() - start
        return Measurement(
            system=system,
            query_name=query_name,
            metrics=ucq_metrics(ucq),
            elapsed_seconds=elapsed,
        )

    def row(self, query_name: str) -> Table1Row:
        """All systems on one named query."""
        row = Table1Row(workload=self._workload.name, query_name=query_name)
        for system in self._systems:
            row.cells[system] = self.measure(system, query_name)
        return row

    def rows(self, query_names: Iterable[str] | None = None) -> list[Table1Row]:
        """All systems on all (or the given) queries of the workload."""
        names = list(query_names) if query_names is not None else list(self._workload.query_names)
        return [self.row(name) for name in names]

    # -- internals ------------------------------------------------------------------

    def _visible(
        self, ucq: UnionOfConjunctiveQueries, query: ConjunctiveQuery
    ) -> UnionOfConjunctiveQueries:
        """Drop CQs over internal auxiliary predicates unless the workload publishes them."""
        if self._workload.auxiliary_public:
            return ucq
        allowed: set[Predicate] = set(self._schema_predicates)
        allowed.update(atom.predicate for atom in query.body)
        return restrict_to_schema(ucq, allowed)


def evaluate_workload(
    workload: Workload,
    systems: Sequence[str] = SYSTEMS,
    query_names: Iterable[str] | None = None,
) -> list[Table1Row]:
    """One-shot evaluation of a workload; returns one row per query."""
    return Table1Evaluator(workload, systems=systems).rows(query_names)


#: The execution backends compared by the answering evaluation.
ANSWER_BACKENDS = ("memory", "sqlite")


@dataclass(frozen=True)
class AnswerMeasurement:
    """Timing and size of one (query, backend) end-to-end answering run."""

    query_name: str
    backend: str
    prepare_seconds: float
    cold_seconds: float
    warm_seconds: float
    answers: int
    warm_cached: bool


class AnsweringEvaluator:
    """End-to-end answering over a workload through the serving lifecycle.

    Builds one :class:`~repro.api.OBDASystem` on a synthetic ABox of the
    workload and drives every query through
    :meth:`~repro.api.OBDASystem.prepare` /
    :meth:`~repro.api.PreparedQuery.execute` on each requested backend —
    the measured path is exactly what a deployment runs.  Used by ``repro
    answer`` and ``benchmarks/bench_answering.py``; also the differential
    harness showing the two backends agree.
    """

    def __init__(
        self,
        workload: Workload,
        backends: Sequence[str] = ANSWER_BACKENDS,
        seed: int = 0,
        facts_per_relation: int = 10,
        use_elimination: bool = True,
        use_nc_pruning: bool = False,
        database: RelationalInstance | None = None,
    ) -> None:
        from .api import OBDASystem  # local import: api imports this module's peers

        self._workload = workload
        self._backends = tuple(backends)
        self._system = OBDASystem(
            workload.theory,
            database=database
            if database is not None
            else workload.abox(seed=seed, facts_per_relation=facts_per_relation),
            use_elimination=use_elimination,
            use_nc_pruning=use_nc_pruning,
        )

    @property
    def workload(self) -> Workload:
        """The workload under evaluation."""
        return self._workload

    @property
    def system(self):
        """The :class:`~repro.api.OBDASystem` driving the lifecycle."""
        return self._system

    @property
    def backends(self) -> tuple[str, ...]:
        """The execution backends being compared."""
        return self._backends

    def answers(self, query_name: str, backend: str) -> frozenset[tuple]:
        """The certain answers of a named query on one backend (cached)."""
        prepared = self._system.prepare(self._workload.query(query_name), backend)
        return prepared.execute().tuples

    def agree(self, query_name: str) -> bool:
        """``True`` iff every backend returns the same answer set."""
        sets = {self.answers(query_name, backend) for backend in self._backends}
        return len(sets) <= 1

    def measure(self, query_name: str, backend: str) -> AnswerMeasurement:
        """Prepare + cold execute + warm execute of one query on one backend."""
        query = self._workload.query(query_name)
        started = time.perf_counter()
        prepared = self._system.prepare(query, backend)
        prepare_seconds = time.perf_counter() - started

        before = prepared.execution_cache_info()
        started = time.perf_counter()
        answers = prepared.execute()
        cold_seconds = time.perf_counter() - started

        started = time.perf_counter()
        prepared.execute()
        warm_seconds = time.perf_counter() - started
        after = prepared.execution_cache_info()

        return AnswerMeasurement(
            query_name=query_name,
            backend=backend,
            prepare_seconds=prepare_seconds,
            cold_seconds=cold_seconds,
            warm_seconds=warm_seconds,
            answers=len(answers),
            warm_cached=after.hits > before.hits,
        )

    def rows(
        self, query_names: Iterable[str] | None = None
    ) -> list[AnswerMeasurement]:
        """Measurements for all (or the given) queries on every backend."""
        names = (
            list(query_names)
            if query_names is not None
            else list(self._workload.query_names)
        )
        return [
            self.measure(name, backend)
            for name in names
            for backend in self._backends
        ]

    def close(self) -> None:
        """Release backend resources held by the underlying system."""
        self._system.close()


def format_rows(rows: Sequence[Table1Row], systems: Sequence[str] = SYSTEMS) -> str:
    """Render rows as an aligned plain-text table (one block per metric)."""
    headers = ["workload", "query"]
    for metric in ("size", "length", "width"):
        for system in systems:
            headers.append(f"{system}_{metric}")
    flat_rows = [row.as_dict() for row in rows]
    widths = {
        header: max(len(header), *(len(str(r.get(header, ""))) for r in flat_rows))
        for header in headers
    }
    lines = ["  ".join(header.ljust(widths[header]) for header in headers)]
    for flat in flat_rows:
        lines.append(
            "  ".join(str(flat.get(header, "")).ljust(widths[header]) for header in headers)
        )
    return "\n".join(lines)
