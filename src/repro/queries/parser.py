"""A small textual syntax for conjunctive queries.

Queries in examples, tests and the command-line interface are convenient to
write in the Datalog-ish notation the paper itself uses::

    q(A, B, C) :- fin_ins(A), stock_portf(B, A, D), list_comp(A, C)
    q() :- t(A, B, c), r(B, c)

Conventions (matching the paper's):

* identifiers starting with an **upper-case letter** are variables;
* identifiers starting with a lower-case letter or a digit are constants
  (quoted strings ``'like this'`` are always constants, so mixed-case data
  values remain expressible);
* the head is optional — ``:- body`` or just ``body`` denotes a BCQ;
* ``<-`` is accepted as a synonym for ``:-``.
"""

from __future__ import annotations

import re
from typing import Iterable

from ..logic.atoms import Atom, Predicate
from ..logic.terms import Constant, Term, Variable
from .conjunctive_query import ConjunctiveQuery


class QuerySyntaxError(ValueError):
    """Raised when a query string cannot be parsed."""


_ATOM_PATTERN = re.compile(r"\s*([A-Za-z_][\w.-]*)\s*\(([^)]*)\)\s*")
_SEPARATORS = (":-", "<-")


def parse_query(text: str, head_name: str = "q") -> ConjunctiveQuery:
    """Parse a conjunctive query from its textual form.

    >>> parse_query("q(A) :- person(A), works_for(A, acme)").arity
    1
    """
    head_text, body_text = _split(text)
    body = list(_parse_atoms(body_text))
    if not body:
        raise QuerySyntaxError(f"query has an empty body: {text!r}")
    if head_text is None:
        return ConjunctiveQuery(body, (), head_name)
    name, answer_terms = _parse_head(head_text)
    return ConjunctiveQuery(body, answer_terms, name or head_name)


def parse_term(token: str) -> Term:
    """Parse one term token (variable, quoted constant or plain constant)."""
    token = token.strip()
    if not token:
        raise QuerySyntaxError("empty term")
    if token[0] in "'\"":
        if len(token) < 2 or token[-1] != token[0]:
            raise QuerySyntaxError(f"unterminated quoted constant: {token!r}")
        return Constant(token[1:-1])
    if token[0].isalpha() and token[0].isupper():
        return Variable(token)
    if re.fullmatch(r"-?\d+", token):
        return Constant(int(token))
    return Constant(token)


# ---------------------------------------------------------------------------
# internals
# ---------------------------------------------------------------------------


def _split(text: str) -> tuple[str | None, str]:
    """Split ``head :- body`` into its two parts (head may be absent)."""
    stripped = text.strip()
    if not stripped:
        raise QuerySyntaxError("empty query")
    for separator in _SEPARATORS:
        if separator in stripped:
            head_text, body_text = stripped.split(separator, 1)
            head_text = head_text.strip()
            return (head_text or None), body_text.strip()
    return None, stripped


def _parse_head(head_text: str) -> tuple[str | None, tuple[Term, ...]]:
    """Parse ``q(A, B)`` (or a bare predicate name) into name + answer terms."""
    match = _ATOM_PATTERN.fullmatch(head_text)
    if match is None:
        if re.fullmatch(r"[A-Za-z_]\w*", head_text):
            return head_text, ()
        raise QuerySyntaxError(f"cannot parse query head: {head_text!r}")
    name, arguments = match.group(1), match.group(2).strip()
    if not arguments:
        return name, ()
    return name, tuple(parse_term(token) for token in _split_arguments(arguments))


def _parse_atoms(body_text: str) -> Iterable[Atom]:
    """Parse a comma-separated conjunction of atoms."""
    position = 0
    while position < len(body_text):
        match = _ATOM_PATTERN.match(body_text, position)
        if match is None:
            remainder = body_text[position:].strip()
            if remainder in ("", ","):
                return
            raise QuerySyntaxError(f"cannot parse body near: {remainder!r}")
        name, arguments = match.group(1), match.group(2).strip()
        terms = (
            tuple(parse_term(token) for token in _split_arguments(arguments))
            if arguments
            else ()
        )
        if not terms:
            raise QuerySyntaxError(f"atom {name!r} has no arguments")
        yield Atom(Predicate(name, len(terms)), terms)
        position = match.end()
        if position < len(body_text):
            if body_text[position] != ",":
                raise QuerySyntaxError(
                    f"expected ',' between atoms near: {body_text[position:]!r}"
                )
            position += 1


def _split_arguments(arguments: str) -> list[str]:
    """Split an argument list on commas (quotes cannot contain commas)."""
    return [token for token in (part.strip() for part in arguments.split(",")) if token]
