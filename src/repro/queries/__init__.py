"""Conjunctive queries, unions of conjunctive queries, containment and minimisation."""

from .conjunctive_query import ConjunctiveQuery, boolean_query
from .containment import (
    ContainmentIndex,
    SubsumptionStatistics,
    are_equivalent,
    body_maps_into,
    containment_mapping,
    is_contained_in,
)
from .minimization import is_minimal, minimize, redundant_atoms
from .parser import QuerySyntaxError, parse_query, parse_term
from .ucq import InterningStatistics, QuerySet, UnionOfConjunctiveQueries, union

__all__ = [
    "ConjunctiveQuery",
    "ContainmentIndex",
    "InterningStatistics",
    "SubsumptionStatistics",
    "QuerySet",
    "UnionOfConjunctiveQueries",
    "are_equivalent",
    "body_maps_into",
    "boolean_query",
    "containment_mapping",
    "is_contained_in",
    "QuerySyntaxError",
    "is_minimal",
    "minimize",
    "parse_query",
    "parse_term",
    "redundant_atoms",
    "union",
]
