"""Unions of conjunctive queries (UCQs).

A UCQ of arity ``n`` is a set of CQs of the same arity sharing the same head
predicate (Section 3.1).  The perfect rewriting produced by ``TGD-rewrite``
is a UCQ; this module also provides the canonical-key interning store (the
"no variant twice" container used by the rewriting algorithms) and
subsumption-based redundancy removal used to compare rewritings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from ..logic.atoms import atoms_predicates
from ..logic.canonical import CanonicalKey
from .conjunctive_query import ConjunctiveQuery

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .containment import SubsumptionStatistics


class UnionOfConjunctiveQueries:
    """An immutable union of CQs of equal arity."""

    __slots__ = ("_queries", "_arity")

    def __init__(self, queries: Iterable[ConjunctiveQuery]) -> None:
        queries = list(queries)
        arities = {q.arity for q in queries}
        if len(arities) > 1:
            raise ValueError(f"queries in a UCQ must share the same arity, got {arities}")
        self._queries: tuple[ConjunctiveQuery, ...] = tuple(queries)
        self._arity = arities.pop() if arities else 0

    @property
    def arity(self) -> int:
        """The common arity of the member CQs."""
        return self._arity

    @property
    def queries(self) -> tuple[ConjunctiveQuery, ...]:
        """The member CQs in insertion order."""
        return self._queries

    def __iter__(self) -> Iterator[ConjunctiveQuery]:
        return iter(self._queries)

    def __len__(self) -> int:
        return len(self._queries)

    def __getitem__(self, index: int) -> ConjunctiveQuery:
        return self._queries[index]

    def __repr__(self) -> str:
        return "\n".join(repr(q) for q in self._queries) or "<empty UCQ>"

    # -- set-like helpers ----------------------------------------------------

    def contains_variant(self, query: ConjunctiveQuery) -> bool:
        """``True`` iff some member is a variant of *query*."""
        return any(member.is_variant_of(query) for member in self._queries)

    def deduplicate(self) -> "UnionOfConjunctiveQueries":
        """Return a UCQ in which no two members are variants of each other."""
        store = QuerySet()
        for query in self._queries:
            store.add(query)
        return UnionOfConjunctiveQueries(store)

    def remove_subsumed(
        self, statistics: "SubsumptionStatistics | None" = None
    ) -> "UnionOfConjunctiveQueries":
        """Drop members that are subsumed (contained) by another member.

        A CQ ``p`` is redundant in a UCQ if some other member ``p'`` satisfies
        ``p ⊑ p'``: every answer of ``p`` is already an answer of ``p'`` on
        every database.  Removing subsumed members never changes the answers
        of the UCQ.

        Candidate subsumers are drawn from predicate-signature buckets: a
        containment mapping from ``p'`` into ``p`` sends every body atom of
        ``p'`` onto an atom of ``p`` with the same predicate, so only members
        whose predicate set is a subset of ``p``'s can subsume it.  Each
        member is frozen and indexed **once** (a
        :class:`~repro.queries.containment.ContainmentIndex`), every
        candidate pair passes the argument-signature and answer-anchoring
        pre-filters before a backtracking search is allowed to start, and
        the search itself probes the index by hash.  The survivor set is
        identical to :meth:`remove_subsumed_naive` — the pre-filters are
        necessary conditions — but most pairs never reach a search
        (*statistics*, when given, records the split).
        """
        from .containment import ContainmentIndex, is_contained_in

        members = list(self.deduplicate())
        indexes = [ContainmentIndex(query) for query in members]
        groups: dict[frozenset, list[int]] = {}
        for index, containment_index in enumerate(indexes):
            groups.setdefault(containment_index.predicate_set, []).append(index)

        survivors: list[ConjunctiveQuery] = []
        for index, query in enumerate(members):
            subsumed = False
            for group_predicates, group_indices in groups.items():
                if not group_predicates <= indexes[index].predicate_set:
                    continue
                for other_index in group_indices:
                    if index == other_index:
                        continue
                    other = members[other_index]
                    if is_contained_in(
                        query, other, index=indexes[index], statistics=statistics
                    ):
                        # Break ties between equivalent queries by keeping the
                        # earliest one only.
                        if (
                            is_contained_in(
                                other,
                                query,
                                index=indexes[other_index],
                                statistics=statistics,
                            )
                            and other_index > index
                        ):
                            continue
                        subsumed = True
                        break
                if subsumed:
                    break
            if not subsumed:
                survivors.append(query)
        return UnionOfConjunctiveQueries(survivors)

    def remove_subsumed_naive(
        self, statistics: "SubsumptionStatistics | None" = None
    ) -> "UnionOfConjunctiveQueries":
        """The pre-index subsumption removal (differential-testing oracle).

        Same predicate-set bucketing as :meth:`remove_subsumed` but every
        surviving candidate pair goes straight to a fresh freeze + full
        backtracking homomorphism search — no shared index, no
        argument-signature pre-filter, no canonical fast path.  Kept so
        property tests (and the regression counter test) can assert that
        the indexed path returns the same survivors while running
        measurably fewer searches.
        """
        from .containment import is_contained_in

        members = list(self.deduplicate())
        predicate_sets = [atoms_predicates(query.body) for query in members]
        groups: dict[frozenset, list[int]] = {}
        for index, predicates in enumerate(predicate_sets):
            groups.setdefault(predicates, []).append(index)

        survivors: list[ConjunctiveQuery] = []
        for index, query in enumerate(members):
            subsumed = False
            for group_predicates, group_indices in groups.items():
                if not group_predicates <= predicate_sets[index]:
                    continue
                for other_index in group_indices:
                    if index == other_index:
                        continue
                    other = members[other_index]
                    if is_contained_in(
                        query, other, statistics=statistics, prefilter=False
                    ):
                        if (
                            is_contained_in(
                                other, query, statistics=statistics, prefilter=False
                            )
                            and other_index > index
                        ):
                            continue
                        subsumed = True
                        break
                if subsumed:
                    break
            if not subsumed:
                survivors.append(query)
        return UnionOfConjunctiveQueries(survivors)


@dataclass
class InterningStatistics:
    """Counters describing the behaviour of a :class:`QuerySet`.

    ``exact_hits`` counts hits proven by key equality alone (both queries had
    a discrete canonical colouring, so no isomorphism search was needed);
    ``confirmations`` counts the explicit variant checks run on the remaining
    canonical-key bucket members; ``collisions`` counts lookups whose bucket
    was non-empty yet held no variant (the canonical key collided with a
    structurally symmetric non-variant).
    """

    lookups: int = 0
    hits: int = 0
    exact_hits: int = 0
    misses: int = 0
    confirmations: int = 0
    collisions: int = 0


class QuerySet:
    """A mutable collection of CQs with canonical-key variant interning.

    ``add`` refuses to insert a query when a variant is already present.
    Queries are bucketed by :attr:`ConjunctiveQuery.canonical_key`, an
    invariant under variable renaming and atom reordering, so a lookup is a
    hash probe followed by an :meth:`ConjunctiveQuery.is_variant_of`
    confirmation on the (almost always empty or singleton) bucket.  This is
    the data structure behind ``Qrew`` in Algorithm 1.
    """

    __slots__ = ("_buckets", "_order", "statistics")

    def __init__(self, queries: Iterable[ConjunctiveQuery] = ()) -> None:
        self._buckets: dict[CanonicalKey, list[ConjunctiveQuery]] = {}
        self._order: list[ConjunctiveQuery] = []
        self.statistics = InterningStatistics()
        for query in queries:
            self.add(query)

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[ConjunctiveQuery]:
        return iter(self._order)

    def __contains__(self, query: ConjunctiveQuery) -> bool:
        return self.find_variant(query) is not None

    @property
    def bucket_count(self) -> int:
        """Number of distinct canonical keys stored."""
        return len(self._buckets)

    @property
    def max_bucket_size(self) -> int:
        """Size of the fullest canonical bucket (1 in the collision-free case)."""
        return max(map(len, self._buckets.values()), default=0)

    def find_variant(self, query: ConjunctiveQuery) -> ConjunctiveQuery | None:
        """Return the stored variant of *query*, if any."""
        statistics = self.statistics
        statistics.lookups += 1
        key, exact = query.canonical_fingerprint
        bucket = self._buckets.get(key)
        if bucket:
            for candidate in bucket:
                candidate_exact = candidate.canonical_fingerprint[1]
                if exact and candidate_exact:
                    # Two discrete colourings with the same key are provably
                    # variants: the colour-matching renaming is forced.
                    statistics.hits += 1
                    statistics.exact_hits += 1
                    return candidate
                if exact != candidate_exact:
                    # Exactness is itself a variant invariant, so a mismatch
                    # proves non-varianthood without an isomorphism search.
                    continue
                statistics.confirmations += 1
                if candidate.is_variant_of(query):
                    statistics.hits += 1
                    return candidate
            statistics.collisions += 1
        statistics.misses += 1
        return None

    def intern(self, query: ConjunctiveQuery) -> tuple[ConjunctiveQuery, bool]:
        """Insert *query* unless a variant is present, with a single probe.

        Returns ``(stored, inserted)`` where *stored* is the representative
        now in the set (the pre-existing variant, or *query* itself) and
        *inserted* tells whether *query* was added.
        """
        existing = self.find_variant(query)
        if existing is not None:
            return existing, False
        self._buckets.setdefault(query.canonical_key, []).append(query)
        self._order.append(query)
        return query, True

    def add(self, query: ConjunctiveQuery) -> bool:
        """Insert *query* unless a variant is present; return ``True`` if inserted."""
        return self.intern(query)[1]

    def to_ucq(self) -> UnionOfConjunctiveQueries:
        """Freeze the collection into a UCQ."""
        return UnionOfConjunctiveQueries(self._order)


def union(queries: Sequence[ConjunctiveQuery]) -> UnionOfConjunctiveQueries:
    """Build a deduplicated UCQ from a sequence of CQs."""
    return UnionOfConjunctiveQueries(queries).deduplicate()
