"""Unions of conjunctive queries (UCQs).

A UCQ of arity ``n`` is a set of CQs of the same arity sharing the same head
predicate (Section 3.1).  The perfect rewriting produced by ``TGD-rewrite``
is a UCQ; this module also provides the de-duplication ("no variant twice")
container used by the rewriting algorithms, and subsumption-based redundancy
removal used to compare rewritings.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator, Sequence

from .conjunctive_query import ConjunctiveQuery


class UnionOfConjunctiveQueries:
    """An immutable union of CQs of equal arity."""

    __slots__ = ("_queries", "_arity")

    def __init__(self, queries: Iterable[ConjunctiveQuery]) -> None:
        queries = list(queries)
        arities = {q.arity for q in queries}
        if len(arities) > 1:
            raise ValueError(f"queries in a UCQ must share the same arity, got {arities}")
        self._queries: tuple[ConjunctiveQuery, ...] = tuple(queries)
        self._arity = arities.pop() if arities else 0

    @property
    def arity(self) -> int:
        """The common arity of the member CQs."""
        return self._arity

    @property
    def queries(self) -> tuple[ConjunctiveQuery, ...]:
        """The member CQs in insertion order."""
        return self._queries

    def __iter__(self) -> Iterator[ConjunctiveQuery]:
        return iter(self._queries)

    def __len__(self) -> int:
        return len(self._queries)

    def __getitem__(self, index: int) -> ConjunctiveQuery:
        return self._queries[index]

    def __repr__(self) -> str:
        return "\n".join(repr(q) for q in self._queries) or "<empty UCQ>"

    # -- set-like helpers ----------------------------------------------------

    def contains_variant(self, query: ConjunctiveQuery) -> bool:
        """``True`` iff some member is a variant of *query*."""
        return any(member.is_variant_of(query) for member in self._queries)

    def deduplicate(self) -> "UnionOfConjunctiveQueries":
        """Return a UCQ in which no two members are variants of each other."""
        store = QuerySet()
        for query in self._queries:
            store.add(query)
        return UnionOfConjunctiveQueries(store)

    def remove_subsumed(self) -> "UnionOfConjunctiveQueries":
        """Drop members that are subsumed (contained) by another member.

        A CQ ``p`` is redundant in a UCQ if some other member ``p'`` satisfies
        ``p ⊑ p'``: every answer of ``p`` is already an answer of ``p'`` on
        every database.  Removing subsumed members never changes the answers
        of the UCQ.
        """
        from .containment import is_contained_in  # local import to avoid a cycle

        survivors: list[ConjunctiveQuery] = []
        members = list(self.deduplicate())
        for index, query in enumerate(members):
            subsumed = False
            for other_index, other in enumerate(members):
                if index == other_index:
                    continue
                if is_contained_in(query, other):
                    # Break ties between equivalent queries by keeping the
                    # earliest one only.
                    if is_contained_in(other, query) and other_index > index:
                        continue
                    subsumed = True
                    break
            if not subsumed:
                survivors.append(query)
        return UnionOfConjunctiveQueries(survivors)


class QuerySet:
    """A mutable collection of CQs with variant-based deduplication.

    ``add`` refuses to insert a query when a variant is already present;
    lookups are accelerated with the :attr:`ConjunctiveQuery.signature`
    invariant so most non-variants are rejected without a bijection search.
    This is the data structure behind ``Qrew`` in Algorithm 1.
    """

    __slots__ = ("_buckets", "_order")

    def __init__(self, queries: Iterable[ConjunctiveQuery] = ()) -> None:
        self._buckets: dict[tuple, list[ConjunctiveQuery]] = defaultdict(list)
        self._order: list[ConjunctiveQuery] = []
        for query in queries:
            self.add(query)

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[ConjunctiveQuery]:
        return iter(self._order)

    def __contains__(self, query: ConjunctiveQuery) -> bool:
        return self.find_variant(query) is not None

    def find_variant(self, query: ConjunctiveQuery) -> ConjunctiveQuery | None:
        """Return the stored variant of *query*, if any."""
        for candidate in self._buckets.get(query.signature, ()):  # noqa: B905
            if candidate.is_variant_of(query):
                return candidate
        return None

    def add(self, query: ConjunctiveQuery) -> bool:
        """Insert *query* unless a variant is present; return ``True`` if inserted."""
        if self.find_variant(query) is not None:
            return False
        self._buckets[query.signature].append(query)
        self._order.append(query)
        return True

    def to_ucq(self) -> UnionOfConjunctiveQueries:
        """Freeze the collection into a UCQ."""
        return UnionOfConjunctiveQueries(self._order)


def union(queries: Sequence[ConjunctiveQuery]) -> UnionOfConjunctiveQueries:
    """Build a deduplicated UCQ from a sequence of CQs."""
    return UnionOfConjunctiveQueries(queries).deduplicate()
