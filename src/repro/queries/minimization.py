"""Classical conjunctive-query minimisation (query cores).

The *core* of a CQ is an equivalent sub-query with the fewest atoms; it is
unique up to isomorphism (Chandra & Merlin).  Minimisation here is purely
constraint-free — it removes atoms that are redundant because of the query's
own structure (a fold onto the remaining atoms that fixes the answer terms),
not because of TGDs.  Constraint-aware minimisation is the job of the
chase & back-chase baseline and of the paper's query-elimination step.
"""

from __future__ import annotations

from ..logic.atoms import Atom
from ..logic.homomorphism import find_homomorphism
from ..logic.terms import is_variable
from .conjunctive_query import ConjunctiveQuery


def _folds_onto(query: ConjunctiveQuery, candidate_body: tuple[Atom, ...]) -> bool:
    """Check that the whole body folds onto *candidate_body* fixing answer terms.

    A fold is a homomorphism from ``body(query)`` to *candidate_body* that is
    the identity on answer variables and constants (i.e. the restriction of an
    endomorphism of the query).
    """
    frozen = {t for t in query.answer_terms if is_variable(t)}
    hom = find_homomorphism(query.body, candidate_body, frozen=frozen)
    return hom is not None


def minimize(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """Return the core of *query* (an equivalent query with minimal body).

    Iteratively tries to drop one atom at a time; an atom can be dropped when
    the full body folds onto the remaining atoms while keeping answer
    variables fixed.  The greedy one-at-a-time strategy is guaranteed to reach
    the core because foldability is preserved under composition of folds.
    """
    body = list(query.body)
    changed = True
    while changed and len(body) > 1:
        changed = False
        for index in range(len(body)):
            candidate = tuple(body[:index] + body[index + 1 :])
            if not _atoms_cover_answer_terms(query, candidate):
                continue
            if _folds_onto(query, candidate):
                body = list(candidate)
                changed = True
                break
    return query.with_body(body)


def _atoms_cover_answer_terms(
    query: ConjunctiveQuery, candidate_body: tuple[Atom, ...]
) -> bool:
    """Answer variables must keep at least one occurrence in the body."""
    remaining_vars = {t for atom in candidate_body for t in atom.terms if is_variable(t)}
    return all(
        not is_variable(term) or term in remaining_vars for term in query.answer_terms
    )


def is_minimal(query: ConjunctiveQuery) -> bool:
    """``True`` iff *query* equals its own core (no atom can be dropped)."""
    return len(minimize(query).body) == len(query.body)


def redundant_atoms(query: ConjunctiveQuery) -> frozenset[Atom]:
    """The atoms removed when computing the core of *query*."""
    core = minimize(query)
    return frozenset(set(query.body) - set(core.body))
