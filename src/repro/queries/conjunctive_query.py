"""Conjunctive queries (CQs) and Boolean conjunctive queries (BCQs).

A CQ of arity ``n`` has the form ``q(X) ← φ(X, Y)`` where ``φ`` is a
conjunction of atoms (Section 3.1).  A BCQ is a CQ of arity zero.  The
rewriting algorithms of the paper operate on these objects: the body is the
set of atoms being rewritten, while the head fixes the answer variables that
must be preserved (an answer variable behaves like a *shared* variable for the
applicability condition of Definition 1).

Queries are immutable; rewriting steps construct new queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterable, Mapping, Sequence

from ..logic.atoms import Atom, Predicate, atoms_constants, atoms_variables
from ..logic.canonical import (
    CanonicalFingerprint,
    CanonicalKey,
    canonical_fingerprint as _canonical_fingerprint,
)
from ..logic.homomorphism import variable_bijections
from ..logic.substitution import Substitution
from ..logic.terms import Constant, Term, Variable, is_constant, is_variable


@dataclass(frozen=True)
class ConjunctiveQuery:
    """An immutable conjunctive query ``head_name(answer_terms) ← body``.

    Parameters
    ----------
    body:
        The conjunction of body atoms.  Duplicated atoms are collapsed (a
        conjunction is identified with the set of its atoms, as in the paper)
        but the original order is preserved for readable output.
    answer_terms:
        The terms of the head; usually variables occurring in the body, but
        constants are allowed (and may appear after a rewriting step unifies
        an answer variable with a constant).
    head_name:
        Name of the head predicate (purely cosmetic; it does not participate
        in any equality or variant check).
    """

    body: tuple[Atom, ...]
    answer_terms: tuple[Term, ...] = ()
    head_name: str = "q"

    def __init__(
        self,
        body: Iterable[Atom],
        answer_terms: Iterable[Term] = (),
        head_name: str = "q",
    ) -> None:
        deduplicated: list[Atom] = []
        seen: set[Atom] = set()
        for atom in body:
            if atom not in seen:
                seen.add(atom)
                deduplicated.append(atom)
        object.__setattr__(self, "body", tuple(deduplicated))
        object.__setattr__(self, "answer_terms", tuple(answer_terms))
        object.__setattr__(self, "head_name", head_name)
        for term in self.answer_terms:
            if is_variable(term) and term not in atoms_variables(self.body):
                raise ValueError(
                    f"answer variable {term!r} does not occur in the query body"
                )

    # -- basic accessors -----------------------------------------------------

    @property
    def arity(self) -> int:
        """The arity of the query (number of answer terms)."""
        return len(self.answer_terms)

    @property
    def is_boolean(self) -> bool:
        """``True`` iff the query is a BCQ (arity zero)."""
        return self.arity == 0

    @property
    def head(self) -> Atom:
        """The head atom ``q(answer_terms)``."""
        return Atom(Predicate(self.head_name, self.arity), self.answer_terms)

    @cached_property
    def body_set(self) -> frozenset[Atom]:
        """The body as a set of atoms."""
        return frozenset(self.body)

    @cached_property
    def variables(self) -> frozenset[Variable]:
        """All variables of the query (body and head)."""
        head_vars = frozenset(t for t in self.answer_terms if is_variable(t))
        return atoms_variables(self.body) | head_vars

    @cached_property
    def answer_variables(self) -> frozenset[Variable]:
        """Variables occurring in the head."""
        return frozenset(t for t in self.answer_terms if is_variable(t))

    @cached_property
    def existential_variables(self) -> frozenset[Variable]:
        """Body variables not occurring in the head."""
        return self.variables - self.answer_variables

    @cached_property
    def constants(self) -> frozenset[Constant]:
        """All constants of the query (body and head)."""
        head_consts = frozenset(t for t in self.answer_terms if is_constant(t))
        return atoms_constants(self.body) | head_consts

    @cached_property
    def variable_occurrences(self) -> dict[Variable, int]:
        """Number of occurrences of each variable in the whole query.

        Occurrences in the head count (the paper: for non-Boolean CQs a
        variable is *shared* if it occurs more than once in the query,
        considering also the head).
        """
        counts: dict[Variable, int] = {}
        for atom in self.body:
            for term in atom.terms:
                if is_variable(term):
                    counts[term] = counts.get(term, 0) + 1
        for term in self.answer_terms:
            if is_variable(term):
                counts[term] = counts.get(term, 0) + 1
        return counts

    @cached_property
    def shared_variables(self) -> frozenset[Variable]:
        """Variables occurring more than once in the query (head included)."""
        return frozenset(
            v for v, count in self.variable_occurrences.items() if count > 1
        )

    def is_shared(self, term: Term) -> bool:
        """``True`` iff *term* is a shared variable of the query."""
        return isinstance(term, Variable) and term in self.shared_variables

    # -- transformations -----------------------------------------------------

    def apply(self, substitution: Substitution | Mapping[Term, Term]) -> "ConjunctiveQuery":
        """Apply a substitution to body and head, returning a new query."""
        if not isinstance(substitution, Substitution):
            substitution = Substitution(dict(substitution))
        new_body = substitution.apply_atoms(self.body)
        new_answer = tuple(substitution.apply_term(t) for t in self.answer_terms)
        return ConjunctiveQuery(new_body, new_answer, self.head_name)

    def replace_atoms(
        self, removed: Iterable[Atom], added: Iterable[Atom]
    ) -> "ConjunctiveQuery":
        """Return the query with *removed* body atoms replaced by *added* ones."""
        removed_set = set(removed)
        new_body = [a for a in self.body if a not in removed_set]
        new_body.extend(added)
        return ConjunctiveQuery(new_body, self.answer_terms, self.head_name)

    def drop_atoms(self, removed: Iterable[Atom]) -> "ConjunctiveQuery":
        """Return the query with the given body atoms removed."""
        return self.replace_atoms(removed, ())

    def with_body(self, body: Iterable[Atom]) -> "ConjunctiveQuery":
        """Return a copy of the query with a different body."""
        return ConjunctiveQuery(body, self.answer_terms, self.head_name)

    def rename_variables(self, factory=None, prefix: str = "R") -> "ConjunctiveQuery":
        """Return a variant of the query with canonically renamed variables."""
        counter = iter(range(1, len(self.variables) + 1))
        mapping: dict[Term, Term] = {}
        for atom in self.body:
            for term in atom.terms:
                if is_variable(term) and term not in mapping:
                    if factory is not None:
                        mapping[term] = factory()
                    else:
                        mapping[term] = Variable(f"{prefix}{next(counter)}")
        for term in self.answer_terms:
            if is_variable(term) and term not in mapping:
                if factory is not None:
                    mapping[term] = factory()
                else:
                    mapping[term] = Variable(f"{prefix}{next(counter)}")
        return self.apply(Substitution(mapping))

    def freeze(self) -> tuple[tuple[Atom, ...], Substitution]:
        """Freeze the query: replace each variable with a fresh constant.

        Returns the frozen body (the *canonical database* of the query) and
        the freezing substitution.  Freezing is the standard device used to
        check containment and by the chase & back-chase algorithm (Section 2).
        """
        mapping: dict[Term, Term] = {}
        for index, variable in enumerate(sorted(self.variables, key=str)):
            mapping[variable] = Constant(f"__frozen_{index}_{variable.name}")
        substitution = Substitution(mapping)
        return substitution.apply_atoms(self.body), substitution

    # -- structural comparisons ----------------------------------------------

    @cached_property
    def signature(self) -> tuple:
        """A cheap hashable invariant for bucketing variant candidates.

        Two variant queries necessarily have equal signatures; the converse
        need not hold, so the signature is only used to avoid expensive
        bijection searches.
        """
        body_profile = tuple(
            sorted(
                (
                    atom.name,
                    atom.arity,
                    tuple(
                        "c:" + str(t)
                        if is_constant(t)
                        else ("a" if t in self.answer_variables else "e")
                        + str(self.variable_occurrences.get(t, 0))
                        for t in atom.terms
                    ),
                )
                for atom in self.body_set
            )
        )
        head_profile = tuple(
            "c:" + str(t) if is_constant(t) else "v" for t in self.answer_terms
        )
        return (len(self.body_set), head_profile, body_profile)

    @cached_property
    def canonical_fingerprint(self) -> CanonicalFingerprint:
        """Interning key plus exactness flag (see :mod:`repro.logic.canonical`).

        The key is invariant under variable renaming and body-atom
        reordering, so :class:`repro.queries.ucq.QuerySet` uses it to bucket
        queries and replace linear variant scans by a hash probe.  When the
        flag is ``True`` the key is a complete invariant for this query: any
        other exact query with an equal key is certainly a variant.
        """
        return _canonical_fingerprint(self)

    @property
    def canonical_key(self) -> CanonicalKey:
        """The order- and renaming-invariant interning key of the query."""
        return self.canonical_fingerprint[0]

    def is_variant_of(self, other: "ConjunctiveQuery") -> bool:
        """``True`` iff the two queries are equal modulo bijective variable renaming.

        The bijection must map the head of one query onto the head of the
        other (answer terms position-wise) and the body onto the body.
        """
        if self.arity != other.arity:
            return False
        if self.signature != other.signature:
            return False
        if self.body_set == other.body_set and self.answer_terms == other.answer_terms:
            return True
        for bijection in variable_bijections(tuple(self.body_set), tuple(other.body_set)):
            image = tuple(bijection.apply_term(t) for t in self.answer_terms)
            if image == other.answer_terms:
                return True
        return False

    # -- display ---------------------------------------------------------------

    def __repr__(self) -> str:
        head = f"{self.head_name}({', '.join(str(t) for t in self.answer_terms)})"
        body = ", ".join(repr(a) for a in self.body)
        return f"{head} <- {body}"


def boolean_query(body: Iterable[Atom]) -> ConjunctiveQuery:
    """Convenience constructor for a BCQ."""
    return ConjunctiveQuery(body, (), "q")
