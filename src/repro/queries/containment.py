"""Conjunctive-query containment and equivalence.

The classical Chandra–Merlin characterisation: ``q1 ⊑ q2`` (every answer of
``q1`` over every database is an answer of ``q2``) iff there is a
*containment mapping* from ``q2`` to ``q1``: a homomorphism from
``body(q2)`` to ``body(q1)`` that maps the answer terms of ``q2``
position-wise onto the answer terms of ``q1``.

Containment is used to

* remove subsumed CQs from a UCQ rewriting (for a fair size comparison with
  systems that prune subsumed queries),
* implement the chase & back-chase baseline (Section 2), and
* state the correctness tests of the rewriting algorithms.
"""

from __future__ import annotations

from ..logic.homomorphism import find_homomorphism, has_homomorphism
from ..logic.substitution import Substitution
from ..logic.terms import is_constant
from .conjunctive_query import ConjunctiveQuery


def containment_mapping(
    container: ConjunctiveQuery, contained: ConjunctiveQuery
) -> Substitution | None:
    """Find a containment mapping from *container* into *contained*.

    Returns a homomorphism ``h`` with ``h(body(container)) ⊆ body(contained)``
    and ``h(head(container)) = head(contained)``, witnessing
    ``contained ⊑ container``; ``None`` if no such mapping exists.

    The terms of *contained* are treated as frozen (its variables play the
    role of constants), which is exactly the canonical-database argument.
    """
    if container.arity != contained.arity:
        return None
    frozen_body, freezing = contained.freeze()
    partial: dict = {}
    for source_term, target_term in zip(container.answer_terms, contained.answer_terms):
        frozen_target = freezing.apply_term(target_term)
        if is_constant(source_term):
            if source_term != frozen_target:
                return None
            continue
        existing = partial.get(source_term)
        if existing is not None and existing != frozen_target:
            return None
        partial[source_term] = frozen_target
    hom = find_homomorphism(container.body, frozen_body, partial=partial)
    if hom is None:
        return None
    # Translate frozen constants back to the original terms of *contained*.
    unfreeze = {v: k for k, v in freezing.as_dict().items()}
    mapping = {
        key: unfreeze.get(value, value) for key, value in hom.as_dict().items()
    }
    return Substitution(mapping)


def is_contained_in(query: ConjunctiveQuery, other: ConjunctiveQuery) -> bool:
    """``True`` iff ``query ⊑ other`` (every answer of *query* is one of *other*)."""
    return containment_mapping(other, query) is not None


def are_equivalent(query: ConjunctiveQuery, other: ConjunctiveQuery) -> bool:
    """``True`` iff the two CQs are logically equivalent."""
    return is_contained_in(query, other) and is_contained_in(other, query)


def body_maps_into(source: ConjunctiveQuery, target: ConjunctiveQuery) -> bool:
    """``True`` iff ``body(source)`` has a homomorphism into ``body(target)``.

    The answer terms are ignored; the terms of *target* are frozen.  This is
    the check used when pruning queries whose body embeds the body of a
    negative constraint (Section 5.1).
    """
    frozen_body, _ = target.freeze()
    return has_homomorphism(source.body, frozen_body)
