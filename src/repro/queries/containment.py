"""Conjunctive-query containment and equivalence.

The classical Chandra–Merlin characterisation: ``q1 ⊑ q2`` (every answer of
``q1`` over every database is an answer of ``q2``) iff there is a
*containment mapping* from ``q2`` to ``q1``: a homomorphism from
``body(q2)`` to ``body(q1)`` that maps the answer terms of ``q2``
position-wise onto the answer terms of ``q1``.

Containment is used to

* remove subsumed CQs from a UCQ rewriting (for a fair size comparison with
  systems that prune subsumed queries),
* implement the chase & back-chase baseline (Section 2), and
* state the correctness tests of the rewriting algorithms.

Because subsumption removal probes the *same* target query against many
candidate subsumers (quadratically many pairs over a rewriting), the hot
path is index-guided: a :class:`ContainmentIndex` freezes a query once and
pre-computes predicate buckets and argument signatures, so every probe

1. runs a cheap *necessary-condition pre-filter* — the candidate's
   predicates must all occur in the target, its answer-term constants must
   match position-wise, and every candidate atom must have at least one
   signature-compatible target atom under the answer-variable anchoring —
   before any backtracking homomorphism search starts, and
2. reuses the frozen body and its predicate→atoms hash index inside the
   search itself (most-constrained-atom-first ordering is applied by
   :func:`repro.logic.homomorphism.homomorphisms`).

The pre-filters only ever skip pairs for which the homomorphism search
would fail, so indexed and naive containment agree everywhere; the
:class:`SubsumptionStatistics` counters make the saved searches
observable (and are pinned by the regression tests).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..logic.atoms import Atom, Predicate
from ..logic.flat import FlatTarget
from ..logic.homomorphism import find_homomorphism, has_homomorphism
from ..logic.substitution import Substitution
from ..logic.terms import Term, is_constant
from .conjunctive_query import ConjunctiveQuery


@dataclass
class SubsumptionStatistics:
    """Counters describing containment probes (see ``remove_subsumed``).

    ``pairs_considered`` counts every containment question asked;
    ``canonical_fast_paths`` the ones answered by canonical-key equality
    alone; ``skipped_by_prefilter`` the ones refuted by the
    necessary-condition pre-filters; ``homomorphism_searches`` the ones
    that actually reached the backtracking search.  The whole point of
    the index is ``homomorphism_searches < pairs_considered``.
    """

    pairs_considered: int = 0
    canonical_fast_paths: int = 0
    skipped_by_prefilter: int = 0
    homomorphism_searches: int = 0


class ContainmentIndex:
    """Target-side index of one CQ, reused across many containment probes.

    Freezing the query (replacing its variables by fresh constants — the
    canonical-database construction) and indexing the frozen body are
    done once here instead of once per probed pair.  The index also
    carries the argument signatures used by the pre-filter:
    ``(predicate, position, frozen term)`` triples, probed by hash.
    """

    __slots__ = (
        "query",
        "frozen_body",
        "frozen_answer",
        "unfreeze",
        "atoms_by_predicate",
        "argument_signatures",
        "predicate_set",
        "flat_target",
    )

    def __init__(self, query: ConjunctiveQuery) -> None:
        self.query = query
        frozen_body, freezing = query.freeze()
        self.frozen_body: tuple[Atom, ...] = frozen_body
        self.frozen_answer: tuple[Term, ...] = tuple(
            freezing.apply_term(term) for term in query.answer_terms
        )
        self.unfreeze: dict[Term, Term] = {
            value: key for key, value in freezing.as_dict().items()
        }
        atoms_by_predicate: dict[Predicate, list[Atom]] = {}
        signatures: set[tuple[Predicate, int, Term]] = set()
        for atom in frozen_body:
            atoms_by_predicate.setdefault(atom.predicate, []).append(atom)
            for position, term in enumerate(atom.terms):
                signatures.add((atom.predicate, position, term))
        self.atoms_by_predicate: dict[Predicate, tuple[Atom, ...]] = {
            predicate: tuple(atoms)
            for predicate, atoms in atoms_by_predicate.items()
        }
        self.argument_signatures = signatures
        self.predicate_set: frozenset[Predicate] = frozenset(self.atoms_by_predicate)
        # Interned once with the rest of the index: subsumption removal
        # probes this target quadratically often, and the flat search
        # reuses the encoding on every probe (it is frozen, so sharing is
        # safe even across threads).
        self.flat_target = FlatTarget(self.atoms_by_predicate)

    # -- the necessary-condition pre-filter --------------------------------

    def _seed(self, container: ConjunctiveQuery) -> dict[Term, Term] | None:
        """The partial mapping forced by the answer terms, or ``None``.

        A containment mapping must send ``container``'s answer terms
        position-wise onto this query's (frozen) answer terms; constants
        must match and a repeated answer variable must map consistently.
        """
        partial: dict[Term, Term] = {}
        for source_term, frozen_target in zip(
            container.answer_terms, self.frozen_answer
        ):
            if is_constant(source_term):
                if source_term != frozen_target:
                    return None
                continue
            existing = partial.get(source_term)
            if existing is not None and existing != frozen_target:
                return None
            partial[source_term] = frozen_target
        return partial

    def admits_mapping_from(
        self, container: ConjunctiveQuery, partial: dict[Term, Term]
    ) -> bool:
        """Cheap necessary condition for a containment mapping to exist.

        ``True`` is inconclusive; ``False`` proves there is no
        homomorphism from ``container.body`` into the frozen body that
        extends *partial*: some container atom has no target atom of the
        same predicate that agrees with the atom's constants, its
        repeated variables, and the answer-variable anchoring.  Runs in
        time linear in ``container``'s body (hash probes only, no
        backtracking).
        """
        for atom in container.body:
            candidates = self.atoms_by_predicate.get(atom.predicate)
            if not candidates:
                return False
            compatible = False
            for candidate in candidates:
                bound = dict(partial)
                matches = True
                for source_term, target_term in zip(atom.terms, candidate.terms):
                    if is_constant(source_term):
                        if source_term != target_term:
                            matches = False
                            break
                        continue
                    existing = bound.get(source_term)
                    if existing is None:
                        bound[source_term] = target_term
                    elif existing != target_term:
                        matches = False
                        break
                if matches:
                    compatible = True
                    break
            if not compatible:
                return False
        return True


def containment_mapping(
    container: ConjunctiveQuery,
    contained: ConjunctiveQuery,
    *,
    index: ContainmentIndex | None = None,
    statistics: SubsumptionStatistics | None = None,
    prefilter: bool = True,
) -> Substitution | None:
    """Find a containment mapping from *container* into *contained*.

    Returns a homomorphism ``h`` with ``h(body(container)) ⊆ body(contained)``
    and ``h(head(container)) = head(contained)``, witnessing
    ``contained ⊑ container``; ``None`` if no such mapping exists.

    The terms of *contained* are treated as frozen (its variables play the
    role of constants), which is exactly the canonical-database argument.

    *index* may carry a pre-built :class:`ContainmentIndex` of *contained*
    (one is built on the fly otherwise); *statistics* records how the
    probe was resolved; ``prefilter=False`` disables the
    necessary-condition filters (the naive search used for differential
    testing — the outcome is identical either way, only the number of
    backtracking searches differs).
    """
    if container.arity != contained.arity:
        return None
    if index is None:
        index = ContainmentIndex(contained)
    partial = index._seed(container)
    if partial is None:
        # The answer-term anchoring is part of the containment-mapping
        # definition, not an optimisation: both the naive and the indexed
        # path stop here without a search, but only the indexed one books
        # the refutation as a pre-filter skip.
        if statistics is not None and prefilter:
            statistics.skipped_by_prefilter += 1
        return None
    if prefilter and not index.admits_mapping_from(container, partial):
        if statistics is not None:
            statistics.skipped_by_prefilter += 1
        return None
    if statistics is not None:
        statistics.homomorphism_searches += 1
    hom = find_homomorphism(
        container.body,
        index.frozen_body,
        partial=partial,
        index=index.atoms_by_predicate,
        flat_target=index.flat_target,
    )
    if hom is None:
        return None
    # Translate frozen constants back to the original terms of *contained*.
    unfreeze = index.unfreeze
    mapping = {
        key: unfreeze.get(value, value) for key, value in hom.as_dict().items()
    }
    return Substitution(mapping)


def is_contained_in(
    query: ConjunctiveQuery,
    other: ConjunctiveQuery,
    *,
    index: ContainmentIndex | None = None,
    statistics: SubsumptionStatistics | None = None,
    prefilter: bool = True,
) -> bool:
    """``True`` iff ``query ⊑ other`` (every answer of *query* is one of *other*).

    *index*, when given, must be the :class:`ContainmentIndex` of *query*
    (the containment target).  With ``prefilter`` on, equal *exact*
    canonical fingerprints short-circuit the probe: two exact queries
    with one canonical key are variants, hence equivalent, hence
    mutually contained — no search needed.
    """
    if statistics is not None:
        statistics.pairs_considered += 1
    if prefilter and query.arity == other.arity:
        query_key, query_exact = query.canonical_fingerprint
        other_key, other_exact = other.canonical_fingerprint
        if query_exact and other_exact and query_key == other_key:
            if statistics is not None:
                statistics.canonical_fast_paths += 1
            return True
    return (
        containment_mapping(
            other, query, index=index, statistics=statistics, prefilter=prefilter
        )
        is not None
    )


def are_equivalent(query: ConjunctiveQuery, other: ConjunctiveQuery) -> bool:
    """``True`` iff the two CQs are logically equivalent."""
    return is_contained_in(query, other) and is_contained_in(other, query)


def body_maps_into(source: ConjunctiveQuery, target: ConjunctiveQuery) -> bool:
    """``True`` iff ``body(source)`` has a homomorphism into ``body(target)``.

    The answer terms are ignored; the terms of *target* are frozen.  This is
    the check used when pruning queries whose body embeds the body of a
    negative constraint (Section 5.1).
    """
    frozen_body, _ = target.freeze()
    return has_homomorphism(source.body, frozen_body)
