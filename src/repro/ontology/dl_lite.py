"""DL-Lite_R concepts, roles and TBox axioms.

The evaluation of the paper (Section 7) uses DL-Lite_R ontologies: the member
of the DL-Lite family underlying the OWL 2 QL profile.  A DL-Lite_R TBox is
built from

* *atomic concepts* ``A`` and *atomic roles* ``P``;
* *basic roles* ``R ::= P | P⁻`` (a role or its inverse);
* *basic concepts* ``B ::= A | ∃R`` (an atomic concept or an unqualified
  existential restriction);
* *concept inclusions* ``B1 ⊑ B2`` and ``B1 ⊑ ¬B2``;
* *role inclusions* ``R1 ⊑ R2`` and ``R1 ⊑ ¬R2``;
* (in DL-Lite_F / DL-Lite_A) *functionality assertions* ``(funct R)``.

Every positive axiom corresponds to a **linear TGD** and every negative axiom
to a **negative constraint**, which is how the paper feeds these ontologies to
the Datalog± rewriting machinery; the translation itself lives in
:mod:`repro.ontology.translation`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterable, Iterator, Sequence, Union


# ---------------------------------------------------------------------------
# Roles
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AtomicRole:
    """An atomic role (binary predicate), e.g. ``hasStock``."""

    name: str

    def inverse(self) -> "InverseRole":
        """The inverse role ``name⁻``."""
        return InverseRole(self)

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class InverseRole:
    """The inverse ``P⁻`` of an atomic role ``P``."""

    role: AtomicRole

    def inverse(self) -> AtomicRole:
        """The inverse of an inverse is the original role."""
        return self.role

    @property
    def name(self) -> str:
        """The name of the underlying atomic role."""
        return self.role.name

    def __repr__(self) -> str:
        return f"{self.role.name}^-"


BasicRole = Union[AtomicRole, InverseRole]


def is_inverse(role: BasicRole) -> bool:
    """``True`` iff *role* is an inverse role."""
    return isinstance(role, InverseRole)


def role_name(role: BasicRole) -> str:
    """The underlying predicate name of a basic role."""
    return role.name


# ---------------------------------------------------------------------------
# Concepts
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AtomicConcept:
    """An atomic concept (unary predicate), e.g. ``Stock``."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ExistentialRestriction:
    """An unqualified existential restriction ``∃R`` over a basic role ``R``."""

    role: BasicRole

    def __repr__(self) -> str:
        return f"exists {self.role!r}"


BasicConcept = Union[AtomicConcept, ExistentialRestriction]


def exists(role: BasicRole | str) -> ExistentialRestriction:
    """``∃R`` for a basic role (a bare string denotes an atomic role)."""
    if isinstance(role, str):
        role = AtomicRole(role)
    return ExistentialRestriction(role)


def exists_inverse(role: AtomicRole | str) -> ExistentialRestriction:
    """``∃R⁻`` for an atomic role (a bare string denotes the role name)."""
    if isinstance(role, str):
        role = AtomicRole(role)
    return ExistentialRestriction(role.inverse())


# ---------------------------------------------------------------------------
# Axioms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ConceptInclusion:
    """A concept inclusion ``lhs ⊑ rhs`` (or ``lhs ⊑ ¬rhs`` when *negated*)."""

    lhs: BasicConcept
    rhs: BasicConcept
    negated: bool = False

    def __repr__(self) -> str:
        negation = "not " if self.negated else ""
        return f"{self.lhs!r} [= {negation}{self.rhs!r}"


@dataclass(frozen=True)
class RoleInclusion:
    """A role inclusion ``lhs ⊑ rhs`` (or ``lhs ⊑ ¬rhs`` when *negated*)."""

    lhs: BasicRole
    rhs: BasicRole
    negated: bool = False

    def __repr__(self) -> str:
        negation = "not " if self.negated else ""
        return f"{self.lhs!r} [= {negation}{self.rhs!r}"


@dataclass(frozen=True)
class Functionality:
    """A functionality assertion ``(funct R)`` (DL-Lite_F / DL-Lite_A only)."""

    role: BasicRole

    def __repr__(self) -> str:
        return f"funct({self.role!r})"


Axiom = Union[ConceptInclusion, RoleInclusion, Functionality]


# ---------------------------------------------------------------------------
# Ontologies (TBoxes)
# ---------------------------------------------------------------------------


@dataclass
class DLLiteOntology:
    """A DL-Lite_R (optionally DL-Lite_A) TBox: a named collection of axioms."""

    name: str = "ontology"
    axioms: list[Axiom] = field(default_factory=list)

    # -- construction helpers ------------------------------------------------

    def add(self, axiom: Axiom) -> "DLLiteOntology":
        """Add an axiom (in place) and return ``self`` for chaining."""
        self.axioms.append(axiom)
        self.__dict__.pop("atomic_concepts", None)
        self.__dict__.pop("atomic_roles", None)
        return self

    def extend(self, axioms: Iterable[Axiom]) -> "DLLiteOntology":
        """Add several axioms (in place) and return ``self``."""
        for axiom in axioms:
            self.add(axiom)
        return self

    def subclass(
        self, lhs: BasicConcept | str, rhs: BasicConcept | str
    ) -> "DLLiteOntology":
        """Add the concept inclusion ``lhs ⊑ rhs`` (strings denote atomic concepts)."""
        return self.add(ConceptInclusion(_concept(lhs), _concept(rhs)))

    def disjoint_concepts(
        self, lhs: BasicConcept | str, rhs: BasicConcept | str
    ) -> "DLLiteOntology":
        """Add the negative inclusion ``lhs ⊑ ¬rhs``."""
        return self.add(ConceptInclusion(_concept(lhs), _concept(rhs), negated=True))

    def subrole(self, lhs: BasicRole | str, rhs: BasicRole | str) -> "DLLiteOntology":
        """Add the role inclusion ``lhs ⊑ rhs`` (strings denote atomic roles)."""
        return self.add(RoleInclusion(_role(lhs), _role(rhs)))

    def disjoint_roles(self, lhs: BasicRole | str, rhs: BasicRole | str) -> "DLLiteOntology":
        """Add the negative role inclusion ``lhs ⊑ ¬rhs``."""
        return self.add(RoleInclusion(_role(lhs), _role(rhs), negated=True))

    def domain(self, role: BasicRole | str, concept: BasicConcept | str) -> "DLLiteOntology":
        """Declare the domain of a role: ``∃R ⊑ C``."""
        return self.add(ConceptInclusion(ExistentialRestriction(_role(role)), _concept(concept)))

    def range(self, role: BasicRole | str, concept: BasicConcept | str) -> "DLLiteOntology":
        """Declare the range of a role: ``∃R⁻ ⊑ C``."""
        basic = _role(role)
        inverted = basic.inverse() if isinstance(basic, AtomicRole) else basic.role
        return self.add(ConceptInclusion(ExistentialRestriction(inverted), _concept(concept)))

    def mandatory_participation(
        self, concept: BasicConcept | str, role: BasicRole | str
    ) -> "DLLiteOntology":
        """Declare ``C ⊑ ∃R``: every member of *concept* participates in *role*."""
        return self.add(ConceptInclusion(_concept(concept), ExistentialRestriction(_role(role))))

    def functional(self, role: BasicRole | str) -> "DLLiteOntology":
        """Add the functionality assertion ``(funct R)``."""
        return self.add(Functionality(_role(role)))

    # -- views ----------------------------------------------------------------

    def __iter__(self) -> Iterator[Axiom]:
        return iter(self.axioms)

    def __len__(self) -> int:
        return len(self.axioms)

    @property
    def concept_inclusions(self) -> tuple[ConceptInclusion, ...]:
        """All concept inclusions (positive and negative)."""
        return tuple(a for a in self.axioms if isinstance(a, ConceptInclusion))

    @property
    def role_inclusions(self) -> tuple[RoleInclusion, ...]:
        """All role inclusions (positive and negative)."""
        return tuple(a for a in self.axioms if isinstance(a, RoleInclusion))

    @property
    def functionality_assertions(self) -> tuple[Functionality, ...]:
        """All functionality assertions."""
        return tuple(a for a in self.axioms if isinstance(a, Functionality))

    @property
    def positive_axioms(self) -> tuple[Axiom, ...]:
        """Axioms that translate to TGDs."""
        return tuple(
            a
            for a in self.axioms
            if isinstance(a, (ConceptInclusion, RoleInclusion)) and not a.negated
        )

    @property
    def negative_axioms(self) -> tuple[Axiom, ...]:
        """Axioms that translate to negative constraints."""
        return tuple(
            a
            for a in self.axioms
            if isinstance(a, (ConceptInclusion, RoleInclusion)) and a.negated
        )

    @cached_property
    def atomic_concepts(self) -> frozenset[AtomicConcept]:
        """All atomic concepts mentioned by the TBox."""
        found: set[AtomicConcept] = set()
        for axiom in self.axioms:
            if isinstance(axiom, ConceptInclusion):
                for side in (axiom.lhs, axiom.rhs):
                    if isinstance(side, AtomicConcept):
                        found.add(side)
        return frozenset(found)

    @cached_property
    def atomic_roles(self) -> frozenset[AtomicRole]:
        """All atomic roles mentioned by the TBox."""
        found: set[AtomicRole] = set()
        for axiom in self.axioms:
            if isinstance(axiom, ConceptInclusion):
                for side in (axiom.lhs, axiom.rhs):
                    if isinstance(side, ExistentialRestriction):
                        found.add(_atomic(side.role))
            elif isinstance(axiom, RoleInclusion):
                found.add(_atomic(axiom.lhs))
                found.add(_atomic(axiom.rhs))
            elif isinstance(axiom, Functionality):
                found.add(_atomic(axiom.role))
        return frozenset(found)

    def is_dl_lite_r(self) -> bool:
        """``True`` iff the TBox contains no functionality assertion."""
        return not self.functionality_assertions

    def __repr__(self) -> str:
        return f"DLLiteOntology({self.name!r}: {len(self.axioms)} axioms)"


def ontology(name: str, axioms: Sequence[Axiom] = ()) -> DLLiteOntology:
    """Convenience constructor for a :class:`DLLiteOntology`."""
    return DLLiteOntology(name=name, axioms=list(axioms))


# ---------------------------------------------------------------------------
# coercion helpers
# ---------------------------------------------------------------------------


def _concept(value: BasicConcept | str) -> BasicConcept:
    """Coerce a string to an atomic concept; pass basic concepts through."""
    if isinstance(value, str):
        return AtomicConcept(value)
    return value


def _role(value: BasicRole | str) -> BasicRole:
    """Coerce a string to an atomic role; pass basic roles through."""
    if isinstance(value, str):
        return AtomicRole(value)
    return value


def _atomic(role: BasicRole) -> AtomicRole:
    """The atomic role underlying a basic role."""
    return role.role if isinstance(role, InverseRole) else role
