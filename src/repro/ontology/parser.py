"""A compact textual syntax for DL-Lite_R TBoxes.

The workloads of the evaluation are written (and can be exported) in a small
line-oriented syntax, one axiom per line::

    # VICODI excerpt
    Country [= Location
    Military-Person [= Person
    exists hasRole [= Individual
    exists hasRole- [= Role
    Person [= exists hasRole
    hasChildOrganisation [= related
    Event [= not Location
    funct hasId

Grammar (one axiom per non-comment line):

* ``<concept> [= <concept>`` — concept inclusion;
* ``<concept> [= not <concept>`` — concept disjointness;
* ``<role> [= <role>`` / ``<role> [= not <role>`` — role inclusion /
  disjointness (a side is a *role expression* when it is declared with
  ``role`` or ends with ``-``);
* ``funct <role>`` — functionality assertion;
* ``concept <name> ...`` / ``role <name> ...`` — optional explicit
  declarations that disambiguate bare names.

Concept expressions are a bare name (atomic concept) or ``exists <role>`` /
``exists <role>-`` (unqualified existential restriction).  Role expressions
are a bare name or ``<name>-`` (inverse).
"""

from __future__ import annotations

from typing import Iterable

from .dl_lite import (
    AtomicConcept,
    AtomicRole,
    BasicConcept,
    BasicRole,
    ConceptInclusion,
    DLLiteOntology,
    ExistentialRestriction,
    Functionality,
    InverseRole,
    RoleInclusion,
)


class DLLiteSyntaxError(ValueError):
    """Raised when a TBox line cannot be parsed."""

    def __init__(self, line_number: int, line: str, reason: str) -> None:
        super().__init__(f"line {line_number}: {reason}: {line!r}")
        self.line_number = line_number
        self.line = line
        self.reason = reason


_SUBSUMPTION = "[="
_NEGATION = "not"
_EXISTS = "exists"
_FUNCT = "funct"


def parse_ontology(text: str, name: str = "ontology") -> DLLiteOntology:
    """Parse a whole TBox from its textual form."""
    lines = text.splitlines()
    declared_roles, declared_concepts = _collect_declarations(lines)
    inferred_roles = declared_roles | _infer_roles(lines)
    tbox = DLLiteOntology(name=name)
    for line_number, raw in enumerate(lines, start=1):
        line = _strip(raw)
        if not line or line.split()[0] in ("concept", "role"):
            continue
        tbox.add(_parse_axiom(line, line_number, inferred_roles, declared_concepts))
    return tbox


def parse_axiom(line: str, roles: Iterable[str] = ()) -> object:
    """Parse a single axiom line (role names can be supplied explicitly)."""
    return _parse_axiom(_strip(line), 1, set(roles) | _infer_roles([line]), set())


def ontology_to_text(tbox: DLLiteOntology) -> str:
    """Render a TBox back into the textual syntax (round-trips with the parser)."""
    lines: list[str] = [f"# {tbox.name}"]
    role_names = sorted(role.name for role in tbox.atomic_roles)
    if role_names:
        lines.append("role " + " ".join(role_names))
    for axiom in tbox.axioms:
        if isinstance(axiom, ConceptInclusion):
            rhs = _concept_to_text(axiom.rhs)
            if axiom.negated:
                rhs = f"{_NEGATION} {rhs}"
            lines.append(f"{_concept_to_text(axiom.lhs)} {_SUBSUMPTION} {rhs}")
        elif isinstance(axiom, RoleInclusion):
            rhs = _role_to_text(axiom.rhs)
            if axiom.negated:
                rhs = f"{_NEGATION} {rhs}"
            lines.append(f"{_role_to_text(axiom.lhs)} {_SUBSUMPTION} {rhs}")
        elif isinstance(axiom, Functionality):
            lines.append(f"{_FUNCT} {_role_to_text(axiom.role)}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# internals
# ---------------------------------------------------------------------------


def _strip(raw: str) -> str:
    """Drop comments and surrounding whitespace."""
    return raw.split("#", 1)[0].strip()


def _collect_declarations(lines: Iterable[str]) -> tuple[set[str], set[str]]:
    """Names explicitly declared as roles / concepts."""
    roles: set[str] = set()
    concepts: set[str] = set()
    for raw in lines:
        line = _strip(raw)
        if not line:
            continue
        tokens = line.split()
        if tokens[0] == "role":
            roles.update(tokens[1:])
        elif tokens[0] == "concept":
            concepts.update(tokens[1:])
    return roles, concepts


def _infer_roles(lines: Iterable[str]) -> set[str]:
    """Names that must denote roles: used with ``exists``, ``-`` or ``funct``."""
    roles: set[str] = set()
    for raw in lines:
        line = _strip(raw)
        if not line:
            continue
        tokens = line.replace(_SUBSUMPTION, " ").split()
        for index, token in enumerate(tokens):
            if token == _EXISTS and index + 1 < len(tokens):
                roles.add(tokens[index + 1].rstrip("-"))
            elif token == _FUNCT and index + 1 < len(tokens):
                roles.add(tokens[index + 1].rstrip("-"))
            elif token.endswith("-") and len(token) > 1:
                roles.add(token.rstrip("-"))
    return roles


def _parse_axiom(
    line: str, line_number: int, roles: set[str], concepts: set[str]
) -> object:
    """Parse one (stripped, non-empty) axiom line."""
    tokens = line.split()
    if tokens[0] == _FUNCT:
        if len(tokens) != 2:
            raise DLLiteSyntaxError(line_number, line, "expected 'funct <role>'")
        return Functionality(_parse_role(tokens[1]))
    if _SUBSUMPTION not in line:
        raise DLLiteSyntaxError(line_number, line, f"missing '{_SUBSUMPTION}'")
    lhs_text, rhs_text = (part.strip() for part in line.split(_SUBSUMPTION, 1))
    if _EXISTS in (lhs_text, rhs_text):
        raise DLLiteSyntaxError(line_number, line, "missing role after 'exists'")
    negated = False
    if rhs_text.startswith(_NEGATION + " "):
        negated = True
        rhs_text = rhs_text[len(_NEGATION) :].strip()
    lhs_is_role = _looks_like_role(lhs_text, roles, concepts)
    rhs_is_role = _looks_like_role(rhs_text, roles, concepts)
    if lhs_is_role != rhs_is_role:
        # One side is unambiguously a role; a bare, undeclared name on the
        # other side can only make the axiom well-formed if it denotes a role
        # too (DL-Lite has no concept/role inclusions), so coerce it.
        lhs_is_role, rhs_is_role = _coerce_bare_side(
            lhs_text, lhs_is_role, rhs_text, rhs_is_role, concepts
        )
    if lhs_is_role != rhs_is_role:
        raise DLLiteSyntaxError(
            line_number, line, "cannot mix a role and a concept in one inclusion"
        )
    if lhs_is_role:
        return RoleInclusion(_parse_role(lhs_text), _parse_role(rhs_text), negated=negated)
    return ConceptInclusion(
        _parse_concept(lhs_text, line_number, line),
        _parse_concept(rhs_text, line_number, line),
        negated=negated,
    )


def _coerce_bare_side(
    lhs_text: str,
    lhs_is_role: bool,
    rhs_text: str,
    rhs_is_role: bool,
    concepts: set[str],
) -> tuple[bool, bool]:
    """Promote a bare, undeclared name to a role when the other side is a role."""

    def is_bare_and_undeclared(expression: str) -> bool:
        return (
            not expression.startswith(_EXISTS + " ")
            and not expression.endswith("-")
            and expression not in concepts
        )

    if rhs_is_role and not lhs_is_role and is_bare_and_undeclared(lhs_text):
        return True, rhs_is_role
    if lhs_is_role and not rhs_is_role and is_bare_and_undeclared(rhs_text):
        return lhs_is_role, True
    return lhs_is_role, rhs_is_role


def _looks_like_role(expression: str, roles: set[str], concepts: set[str]) -> bool:
    """Decide whether a bare side of an inclusion denotes a role."""
    if expression.startswith(_EXISTS + " "):
        return False
    name = expression.rstrip("-")
    if expression.endswith("-"):
        return True
    if name in concepts:
        return False
    return name in roles


def _parse_role(text: str) -> BasicRole:
    """Parse ``name`` or ``name-`` into a basic role."""
    text = text.strip()
    if text.endswith("-"):
        return InverseRole(AtomicRole(text[:-1]))
    return AtomicRole(text)


def _parse_concept(text: str, line_number: int, line: str) -> BasicConcept:
    """Parse ``name`` or ``exists role[-]`` into a basic concept."""
    text = text.strip()
    if text.startswith(_EXISTS):
        remainder = text[len(_EXISTS) :].strip()
        if not remainder:
            raise DLLiteSyntaxError(line_number, line, "missing role after 'exists'")
        return ExistentialRestriction(_parse_role(remainder))
    if " " in text:
        raise DLLiteSyntaxError(line_number, line, f"unexpected token in concept {text!r}")
    return AtomicConcept(text)


def _concept_to_text(concept: BasicConcept) -> str:
    """Textual form of a basic concept."""
    if isinstance(concept, AtomicConcept):
        return concept.name
    return f"{_EXISTS} {_role_to_text(concept.role)}"


def _role_to_text(role: BasicRole) -> str:
    """Textual form of a basic role."""
    if isinstance(role, InverseRole):
        return f"{role.name}-"
    return role.name
