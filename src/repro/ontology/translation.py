"""Translation of DL-Lite_R TBoxes into Datalog± theories.

Each positive DL-Lite axiom corresponds to exactly one **linear TGD** over
unary (concept) and binary (role) predicates, and each negative axiom to a
**negative constraint**; functionality assertions become key dependencies.
The translation below is the standard one (see Section 2 and Section 4.2 of
the paper, and Calì–Gottlob–Lukasiewicz PODS'09):

====================  =============================================
DL-Lite axiom         Datalog± rule
====================  =============================================
``A ⊑ B``             ``A(X) → B(X)``
``A ⊑ ∃R``            ``A(X) → ∃Y R(X, Y)``
``A ⊑ ∃R⁻``           ``A(X) → ∃Y R(Y, X)``
``∃R ⊑ A``            ``R(X, Y) → A(X)``
``∃R⁻ ⊑ A``           ``R(X, Y) → A(Y)``
``∃R ⊑ ∃S``           ``R(X, Y) → ∃Z S(X, Z)`` (and the inverse variants)
``R ⊑ S``             ``R(X, Y) → S(X, Y)``
``R ⊑ S⁻``            ``R(X, Y) → S(Y, X)``
``B1 ⊑ ¬B2``          ``atom(B1, X), atom(B2, X) → ⊥``
``R1 ⊑ ¬R2``          ``R1(X, Y), R2(X, Y) → ⊥`` (modulo inverses)
``(funct R)``         ``key(R) = {1}``;  ``(funct R⁻)`` → ``key(R) = {2}``
====================  =============================================

The resulting TGD set is always linear (and therefore FO-rewritable), which
is why the DL-Lite ontologies of Table 1 can be processed by TGD-rewrite*.
"""

from __future__ import annotations

from typing import Iterable

from ..dependencies.constraints import KeyDependency, NegativeConstraint
from ..dependencies.tgd import TGD
from ..dependencies.theory import OntologyTheory
from ..logic.atoms import Atom, Predicate
from ..logic.terms import Variable
from .dl_lite import (
    AtomicConcept,
    AtomicRole,
    BasicConcept,
    BasicRole,
    ConceptInclusion,
    DLLiteOntology,
    ExistentialRestriction,
    Functionality,
    InverseRole,
    RoleInclusion,
)

_X = Variable("X")
_Y = Variable("Y")
_Z = Variable("Z")


def concept_atom(concept: BasicConcept, subject: Variable, fresh: Variable) -> Atom:
    """The atom asserting membership of *subject* in a basic concept.

    For an existential restriction the second role argument is the *fresh*
    variable (existentially quantified when the atom occurs in a rule head,
    plain otherwise).
    """
    if isinstance(concept, AtomicConcept):
        return Atom(Predicate(concept.name, 1), (subject,))
    role = concept.role
    if isinstance(role, InverseRole):
        return Atom(Predicate(role.name, 2), (fresh, subject))
    return Atom(Predicate(role.name, 2), (subject, fresh))


def role_atom(role: BasicRole, first: Variable, second: Variable) -> Atom:
    """The binary atom for a basic role, swapping arguments for inverses."""
    if isinstance(role, InverseRole):
        return Atom(Predicate(role.name, 2), (second, first))
    return Atom(Predicate(role.name, 2), (first, second))


def concept_inclusion_to_tgd(axiom: ConceptInclusion, label: str = "") -> TGD:
    """Translate a positive concept inclusion ``B1 ⊑ B2`` into a linear TGD."""
    if axiom.negated:
        raise ValueError(f"{axiom!r} is a negative inclusion; it yields a constraint")
    body = concept_atom(axiom.lhs, _X, _Y)
    head = concept_atom(axiom.rhs, _X, _Z)
    return TGD((body,), (head,), label=label)


def role_inclusion_to_tgd(axiom: RoleInclusion, label: str = "") -> TGD:
    """Translate a positive role inclusion ``R1 ⊑ R2`` into a (full) linear TGD."""
    if axiom.negated:
        raise ValueError(f"{axiom!r} is a negative inclusion; it yields a constraint")
    body = role_atom(axiom.lhs, _X, _Y)
    head = role_atom(axiom.rhs, _X, _Y)
    return TGD((body,), (head,), label=label)


def concept_disjointness_to_constraint(
    axiom: ConceptInclusion, label: str = ""
) -> NegativeConstraint:
    """Translate ``B1 ⊑ ¬B2`` into the NC ``B1(X), B2(X) → ⊥``."""
    if not axiom.negated:
        raise ValueError(f"{axiom!r} is a positive inclusion; it yields a TGD")
    left = concept_atom(axiom.lhs, _X, _Y)
    right = concept_atom(axiom.rhs, _X, _Z)
    return NegativeConstraint((left, right), label=label)


def role_disjointness_to_constraint(
    axiom: RoleInclusion, label: str = ""
) -> NegativeConstraint:
    """Translate ``R1 ⊑ ¬R2`` into the NC ``R1(X, Y), R2(X, Y) → ⊥``."""
    if not axiom.negated:
        raise ValueError(f"{axiom!r} is a positive inclusion; it yields a TGD")
    left = role_atom(axiom.lhs, _X, _Y)
    right = role_atom(axiom.rhs, _X, _Y)
    return NegativeConstraint((left, right), label=label)


def functionality_to_key(axiom: Functionality, label: str = "") -> KeyDependency:
    """Translate ``(funct R)`` into ``key(R) = {1}`` (``{2}`` for an inverse)."""
    role = axiom.role
    predicate = Predicate(role.name, 2)
    position = 2 if isinstance(role, InverseRole) else 1
    return KeyDependency(predicate, (position,), label=label)


def to_theory(tbox: DLLiteOntology) -> OntologyTheory:
    """Translate a whole DL-Lite TBox into an :class:`OntologyTheory`.

    Every produced TGD carries a label ``<ontology>#<index>`` so that
    rewritings and dependency graphs remain traceable to the original axioms.
    """
    theory = OntologyTheory(name=tbox.name)
    for index, axiom in enumerate(tbox.axioms, start=1):
        label = f"{tbox.name}#{index}"
        if isinstance(axiom, ConceptInclusion):
            if axiom.negated:
                theory.add_negative_constraint(
                    concept_disjointness_to_constraint(axiom, label)
                )
            else:
                theory.add_tgd(concept_inclusion_to_tgd(axiom, label))
        elif isinstance(axiom, RoleInclusion):
            if axiom.negated:
                theory.add_negative_constraint(
                    role_disjointness_to_constraint(axiom, label)
                )
            else:
                theory.add_tgd(role_inclusion_to_tgd(axiom, label))
        elif isinstance(axiom, Functionality):
            theory.add_key(functionality_to_key(axiom, label))
        else:  # pragma: no cover - exhaustive over the Axiom union
            raise TypeError(f"unsupported axiom type: {axiom!r}")
    return theory


def to_tgds(tbox: DLLiteOntology) -> list[TGD]:
    """The TGDs of the translated TBox (ignoring NCs and keys)."""
    return list(to_theory(tbox).tgds)


def schema_predicates_of(tbox: DLLiteOntology) -> frozenset[Predicate]:
    """The unary/binary predicates of the relational schema induced by a TBox."""
    predicates: set[Predicate] = set()
    for concept in tbox.atomic_concepts:
        predicates.add(Predicate(concept.name, 1))
    for role in tbox.atomic_roles:
        predicates.add(Predicate(role.name, 2))
    return frozenset(predicates)


def tbox_from_tgds(rules: Iterable[TGD], name: str = "ontology") -> DLLiteOntology:
    """Best-effort inverse translation: linear TGDs over unary/binary predicates.

    Useful for round-trip tests and for exporting programmatically-built rule
    sets in DL syntax.  Raises :class:`ValueError` for rules that have no
    DL-Lite counterpart (higher arities, multiple body atoms, qualified
    existentials).
    """
    tbox = DLLiteOntology(name=name)
    for rule in rules:
        tbox.add(_tgd_to_axiom(rule))
    return tbox


def _tgd_to_axiom(rule: TGD) -> ConceptInclusion | RoleInclusion:
    """Translate one linear TGD back into a DL-Lite axiom (see :func:`tbox_from_tgds`)."""
    if len(rule.body) != 1 or len(rule.head) != 1:
        raise ValueError(f"{rule!r} is not a linear single-head TGD")
    body, head = rule.body[0], rule.head[0]
    if body.arity not in (1, 2) or head.arity not in (1, 2):
        raise ValueError(f"{rule!r} uses predicates of arity > 2")
    if body.arity == 2 and head.arity == 2 and not rule.existential_variables:
        lhs = _role_from_atom(body, rule)
        rhs = _role_from_atom(head, rule)
        if set(body.terms) != set(head.terms):
            raise ValueError(f"{rule!r} does not correspond to a role inclusion")
        return RoleInclusion(lhs, rhs)
    lhs_concept = _concept_from_atom(body, rule, side="body")
    rhs_concept = _concept_from_atom(head, rule, side="head")
    return ConceptInclusion(lhs_concept, rhs_concept)


def _role_from_atom(atom: Atom, rule: TGD) -> BasicRole:
    """A basic role for a binary atom, inverted when the arguments are swapped."""
    reference = rule.body[0]
    role = AtomicRole(atom.name)
    if atom is reference:
        return role
    return role if atom.terms == reference.terms else InverseRole(role)


def _concept_from_atom(atom: Atom, rule: TGD, side: str) -> BasicConcept:
    """A basic concept for a body or head atom of a DL-shaped linear TGD."""
    if atom.arity == 1:
        return AtomicConcept(atom.name)
    # Binary atom: ∃R or ∃R⁻ depending on where the frontier variable sits.
    frontier = rule.frontier
    first, second = atom.terms
    role = AtomicRole(atom.name)
    if side == "body":
        # The frontier variable marks the "subject" argument.
        if first in frontier:
            return ExistentialRestriction(role)
        if second in frontier:
            return ExistentialRestriction(InverseRole(role))
        raise ValueError(f"cannot interpret body atom {atom!r} of {rule!r}")
    if first in frontier:
        return ExistentialRestriction(role)
    if second in frontier:
        return ExistentialRestriction(InverseRole(role))
    raise ValueError(f"cannot interpret head atom {atom!r} of {rule!r}")
