"""Canonical forms and interning keys for conjunctive queries.

The rewriting algorithms of the paper must never explore the same CQ twice
*up to variable renaming*: ``QREW`` in Algorithm 1 is a set of queries modulo
variants.  Deciding "is this CQ a variant of one we already have?" with
pairwise isomorphism checks is quadratic in the size of the rewriting, and
the rewriting can hold hundreds of CQs (Table 1), so the check dominates the
hot path.

This module computes an **order- and renaming-invariant canonical key** for a
CQ so that variant lookup becomes a hash-table probe:

* two variant queries (equal modulo a head-preserving bijective variable
  renaming) are guaranteed to receive **equal** keys, and
* two queries with equal keys are *almost always* variants — the rare
  collisions (structurally symmetric but non-isomorphic queries, e.g.
  ``p(X,Y), p(Y,X)`` versus ``p(X,X), p(Y,Y)``) are resolved by the caller
  with an explicit :meth:`ConjunctiveQuery.is_variant_of` check.

The key is built in two stages:

1. **Colour refinement** (:func:`refine_variable_colors`): every variable is
   assigned an integer colour by iterated Weisfeiler–Leman-style refinement
   over the query's incidence structure.  The initial colour records where
   the variable occurs in the head and how often it occurs overall; each
   round refines a colour with the sorted multiset of the variable's
   occurrences ``(predicate, position, colours of the co-occurring terms)``.
   The computation never looks at variable *names* or at the order of body
   atoms, so it is equivariant under renaming and reordering.

2. **De Bruijn-style normalisation** (:func:`canonical_fingerprint`): body
   atoms are serialised with the final colours and sorted; colours are then
   replaced by consecutive indices in order of first occurrence (head first,
   then the sorted body), exactly like De Bruijn indices replace
   bound-variable names by binder depth.  The result is a nested tuple of
   strings and integers — hashable, comparable, and independent of the
   original presentation.

When refinement ends with every variable in its own colour class (a
*discrete* colouring), the key is a complete invariant: two discrete queries
with equal keys are provably variants (the colour-matching renaming is
forced), so the interning store can skip the confirmation step entirely.
:func:`canonical_fingerprint` reports this as its ``exact`` flag.

The same keys make rewritings **content-addressable** beyond a single
process: the canonical key (serialised via ``repr``, which is deterministic
for these nested tuples of strings and ints) addresses entries of the
persistent :class:`repro.cache.store.RewritingStore`.  The invariants any
such use must respect are exactly the two above: *variants always share a
key* (so a key may stand for a whole variant class), and *key equality
proves varianthood only when both colourings are discrete* (so non-exact
entries must be confirmed against a stored representative before being
served).  Exactness itself is a variant invariant — two variants always
agree on the flag — which lets both :class:`repro.queries.ucq.QuerySet` and
the store reject exact/non-exact pairs without any isomorphism search.

Functions here are deliberately duck-typed over anything exposing ``body``
(an iterable of atoms) and ``answer_terms`` so that :mod:`repro.logic` does
not import the higher :mod:`repro.queries` layer.
"""

from __future__ import annotations

from typing import Sequence

from .atoms import Atom
from .flat import encode_query, refine_colors
from .terms import Term, Variable, is_variable

#: A canonical key: ``("cq", body size, head labels, body atom labels)``.
CanonicalKey = tuple

#: A canonical key plus the exactness flag of the underlying colouring.
CanonicalFingerprint = tuple[CanonicalKey, bool]


def _prepare(query) -> tuple[
    list[Variable],
    dict[Variable, int],
    dict[Term, int],
    list[tuple[tuple[str, int], tuple[tuple[bool, object], ...]]],
]:
    """Shared pre-pass: variable colours, constant ids and atom templates.

    Variables receive their *initial* colour (rank of ``(head positions,
    occurrence count)``); non-variable terms receive a negative id ranked by
    ``repr`` so that variable colours (``>= 0``) and constant ids (``< 0``)
    never clash inside a refinement context.
    """
    body = tuple(query.body)
    answer_terms = tuple(query.answer_terms)

    head_positions: dict[Variable, list[int]] = {}
    counts: dict[Variable, int] = {}
    ground_terms: set[Term] = set()
    for index, term in enumerate(answer_terms):
        if is_variable(term):
            head_positions.setdefault(term, []).append(index)
            counts[term] = counts.get(term, 0) + 1
        else:
            ground_terms.add(term)
    for atom in body:
        for term in atom.terms:
            if is_variable(term):
                head_positions.setdefault(term, [])
                counts[term] = counts.get(term, 0) + 1
            else:
                ground_terms.add(term)

    variables = list(head_positions)
    # ``repr`` distinguishes Const('1') from Const(1) and Null(1); ranking the
    # reprs keeps constant ids equal across variants (which share constants).
    constant_ids: dict[Term, int] = {
        term: -1 - rank for rank, term in enumerate(sorted(ground_terms, key=repr))
    }

    signatures = {
        v: (tuple(head_positions[v]), counts.get(v, 0)) for v in variables
    }
    colors = _rank(signatures)

    templates = [
        (
            (atom.name, atom.arity),
            tuple(
                (True, term) if is_variable(term) else (False, constant_ids[term])
                for term in atom.terms
            ),
        )
        for atom in body
    ]
    return variables, colors, constant_ids, templates


def _rank(signatures: dict[Variable, object]) -> dict[Variable, int]:
    """Replace structural signatures by dense integer colours.

    Signatures are ranked by their sorted order, so equal signatures map to
    the same colour and the numbering is independent of variable identity.
    """
    ordered = sorted(set(signatures.values()))
    index = {signature: position for position, signature in enumerate(ordered)}
    return {variable: index[signature] for variable, signature in signatures.items()}


def _refine(
    variables: Sequence[Variable],
    colors: dict[Variable, int],
    templates: Sequence[tuple[tuple[str, int], tuple[tuple[bool, object], ...]]],
) -> dict[Variable, int]:
    """Iterate colour refinement until the partition stops splitting."""
    distinct = len(set(colors.values()))
    total = len(variables)
    for _ in range(total):
        if distinct == total:
            break
        occurrences: dict[Variable, list[tuple]] = {v: [] for v in variables}
        for predicate_key, entries in templates:
            context = tuple(
                colors[payload] if is_var else payload
                for is_var, payload in entries
            )
            for position, (is_var, payload) in enumerate(entries):
                if is_var:
                    occurrences[payload].append((predicate_key, position, context))
        signatures = {
            v: (colors[v], tuple(sorted(occurrences[v]))) for v in variables
        }
        colors = _rank(signatures)
        refined = len(set(colors.values()))
        if refined == distinct:
            break
        distinct = refined
    return colors


def refine_variable_colors(query) -> dict[Variable, int]:
    """Assign each variable of *query* a renaming-invariant integer colour.

    Variables that receive distinct colours are *never* exchangeable by a
    variant bijection; variables sharing a colour are structurally symmetric
    as far as colour refinement can see.  The loop runs until the colour
    partition stops splitting (at most ``|vars|`` rounds).

    Runs on the tuple-encoded kernel of :mod:`repro.logic.flat`; the
    object-walking original is kept as
    :func:`refine_variable_colors_reference` and the two are held equal by
    ``tests/logic/test_flat_agreement.py``.
    """
    flat = encode_query(query)
    colors = refine_colors(flat)
    return dict(zip(flat.variables, colors))


def refine_variable_colors_reference(query) -> dict[Variable, int]:
    """Object-based reference implementation of :func:`refine_variable_colors`."""
    variables, colors, _, templates = _prepare(query)
    if not variables:
        return {}
    return _refine(variables, colors, templates)


def canonical_fingerprint(query) -> CanonicalFingerprint:
    """The canonical key of *query* plus an exactness flag.

    ``exact`` is ``True`` when colour refinement separated every variable,
    which makes the key a complete invariant: any query with an equal key
    *and* an exact colouring of its own is a variant of *query*.  With a
    non-exact colouring, equal keys still require a confirmation check.

    Runs on the tuple-encoded kernel of :mod:`repro.logic.flat` and emits
    keys byte-identical to :func:`canonical_fingerprint_reference` (flat
    predicate ids are monotone in ``(name, arity)``, so every sort and
    dense rank agrees with the reference; the final key is assembled from
    the real predicate keys and ``repr``-based constant labels).
    """
    flat = encode_query(query)
    colors = refine_colors(flat)
    exact = len(set(colors)) == len(flat.variables)

    constant_terms = flat.constant_terms
    sorted_atoms = sorted(
        (
            predicate_id,
            tuple(
                [
                    (True, colors[code]) if code >= 0 else (False, code)
                    for code in codes
                ]
            ),
        )
        for predicate_id, codes in set(flat.templates)
    )

    # De Bruijn-style pass: replace colours by consecutive indices in order
    # of first occurrence — head positions first, then the sorted body.
    # Constant labels are cached per ground code (a constant can occur many
    # times); variable labels are cached per colour.
    debruijn: dict[int, int] = {}
    labels: dict[int, str] = {}

    def label(is_var: bool, payload: int) -> str:
        if not is_var:
            cached = labels.get(payload)
            if cached is None:
                cached = f"c:{constant_terms[-1 - payload]!r}"
                labels[payload] = cached
            return cached
        index = debruijn.get(payload)
        if index is None:
            index = len(debruijn)
            debruijn[payload] = index
        return f"?{index}"

    head_key = tuple(
        [
            label(True, colors[code]) if code >= 0 else label(False, code)
            for code in flat.head_codes
        ]
    )
    predicate_keys = flat.predicate_keys
    body_key = tuple(
        [
            (
                *predicate_keys[predicate_id],
                tuple([label(is_var, payload) for is_var, payload in entries]),
            )
            for predicate_id, entries in sorted_atoms
        ]
    )
    return (("cq", len(body_key), head_key, body_key), exact)


def canonical_fingerprint_reference(query) -> CanonicalFingerprint:
    """Object-based reference implementation of :func:`canonical_fingerprint`."""
    variables, colors, constant_ids, templates = _prepare(query)
    if variables:
        colors = _refine(variables, colors, templates)
    exact = len(set(colors.values())) == len(variables)

    constant_labels = {
        identifier: f"c:{term!r}" for term, identifier in constant_ids.items()
    }
    sorted_atoms = sorted(
        (
            predicate_key,
            tuple(
                (True, colors[payload]) if is_var else (False, payload)
                for is_var, payload in entries
            ),
        )
        for predicate_key, entries in set(templates)
    )

    # De Bruijn-style pass: replace colours by consecutive indices in order
    # of first occurrence — head positions first, then the sorted body.
    debruijn: dict[int, int] = {}

    def label(is_var: bool, payload: object) -> str:
        if not is_var:
            return constant_labels[payload]
        if payload not in debruijn:
            debruijn[payload] = len(debruijn)
        return f"?{debruijn[payload]}"

    head_key = tuple(
        label(True, colors[term]) if is_variable(term)
        else label(False, constant_ids[term])
        for term in query.answer_terms
    )
    body_key = tuple(
        (name, arity, tuple(label(is_var, payload) for is_var, payload in entries))
        for (name, arity), entries in sorted_atoms
    )
    return (("cq", len(body_key), head_key, body_key), exact)


def canonical_key(query) -> CanonicalKey:
    """An order- and renaming-invariant interning key for *query*.

    Guarantees ``q.is_variant_of(p)`` ⇒ ``canonical_key(q) ==
    canonical_key(p)``.  The converse holds unless colour refinement cannot
    separate two symmetric structures, so callers interning by this key must
    confirm membership with an explicit variant check (see
    :class:`repro.queries.ucq.QuerySet`) — or consult the ``exact`` flag of
    :func:`canonical_fingerprint`.
    """
    return canonical_fingerprint(query)[0]


def canonical_form(query):
    """A deterministically renamed variant of *query* (variables ``C0, C1, …``).

    Atoms keep their canonical-sort order for numbering purposes, so two
    variants receive the same form whenever colour refinement separates all
    variables; structurally symmetric variables fall back to the query's own
    presentation order, which keeps the result *a variant of the input* in
    every case (useful for display, golden files, and serialisation).
    """
    colors = refine_variable_colors(query)

    def sort_key(atom: Atom) -> tuple:
        return (
            atom.name,
            atom.arity,
            tuple(
                (0, colors[t]) if is_variable(t) else (1, repr(t))
                for t in atom.terms
            ),
        )

    mapping: dict[Term, Term] = {}

    def assign(term: Term) -> None:
        if is_variable(term) and term not in mapping:
            mapping[term] = Variable(f"C{len(mapping)}")

    ordered = sorted(query.body, key=sort_key)
    for term in query.answer_terms:
        assign(term)
    for atom in ordered:
        for term in atom.terms:
            assign(term)
    renamed = query.apply(mapping)
    return renamed.with_body(atom.apply(mapping) for atom in ordered)
