"""Relational atoms, predicates and positions.

An *atom* is a formula ``r(t1, ..., tn)`` where ``r`` is a predicate of arity
``n`` and each ``ti`` is a term.  A *position* ``r[i]`` identifies the *i*-th
argument (1-based, following the paper) of predicate ``r``; positions are the
nodes of the dependency graph used by query elimination (Section 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from .terms import Constant, Null, Term, Variable, is_constant, is_variable


@dataclass(frozen=True, slots=True)
class Predicate:
    """A relation symbol with a fixed arity.

    Like the term classes, predicates and atoms cache their hash at
    construction (they key every candidate index and atom set of the hot
    loops) and pickle by reconstruction because the cached value is
    process-local.
    """

    name: str
    arity: int
    _hash: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((self.name, self.arity)))

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (Predicate, (self.name, self.arity))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{self.name}/{self.arity}"

    def __getitem__(self, index: int) -> "Position":
        """``pred[i]`` returns the 1-based position ``pred[i]``."""
        return Position(self, index)


@dataclass(frozen=True, slots=True)
class Position:
    """A position ``r[i]`` of a predicate ``r`` (``i`` is 1-based)."""

    predicate: Predicate
    index: int

    def __post_init__(self) -> None:
        if not 1 <= self.index <= self.predicate.arity:
            raise ValueError(
                f"position index {self.index} out of range for {self.predicate!r}"
            )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{self.predicate.name}[{self.index}]"


@dataclass(frozen=True, slots=True)
class Atom:
    """An atomic formula ``predicate(terms...)``.

    Atoms are immutable; "modification" helpers such as :meth:`apply` return
    new atoms.
    """

    predicate: Predicate
    terms: tuple[Term, ...]
    _hash: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if len(self.terms) != self.predicate.arity:
            raise ValueError(
                f"{self.predicate!r} expects {self.predicate.arity} terms, "
                f"got {len(self.terms)}"
            )
        object.__setattr__(self, "_hash", hash((self.predicate, self.terms)))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is Atom:
            return (
                self._hash == other._hash
                and self.predicate == other.predicate
                and self.terms == other.terms
            )
        return NotImplemented

    def __reduce__(self):
        return (Atom, (self.predicate, self.terms))

    # -- constructors ------------------------------------------------------

    @staticmethod
    def of(name: str, *terms: Term) -> "Atom":
        """Convenience constructor inferring the arity from the terms."""
        return Atom(Predicate(name, len(terms)), tuple(terms))

    # -- accessors ---------------------------------------------------------

    @property
    def name(self) -> str:
        """The predicate name."""
        return self.predicate.name

    @property
    def arity(self) -> int:
        """The predicate arity."""
        return self.predicate.arity

    def __iter__(self) -> Iterator[Term]:
        return iter(self.terms)

    def __getitem__(self, index: int) -> Term:
        """1-based access to the term at position ``index`` (paper convention)."""
        if not 1 <= index <= self.arity:
            raise IndexError(f"atom position {index} out of range for {self!r}")
        return self.terms[index - 1]

    def positions(self) -> tuple[Position, ...]:
        """All positions of this atom's predicate, in order."""
        return tuple(Position(self.predicate, i) for i in range(1, self.arity + 1))

    def positions_of(self, term: Term) -> frozenset[Position]:
        """The set of positions at which *term* occurs in this atom."""
        return frozenset(
            Position(self.predicate, i)
            for i, t in enumerate(self.terms, start=1)
            if t == term
        )

    def variables(self) -> frozenset[Variable]:
        """All variables occurring in the atom."""
        return frozenset(t for t in self.terms if isinstance(t, Variable))

    def constants(self) -> frozenset[Constant]:
        """All constants occurring in the atom."""
        return frozenset(t for t in self.terms if isinstance(t, Constant))

    def nulls(self) -> frozenset[Null]:
        """All labelled nulls occurring in the atom."""
        return frozenset(t for t in self.terms if isinstance(t, Null))

    def is_ground(self) -> bool:
        """``True`` iff the atom contains no variables."""
        return not any(is_variable(t) for t in self.terms)

    def is_fact(self) -> bool:
        """``True`` iff every term is a constant (a database fact)."""
        return all(is_constant(t) for t in self.terms)

    # -- transformation ----------------------------------------------------

    def apply(self, mapping: Mapping[Term, Term]) -> "Atom":
        """Return the atom obtained by substituting terms according to *mapping*.

        Terms absent from *mapping* are left untouched.
        """
        return Atom(self.predicate, tuple(mapping.get(t, t) for t in self.terms))

    def rename_predicate(self, name: str) -> "Atom":
        """Return a copy of the atom with the predicate renamed."""
        return Atom(Predicate(name, self.arity), self.terms)

    # -- display -----------------------------------------------------------

    def __repr__(self) -> str:
        args = ", ".join(str(t) for t in self.terms)
        return f"{self.predicate.name}({args})"


def atoms_variables(atoms: Iterable[Atom]) -> frozenset[Variable]:
    """Union of the variables of all *atoms*."""
    result: set[Variable] = set()
    for atom in atoms:
        result.update(atom.variables())
    return frozenset(result)


def atoms_constants(atoms: Iterable[Atom]) -> frozenset[Constant]:
    """Union of the constants of all *atoms*."""
    result: set[Constant] = set()
    for atom in atoms:
        result.update(atom.constants())
    return frozenset(result)


def atoms_terms(atoms: Iterable[Atom]) -> frozenset[Term]:
    """Union of all terms occurring in *atoms*."""
    result: set[Term] = set()
    for atom in atoms:
        result.update(atom.terms)
    return frozenset(result)


def atoms_predicates(atoms: Iterable[Atom]) -> frozenset[Predicate]:
    """The set of predicates used by *atoms*."""
    return frozenset(atom.predicate for atom in atoms)


def term_occurrences(atoms: Sequence[Atom]) -> dict[Term, int]:
    """Count how many times each term occurs across *atoms* (with multiplicity)."""
    counts: dict[Term, int] = {}
    for atom in atoms:
        for term in atom.terms:
            counts[term] = counts.get(term, 0) + 1
    return counts
