"""Homomorphisms between sets of atoms.

A homomorphism from a set of atoms ``A1`` to a set of atoms ``A2`` is a
substitution ``h`` on the terms of ``A1`` such that (i) constants are mapped
to themselves and (ii) ``h(a) ∈ A2`` for every ``a ∈ A1`` (Section 3.1).
Variables and labelled nulls of ``A1`` may be mapped to arbitrary terms.

Homomorphism search is NP-complete in general; the implementation below is a
backtracking search with standard heuristics (most-constrained atom first,
candidate indexing by predicate) which is fast for the query sizes that occur
in ontological query rewriting (a handful of atoms).

The same machinery yields:

* *query containment* checks (via the canonical-database / frozen-query
  technique);
* *variant* checks ("the same modulo bijective variable renaming"), used to
  deduplicate CQs inside the rewriting sets of Algorithm 1;
* entailment of a BCQ by an instance (``I |= q``).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator, Mapping, Sequence

from .atoms import Atom
from .flat import FlatTarget, search_homomorphisms
from .substitution import Substitution
from .terms import Constant, Term, is_constant, is_variable


def _candidate_index(target: Iterable[Atom]) -> dict[object, list[Atom]]:
    """Index the target atoms by predicate for fast candidate lookup."""
    index: dict[object, list[Atom]] = defaultdict(list)
    for atom in target:
        index[atom.predicate].append(atom)
    return index


def _extend(
    mapping: dict[Term, Term], source: Atom, target: Atom
) -> dict[Term, Term] | None:
    """Try to extend *mapping* so that it maps *source* onto *target*.

    Returns the extended mapping, or ``None`` if the extension is impossible
    (constant mismatch or conflicting variable binding).
    """
    if source.predicate != target.predicate:
        return None
    extended = dict(mapping)
    for s_term, t_term in zip(source.terms, target.terms):
        if is_constant(s_term):
            if s_term != t_term:
                return None
            continue
        bound = extended.get(s_term)
        if bound is None:
            extended[s_term] = t_term
        elif bound != t_term:
            return None
    return extended


def homomorphisms(
    source: Sequence[Atom],
    target: Iterable[Atom],
    partial: Mapping[Term, Term] | None = None,
    frozen: Iterable[Term] = (),
    index: Mapping[object, Sequence[Atom]] | None = None,
    flat_target: FlatTarget | None = None,
) -> Iterator[Substitution]:
    """Enumerate all homomorphisms from *source* into *target*.

    Parameters
    ----------
    source:
        Atoms to be mapped (e.g. the body of a query).
    target:
        Atoms to map into (e.g. an instance, or the frozen body of a query).
    partial:
        A partial mapping that every returned homomorphism must extend
        (used e.g. to fix the answer variables of a CQ to a candidate tuple).
    frozen:
        Terms of *source* that must be mapped to themselves (in addition to
        constants).  Useful when checking containment mappings where the
        target's variables act as constants.
    index:
        Optional pre-built predicate→atoms index of *target* (as produced
        for :class:`repro.queries.containment.ContainmentIndex`).  When a
        caller probes the same target many times — subsumption removal
        does, quadratically — passing the index skips rebuilding it per
        call; *target* itself is then ignored.
    flat_target:
        Optional pre-built :class:`repro.logic.flat.FlatTarget` encoding of
        *index* — the second half of the repeated-probe fast path: the
        target side is interned once and every probe runs allocation-free.
        Must encode the same atoms as *index*.

    The inner search runs on the tuple-encoded kernel of
    :func:`repro.logic.flat.search_homomorphisms`; the object-walking
    original is kept as :func:`homomorphisms_reference` and the two are
    held to identical enumerations (same mappings, same order) by
    ``tests/logic/test_flat_agreement.py``.
    """
    if index is None:
        index = _candidate_index(target)
    frozen_set = set(frozen)
    base: dict[Term, Term] = dict(partial) if partial else {}
    for term in frozen_set:
        existing = base.get(term)
        if existing is not None and existing != term:
            return
        base[term] = term

    source_atoms = list(source)
    # Most-constrained-first ordering: fewer candidate target atoms first,
    # more constants/bound terms first.  Key values (and hence the stable
    # sort order) are identical to the reference's lambda; the decorated
    # sort just computes each key once with fewer frames — and an atom
    # with *no* candidate target atoms proves there is no homomorphism at
    # all, so the search (and the flat encoding) is skipped outright; the
    # reference reaches the same empty enumeration by searching.
    index_get = index.get
    constant_type = Constant
    if source_atoms:
        decorated = []
        for atom in source_atoms:
            candidates = index_get(atom.predicate)
            if not candidates:
                return
            anchored = 0
            for term in atom.terms:
                if type(term) is constant_type or term in base:
                    anchored -= 1
            decorated.append((len(candidates), anchored))
        if len(source_atoms) > 1:
            order = sorted(range(len(source_atoms)), key=decorated.__getitem__)
            source_atoms = [source_atoms[position] for position in order]

    for mapping in search_homomorphisms(source_atoms, index, base, target=flat_target):
        yield Substitution(mapping)


def homomorphisms_reference(
    source: Sequence[Atom],
    target: Iterable[Atom],
    partial: Mapping[Term, Term] | None = None,
    frozen: Iterable[Term] = (),
    index: Mapping[object, Sequence[Atom]] | None = None,
) -> Iterator[Substitution]:
    """Object-based reference implementation of :func:`homomorphisms`."""
    if index is None:
        index = _candidate_index(target)
    frozen_set = set(frozen)
    base: dict[Term, Term] = dict(partial) if partial else {}
    for term in frozen_set:
        existing = base.get(term)
        if existing is not None and existing != term:
            return
        base[term] = term

    source_atoms = list(source)
    source_atoms.sort(key=lambda a: (len(index.get(a.predicate, ())), -sum(
        1 for t in a.terms if is_constant(t) or t in base)))

    def search(position: int, mapping: dict[Term, Term]) -> Iterator[dict[Term, Term]]:
        if position == len(source_atoms):
            yield mapping
            return
        atom = source_atoms[position]
        for candidate in index.get(atom.predicate, ()):  # noqa: B905
            extended = _extend(mapping, atom, candidate)
            if extended is not None:
                yield from search(position + 1, extended)

    seen: set[frozenset] = set()
    for mapping in search(0, base):
        key = frozenset(mapping.items())
        if key in seen:
            continue
        seen.add(key)
        yield Substitution(mapping)


def find_homomorphism(
    source: Sequence[Atom],
    target: Iterable[Atom],
    partial: Mapping[Term, Term] | None = None,
    frozen: Iterable[Term] = (),
    index: Mapping[object, Sequence[Atom]] | None = None,
    flat_target: FlatTarget | None = None,
) -> Substitution | None:
    """Return one homomorphism from *source* into *target*, or ``None``."""
    for hom in homomorphisms(
        source,
        target,
        partial=partial,
        frozen=frozen,
        index=index,
        flat_target=flat_target,
    ):
        return hom
    return None


def has_homomorphism(
    source: Sequence[Atom],
    target: Iterable[Atom],
    partial: Mapping[Term, Term] | None = None,
    frozen: Iterable[Term] = (),
) -> bool:
    """``True`` iff some homomorphism from *source* into *target* exists."""
    return find_homomorphism(source, target, partial=partial, frozen=frozen) is not None


def is_homomorphism(
    mapping: Mapping[Term, Term], source: Iterable[Atom], target: Iterable[Atom]
) -> bool:
    """Verify that *mapping* is a homomorphism from *source* into *target*."""
    target_set = set(target)
    substitution = Substitution(
        {k: v for k, v in mapping.items() if not is_constant(k) or k == v}
    )
    for key, value in mapping.items():
        if is_constant(key) and key != value:
            return False
    return all(substitution.apply_atom(atom) in target_set for atom in source)


def variable_bijections(
    source: Sequence[Atom], target: Sequence[Atom]
) -> Iterator[Substitution]:
    """Enumerate bijective variable renamings mapping *source* onto *target*.

    Used for variant checks: two conjunctions of atoms are *variants* (equal
    modulo bijective variable renaming) iff such a renaming exists and it maps
    the source atom set onto the whole target atom set.
    """
    source_atoms = set(source)
    target_atoms = set(target)
    if len(source_atoms) != len(target_atoms):
        return
    source_vars = {t for a in source_atoms for t in a.terms if is_variable(t)}
    target_vars = {t for a in target_atoms for t in a.terms if is_variable(t)}
    if len(source_vars) != len(target_vars):
        return
    for hom in homomorphisms(sorted(source_atoms, key=repr), target_atoms):
        mapping = {v: hom.apply_term(v) for v in source_vars}
        images = set(mapping.values())
        if len(images) != len(mapping) or not images <= target_vars:
            continue
        if {hom.apply_atom(a) for a in source_atoms} == target_atoms:
            yield Substitution(mapping)


def are_variants(source: Sequence[Atom], target: Sequence[Atom]) -> bool:
    """``True`` iff the two atom sets are equal modulo bijective variable renaming."""
    if set(source) == set(target):
        return True
    for _ in variable_bijections(source, target):
        return True
    return False
