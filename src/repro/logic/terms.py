"""First-order terms used throughout the library.

The paper (Section 3.1) distinguishes three pairwise-disjoint sets of symbols:

* **constants** (``Δc``) — the domain of a database; two distinct constants
  always denote distinct values (unique name assumption);
* **labelled nulls** (``Δz``) — placeholders for unknown values, introduced by
  the chase when a tuple-generating dependency (TGD) invents a fresh value;
* **variables** — used in queries and dependencies.

Terms are immutable and hashable so they can be used freely as dictionary keys
and members of frozensets.  Equality is structural (same kind, same name).

Terms live in every hot dictionary of the engine (substitution application,
unification, canonical-key refinement, homomorphism search), so each class
precomputes its hash once at construction instead of rebuilding a field
tuple per lookup.  The cached value is process-local (string hashing is
salted per process), so the classes pickle by reconstruction — ``__reduce__``
re-runs ``__init__`` on the receiving side — rather than by shipping the
cached slot to another process where it would be wrong.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Union


@dataclass(frozen=True, slots=True)
class Variable:
    """A first-order variable, e.g. ``X`` in ``p(X, Y)``."""

    name: str
    _hash: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash(("var", self.name)))

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (Variable, (self.name,))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"?{self.name}"

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Constant:
    """A constant of the database domain ``Δc``.

    The ``value`` may be any hashable Python object (strings and integers in
    practice).  Two constants are equal iff their values are equal.
    """

    value: object
    _hash: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash(("const", self.value)))

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (Constant, (self.value,))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Const({self.value!r})"

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True, slots=True)
class Null:
    """A labelled null of ``Δz``, introduced by the chase.

    Nulls behave like constants during query evaluation over an instance
    (they can be mapped onto by query variables) but they are never part of a
    *certain* answer and, unlike constants, a homomorphism may map a null to
    any other term.
    """

    label: int
    _hash: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash(("null", self.label)))

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (Null, (self.label,))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Null({self.label})"

    def __str__(self) -> str:
        return f"z{self.label}"


Term = Union[Variable, Constant, Null]


def is_variable(term: Term) -> bool:
    """Return ``True`` iff *term* is a :class:`Variable`."""
    return isinstance(term, Variable)


def is_constant(term: Term) -> bool:
    """Return ``True`` iff *term* is a :class:`Constant`."""
    return isinstance(term, Constant)


def is_null(term: Term) -> bool:
    """Return ``True`` iff *term* is a labelled :class:`Null`."""
    return isinstance(term, Null)


class VariableFactory:
    """Generates fresh variables guaranteed not to clash with previous ones.

    Rewriting and chase steps repeatedly need variables that do not occur
    anywhere else (e.g. when renaming a TGD apart from a query).  A factory
    keeps a monotone counter so every variable it produces is new.

    >>> fresh = VariableFactory(prefix="V")
    >>> fresh(), fresh()
    (?V1, ?V2)
    """

    def __init__(self, prefix: str = "V", start: int = 1) -> None:
        self._prefix = prefix
        self._counter = itertools.count(start)

    def __call__(self) -> Variable:
        return Variable(f"{self._prefix}{next(self._counter)}")

    def many(self, count: int) -> tuple[Variable, ...]:
        """Return *count* fresh variables."""
        return tuple(self() for _ in range(count))


class NullFactory:
    """Generates fresh labelled nulls for the chase procedure."""

    def __init__(self, start: int = 1) -> None:
        self._counter = itertools.count(start)

    def __call__(self) -> Null:
        return Null(next(self._counter))

    def many(self, count: int) -> tuple[Null, ...]:
        """Return *count* fresh nulls."""
        return tuple(self() for _ in range(count))
